//! # MoLoc — motion-assisted indoor localization
//!
//! A full reproduction of *MoLoc: On Distinguishing Fingerprint Twins*
//! (ICDCS 2013). WiFi RSS fingerprinting suffers from *fingerprint
//! ambiguity* — distinct locations with near-identical fingerprints
//! ("twins"); MoLoc resolves it by fusing the user's motion (direction
//! and walked distance from phone sensors) with fingerprint matching,
//! against a crowdsourced *motion database* of inter-location
//! measurements.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `moloc-core` | the MoLoc algorithm (Eq. 5–7, tracker, engine) |
//! | [`fingerprint`] | `moloc-fingerprint` | fingerprint DB, metrics, k-NN, WiFi & Horus baselines |
//! | [`motion`] | `moloc-motion` | the motion database and its crowdsourced construction |
//! | [`sensors`] | `moloc-sensors` | IMU synthesis & processing: steps (DSC/CSC), heading |
//! | [`mobility`] | `moloc-mobility` | user profiles, random walks, sensor-trace rendering |
//! | [`radio`] | `moloc-radio` | RF propagation, shadowing, RSS scans, site surveys |
//! | [`geometry`] | `moloc-geometry` | floor plans, reference grids, walkable graphs |
//! | [`stats`] | `moloc-stats` | Gaussians, circular statistics, ECDFs |
//! | [`faults`] | `moloc-faults` | seeded fault injection: AP dropout, rogue APs, sensor gaps, RLM corruption, stream & lifecycle faults |
//! | [`session`] | `moloc-session` | crash-safe streaming: reorder buffer, checkpointed tracker state, recovery |
//! | [`live`] | `moloc-live` | dynamic crowdsourced database updates: epoch snapshots, atomic publication, live localizers |
//! | [`verify`] | `moloc-verify` | differential oracles (naive Eq. 4–7, exhaustive k-NN, checkpoint framing) and zero-cost runtime invariant checks |
//! | [`obs`] | `moloc-obs` | zero-dependency metrics: counters, histograms, timing spans, snapshots |
//! | [`eval`] | `moloc-eval` | the simulated office-hall testbed and every paper experiment |
//!
//! # Quickstart
//!
//! ```
//! use moloc::core::engine::MoLoc;
//! use moloc::core::tracker::MotionMeasurement;
//! use moloc::fingerprint::db::FingerprintDb;
//! use moloc::fingerprint::fingerprint::Fingerprint;
//! use moloc::geometry::LocationId;
//! use moloc::motion::matrix::{MotionDb, PairStats};
//! use moloc::stats::gaussian::Gaussian;
//!
//! // Two fingerprint-twin locations, L1 and L2, 5 m apart going east.
//! let fdb = FingerprintDb::from_fingerprints(vec![
//!     (LocationId::new(1), Fingerprint::new(vec![-40.0, -60.0])),
//!     (LocationId::new(2), Fingerprint::new(vec![-60.0, -40.0])),
//! ])?;
//! let mut mdb = MotionDb::new(2);
//! mdb.insert(LocationId::new(1), LocationId::new(2), PairStats {
//!     direction: Gaussian::new(90.0, 5.0).unwrap(),
//!     offset: Gaussian::new(5.0, 0.3).unwrap(),
//!     sample_count: 12,
//! });
//!
//! let system = MoLoc::builder(fdb, mdb).build();
//! let mut tracker = system.tracker();
//! tracker.observe(&Fingerprint::new(vec![-41.0, -59.0]), None)?;
//! let here = tracker.observe(
//!     &Fingerprint::new(vec![-59.0, -41.0]),
//!     Some(MotionMeasurement { direction_deg: 92.0, offset_m: 4.9 }),
//! )?;
//! assert_eq!(here, LocationId::new(2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Reproducing the paper
//!
//! Every figure and table of the paper's evaluation regenerates with:
//!
//! ```text
//! cargo run -p moloc-eval --bin repro --release -- --exp all
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured numbers.

pub use moloc_core as core;
pub use moloc_eval as eval;
pub use moloc_faults as faults;
pub use moloc_fingerprint as fingerprint;
pub use moloc_geometry as geometry;
pub use moloc_live as live;
pub use moloc_mobility as mobility;
pub use moloc_motion as motion;
pub use moloc_obs as obs;
pub use moloc_radio as radio;
pub use moloc_sensors as sensors;
pub use moloc_session as session;
pub use moloc_stats as stats;
pub use moloc_verify as verify;

/// Commonly used types, one import away.
pub mod prelude {
    pub use moloc_core::config::MoLocConfig;
    pub use moloc_core::engine::MoLoc;
    pub use moloc_core::error::{DegradationFlags, MolocError};
    pub use moloc_core::tracker::{MoLocTracker, MotionMeasurement};
    pub use moloc_faults::plan::{FaultPlan, FaultSuite};
    pub use moloc_fingerprint::candidates::CandidateSet;
    pub use moloc_fingerprint::db::FingerprintDb;
    pub use moloc_fingerprint::fingerprint::Fingerprint;
    pub use moloc_fingerprint::nn_localizer::NnLocalizer;
    pub use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
    pub use moloc_live::{DbSnapshot, LiveLocalizer, SnapshotPublisher, UpdateLog};
    pub use moloc_mobility::user::UserProfile;
    pub use moloc_motion::builder::{MapReference, MotionDbBuilder};
    pub use moloc_motion::filter::SanitationConfig;
    pub use moloc_motion::matrix::{MotionDb, PairStats};
    pub use moloc_motion::rlm::Rlm;
    pub use moloc_radio::ap::AccessPoint;
    pub use moloc_radio::RadioEnvironment;
    pub use moloc_sensors::counting::CountingMethod;
    pub use moloc_sensors::steps::StepDetector;
    pub use moloc_session::{ScanEvent, SessionConfig, SessionError, StreamingSession};
}
