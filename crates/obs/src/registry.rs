//! The thread-safe metric registry.
//!
//! A [`MetricsRegistry`] owns every live counter, gauge, and histogram,
//! keyed by static name. Lookup takes a read lock on a `HashMap`; the
//! metric itself is an `Arc`'d atomic, so the write lock is only ever
//! held for first-time registration of a name. Recording after warm-up
//! is a read-lock + relaxed atomic op — cheap enough for per-query
//! instrumentation, and completely absent while the global flag is off.

use crate::hist::Histogram;
use crate::recorder::Recorder;
use crate::snapshot::MetricsSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

type Table<T> = RwLock<HashMap<&'static str, Arc<T>>>;

/// A named store of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Table<AtomicU64>,
    gauges: Table<AtomicU64>,
    histograms: Table<Histogram>,
    /// Bumped on [`reset`](Self::reset) so cached metric handles (the
    /// thread-local flush memoizes `Arc`s) can detect that their atomics
    /// were orphaned and re-resolve instead of silently writing into
    /// dropped storage.
    generation: AtomicU64,
}

fn entry<T: Default>(table: &Table<T>, name: &'static str) -> Arc<T> {
    if let Some(found) = table.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(found);
    }
    Arc::clone(
        table
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name)
            .or_default(),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the named counter exists (at 0 if new). Collectors
    /// pre-declare the taxonomy so snapshots carry stable schemas even
    /// for paths a given run never exercised.
    pub fn declare_counter(&self, name: &'static str) {
        entry(&self.counters, name);
    }

    /// Ensures the named gauge exists (at 0 if new).
    pub fn declare_gauge(&self, name: &'static str) {
        entry(&self.gauges, name);
    }

    /// Ensures the named histogram exists (empty if new).
    pub fn declare_histogram(&self, name: &'static str) {
        entry(&self.histograms, name);
    }

    /// Current value of a counter, `None` if never touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Snapshots every metric. Values are read relaxed; under
    /// concurrent recording the snapshot is a consistent-enough point
    /// sample, not a barrier.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::collect(
            &self.counters.read().unwrap_or_else(|e| e.into_inner()),
            &self.gauges.read().unwrap_or_else(|e| e.into_inner()),
            &self.histograms.read().unwrap_or_else(|e| e.into_inner()),
        )
    }

    /// The live handle of the named histogram (registering it if new).
    /// Lets the thread-local flush batch samples with one table lookup
    /// per distinct name instead of one per sample.
    pub(crate) fn histogram_handle(&self, name: &'static str) -> Arc<Histogram> {
        entry(&self.histograms, name)
    }

    /// The live handle of the named counter (registering it if new).
    pub(crate) fn counter_handle(&self, name: &'static str) -> Arc<AtomicU64> {
        entry(&self.counters, name)
    }

    /// The current reset generation; handles cached under an older
    /// generation are stale.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Drops every metric (names included).
    pub fn reset(&self) {
        self.counters
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.gauges
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.histograms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        // Bumped after the maps clear: a handle re-resolved under the
        // new generation is guaranteed to live in the post-reset tables.
        self.generation.fetch_add(1, Ordering::Release);
    }
}

impl Recorder for MetricsRegistry {
    fn counter_add(&self, name: &'static str, delta: u64) {
        entry(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_set(&self, name: &'static str, value: u64) {
        entry(&self.gauges, name).store(value, Ordering::Relaxed);
    }

    fn record(&self, name: &'static str, value: f64) {
        entry(&self.histograms, name).record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 1);
        r.counter_add("c", 2);
        r.gauge_set("g", 10);
        r.gauge_set("g", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(3));
        assert_eq!(r.counter("c"), Some(3));
        assert_eq!(r.counter("absent"), None);
    }

    #[test]
    fn declared_metrics_appear_with_zero_values() {
        let r = MetricsRegistry::new();
        r.declare_counter("c0");
        r.declare_gauge("g0");
        r.declare_histogram("h0");
        let snap = r.snapshot();
        assert_eq!(snap.counter("c0"), Some(0));
        assert_eq!(snap.gauge("g0"), Some(0));
        assert_eq!(snap.histogram("h0").map(|h| h.count), Some(0));
    }

    #[test]
    fn histograms_record_through_the_trait() {
        let r = MetricsRegistry::new();
        let rec: &dyn Recorder = &r;
        rec.record("h", 2.0);
        rec.record("h", 8.0);
        let h = r.snapshot().histogram("h").cloned().expect("recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 10.0);
    }

    #[test]
    fn concurrent_registration_and_recording_are_safe() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..500 {
                        r.counter_add("shared", 1);
                        r.record("hist", 1.0);
                    }
                });
            }
        });
        assert_eq!(r.counter("shared"), Some(2000));
        assert_eq!(r.snapshot().histogram("hist").map(|h| h.count), Some(2000));
    }

    #[test]
    fn reset_forgets_everything() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 1);
        r.reset();
        assert_eq!(r.counter("c"), None);
        assert!(r.snapshot().is_empty());
    }
}
