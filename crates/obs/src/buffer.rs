//! Thread-local buffering of metric deltas inside open spans.
//!
//! Every enabled recording call used to pay a registry round-trip —
//! a `RwLock` read, a `HashMap` lookup, and an `Arc` clone — per
//! counter increment and histogram sample. On the batch-localizer hot
//! path that is several round-trips *per observation*, which is where
//! the obs-enabled overhead of `batch_localizer_full_trace` came from.
//!
//! This module keeps a per-thread delta buffer instead. While at least
//! one armed [`crate::Span`] is open on the current thread, counter
//! increments merge into a small vector (one entry per distinct name)
//! and histogram samples append to another; when the outermost span
//! closes, the whole buffer flushes to the global registry — one
//! `counter_add` per distinct counter and one table lookup per distinct
//! histogram name, instead of one per call. Outside any span, calls
//! fall through to the registry directly, so snapshot visibility is
//! unchanged for unspanned code.
//!
//! The buffer never reorders or drops data relative to the un-buffered
//! path — counters are commutative sums and histogram bucket updates
//! are order-independent — it only defers registry publication until
//! the enclosing span ends. Snapshots taken *while a span is open on
//! another thread* may miss that span's in-flight deltas, exactly as
//! they could already miss increments the OS had not scheduled yet.
//!
//! If the thread-local slot is unavailable (thread teardown), all
//! entry points degrade gracefully: buffering reports "not buffered"
//! and the caller records directly.

use crate::hist::{Fold, Histogram};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    static BUFFER: RefCell<LocalBuffer> = const { RefCell::new(LocalBuffer::new()) };
}

/// The per-thread delta store. `depth` counts open armed spans; the
/// vectors hold deltas accumulated since the last flush and keep their
/// capacity across flushes, so steady-state buffering allocates
/// nothing. Registry handles are memoized across flushes — the hot
/// path records the same few names every trace — and invalidated by
/// the registry's reset generation, since `reset` orphans the atomics
/// behind cached `Arc`s.
struct LocalBuffer {
    depth: usize,
    counters: Vec<(&'static str, u64)>,
    samples: Vec<(&'static str, f64)>,
    generation: u64,
    counter_handles: Vec<(&'static str, Arc<AtomicU64>)>,
    hist_handles: Vec<(&'static str, Arc<Histogram>)>,
    fold: Fold,
}

impl LocalBuffer {
    const fn new() -> Self {
        Self {
            depth: 0,
            counters: Vec::new(),
            samples: Vec::new(),
            generation: 0,
            counter_handles: Vec::new(),
            hist_handles: Vec::new(),
            fold: Fold::new(),
        }
    }

    fn flush(&mut self) {
        if self.counters.is_empty() && self.samples.is_empty() {
            return;
        }
        let registry = crate::global();
        let generation = registry.generation();
        if generation != self.generation {
            self.counter_handles.clear();
            self.hist_handles.clear();
            self.generation = generation;
        }
        for (name, delta) in self.counters.drain(..) {
            let slot = match self.counter_handles.iter().position(|(n, _)| *n == name) {
                Some(i) => i,
                None => {
                    self.counter_handles
                        .push((name, registry.counter_handle(name)));
                    self.counter_handles.len() - 1
                }
            };
            self.counter_handles[slot]
                .1
                .fetch_add(delta, Ordering::Relaxed);
        }
        // Samples publish folded: all of one name's samples collapse
        // locally, then hit the histogram as a single batch — a few
        // atomic RMWs per distinct name per flush instead of five per
        // sample. Sample streams hold a handful of distinct names, so
        // the quadratic-in-names grouping pass is cheaper than any map.
        while let Some(&(name, _)) = self.samples.first() {
            self.fold.clear();
            let mut kept = 0;
            for read in 0..self.samples.len() {
                let (n, v) = self.samples[read];
                if n == name {
                    self.fold.record(v);
                } else {
                    self.samples[kept] = (n, v);
                    kept += 1;
                }
            }
            self.samples.truncate(kept);
            let slot = match self.hist_handles.iter().position(|(n, _)| *n == name) {
                Some(i) => i,
                None => {
                    self.hist_handles
                        .push((name, registry.histogram_handle(name)));
                    self.hist_handles.len() - 1
                }
            };
            self.hist_handles[slot].1.record_fold(&self.fold);
        }
    }
}

/// Notes that an armed span opened on this thread.
pub(crate) fn enter_span() {
    let _ = BUFFER.try_with(|b| b.borrow_mut().depth += 1);
}

/// Records an armed span's duration and closes it in one thread-local
/// round trip; flushes the buffer when it was the outermost span.
/// Returns `false` when the slot is unavailable and the caller must
/// record the duration directly.
pub(crate) fn close_span(name: &'static str, elapsed: f64) -> bool {
    BUFFER
        .try_with(|b| {
            let mut b = b.borrow_mut();
            b.samples.push((name, elapsed));
            b.depth = b.depth.saturating_sub(1);
            if b.depth == 0 {
                b.flush();
            }
        })
        .is_ok()
}

/// Buffers a counter increment if a span is open on this thread.
/// Returns `false` when the caller must record directly.
pub(crate) fn counter_add(name: &'static str, delta: u64) -> bool {
    BUFFER
        .try_with(|b| {
            let mut b = b.borrow_mut();
            if b.depth == 0 {
                return false;
            }
            if let Some(entry) = b.counters.iter_mut().find(|(n, _)| *n == name) {
                entry.1 += delta;
            } else {
                b.counters.push((name, delta));
            }
            true
        })
        .unwrap_or(false)
}

/// Buffers a batch of counter increments in one thread-local round
/// trip if a span is open on this thread. Returns `false` when the
/// caller must record directly.
pub(crate) fn counter_add_batch(entries: &[(&'static str, u64)]) -> bool {
    BUFFER
        .try_with(|b| {
            let mut b = b.borrow_mut();
            if b.depth == 0 {
                return false;
            }
            for &(name, delta) in entries {
                if let Some(entry) = b.counters.iter_mut().find(|(n, _)| *n == name) {
                    entry.1 += delta;
                } else {
                    b.counters.push((name, delta));
                }
            }
            true
        })
        .unwrap_or(false)
}

/// Buffers a histogram sample if a span is open on this thread.
/// Returns `false` when the caller must record directly.
pub(crate) fn record(name: &'static str, value: f64) -> bool {
    BUFFER
        .try_with(|b| {
            let mut b = b.borrow_mut();
            if b.depth == 0 {
                return false;
            }
            b.samples.push((name, value));
            true
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    fn scoped<F: FnOnce()>(f: F) {
        let _guard = crate::TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_enabled(false);
        f();
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn deltas_buffer_inside_a_span_and_flush_on_close() {
        scoped(|| {
            crate::enable();
            {
                let _span = crate::span("buf.outer");
                crate::counter_add("buf.counter", 2);
                crate::counter_add("buf.counter", 3);
                crate::record("buf.hist", 1.5);
                // Still buffered: nothing has reached the registry yet.
                let snap = crate::snapshot();
                assert!(snap.counter("buf.counter").is_none());
                assert!(snap.histogram("buf.hist").is_none());
            }
            let snap = crate::snapshot();
            assert_eq!(snap.counter("buf.counter"), Some(5));
            assert_eq!(snap.histogram("buf.hist").map(|h| h.count), Some(1));
            assert_eq!(snap.histogram("buf.outer").map(|h| h.count), Some(1));
        });
    }

    #[test]
    fn nested_spans_flush_only_at_the_outermost_close() {
        scoped(|| {
            crate::enable();
            {
                let _outer = crate::span("buf.nest.outer");
                {
                    let _inner = crate::span("buf.nest.inner");
                    crate::counter_add("buf.nest.counter", 1);
                }
                // Inner closed but the outer span still pins the
                // buffer: the inner span's own duration and the counter
                // both wait for the outermost close.
                let snap = crate::snapshot();
                assert!(snap.counter("buf.nest.counter").is_none());
                assert!(snap.histogram("buf.nest.inner").is_none());
                crate::counter_add("buf.nest.counter", 4);
            }
            let snap = crate::snapshot();
            assert_eq!(snap.counter("buf.nest.counter"), Some(5));
            assert_eq!(snap.histogram("buf.nest.inner").map(|h| h.count), Some(1));
            assert_eq!(snap.histogram("buf.nest.outer").map(|h| h.count), Some(1));
        });
    }

    #[test]
    fn unspanned_calls_record_directly() {
        scoped(|| {
            crate::enable();
            crate::counter_add("buf.direct", 7);
            crate::record("buf.direct.hist", 0.5);
            let snap = crate::snapshot();
            assert_eq!(snap.counter("buf.direct"), Some(7));
            assert_eq!(snap.histogram("buf.direct.hist").map(|h| h.count), Some(1));
        });
    }

    #[test]
    fn flush_merges_repeated_histogram_names() {
        scoped(|| {
            crate::enable();
            {
                let _span = crate::span("buf.merge.outer");
                for i in 0..10 {
                    crate::record("buf.merge.a", i as f64 + 1.0);
                    crate::record("buf.merge.b", 2.0);
                }
            }
            let snap = crate::snapshot();
            assert_eq!(snap.histogram("buf.merge.a").map(|h| h.count), Some(10));
            assert_eq!(snap.histogram("buf.merge.b").map(|h| h.count), Some(10));
            assert_eq!(snap.histogram("buf.merge.b").map(|h| h.sum), Some(20.0));
        });
    }

    #[test]
    fn cached_handles_invalidate_across_reset() {
        scoped(|| {
            crate::enable();
            {
                let _span = crate::span("buf.gen.outer");
                crate::counter_add("buf.gen.counter", 1);
                crate::record("buf.gen.hist", 1.0);
            }
            assert_eq!(crate::snapshot().counter("buf.gen.counter"), Some(1));
            // reset orphans the atomics behind any cached handles; the
            // next flush must re-resolve or these deltas vanish.
            crate::reset();
            crate::enable();
            {
                let _span = crate::span("buf.gen.outer");
                crate::counter_add("buf.gen.counter", 5);
                crate::record("buf.gen.hist", 2.0);
            }
            let snap = crate::snapshot();
            assert_eq!(snap.counter("buf.gen.counter"), Some(5));
            assert_eq!(snap.histogram("buf.gen.hist").map(|h| h.count), Some(1));
            assert_eq!(snap.histogram("buf.gen.hist").map(|h| h.sum), Some(2.0));
        });
    }

    #[test]
    fn disarmed_spans_do_not_pin_the_buffer() {
        scoped(|| {
            // Span created while disabled: no depth change, so a later
            // enabled counter records directly.
            let span = crate::span("buf.disarmed");
            crate::enable();
            crate::counter_add("buf.disarmed.counter", 1);
            assert_eq!(crate::snapshot().counter("buf.disarmed.counter"), Some(1));
            drop(span);
            assert!(crate::snapshot().histogram("buf.disarmed").is_none());
        });
    }
}
