//! Fixed-bucket atomic histograms.
//!
//! Every histogram in the stack shares one bucket layout: 40
//! power-of-two buckets with upper bounds `2^(i − 20)` for
//! `i ∈ 0..40` — covering ~0.95 µs to ~524 288 (seconds for latency
//! spans, plain counts for size distributions) — plus one overflow
//! bucket. A shared fixed layout keeps recording branch-free (no
//! per-histogram bound tables), makes snapshots trivially mergeable,
//! and bounds the memory of any histogram at 41 atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of bounded buckets (the 41st bucket is the +∞ overflow).
pub const BUCKETS: usize = 40;

/// Exponent offset: bucket `i` has upper bound `2^(i - OFFSET)`.
const OFFSET: i32 = 20;

/// The upper bound of bounded bucket `i` (`i < BUCKETS`).
pub fn bucket_bound(i: usize) -> f64 {
    exp2_f64(i as i32 - OFFSET)
}

fn exp2_f64(e: i32) -> f64 {
    f64::powi(2.0, e)
}

/// The bucket index for `value`: the smallest bucket whose upper bound
/// is ≥ `value`, or [`BUCKETS`] (overflow) when none is.
pub fn bucket_index(value: f64) -> usize {
    if value <= exp2_f64(-OFFSET) {
        return 0;
    }
    if value > exp2_f64(BUCKETS as i32 - 1 - OFFSET) {
        return BUCKETS;
    }
    // ceil(log2(value)) + OFFSET, computed on the exact exponent grid.
    let mut i = (value.log2().ceil() as i32 + OFFSET).clamp(0, BUCKETS as i32 - 1) as usize;
    // Float log2 can land one bucket low on exact powers of two; nudge.
    while bucket_bound(i) < value {
        i += 1;
    }
    i
}

/// A lock-free fixed-bucket histogram with total count, sum, min, max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    /// Bit patterns of f64 accumulators, updated by CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample. Non-finite samples are dropped — a NaN
    /// latency is an instrumentation bug, not a signal worth poisoning
    /// the distribution with.
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value < f64::from_bits(bits)).then(|| value.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value > f64::from_bits(bits)).then(|| value.to_bits())
            });
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// The per-bucket counts: [`BUCKETS`] bounded buckets then the
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Publishes a locally folded batch of samples: one atomic RMW per
    /// *touched* bucket plus four scalar merges, instead of five RMWs
    /// per sample. The thread-local metric buffer uses this to flush a
    /// whole span's worth of samples per name at once.
    pub fn record_fold(&self, fold: &Fold) {
        if fold.count == 0 {
            return;
        }
        for (bucket, &c) in self.buckets.iter().zip(&fold.buckets) {
            if c > 0 {
                bucket.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(fold.count, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + fold.sum).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (fold.min < f64::from_bits(bits)).then(|| fold.min.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (fold.max > f64::from_bits(bits)).then(|| fold.max.to_bits())
            });
    }

    /// Zeroes every accumulator.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// A local, non-atomic accumulator for batching samples destined for
/// one [`Histogram`]. Accumulate with [`Fold::record`], then publish
/// the batch via [`Histogram::record_fold`].
#[derive(Debug)]
pub struct Fold {
    buckets: [u64; BUCKETS + 1],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Fold {
    fn default() -> Self {
        Self::new()
    }
}

impl Fold {
    /// An empty fold.
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one sample, with the same non-finite drop rule as
    /// [`Histogram::record`].
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Whether anything has been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Restores the empty state (no deallocation — `Fold` is inline).
    pub fn clear(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_powers_of_two() {
        for i in 1..BUCKETS {
            assert_eq!(bucket_bound(i), 2.0 * bucket_bound(i - 1));
        }
        assert_eq!(bucket_bound(OFFSET as usize), 1.0);
    }

    #[test]
    fn bucket_index_respects_bounds() {
        // Every value lands in the smallest bucket whose bound holds it.
        for (value, expected) in [
            (0.0, 0),
            (1e-9, 0),
            (bucket_bound(0), 0),
            (bucket_bound(0) * 1.01, 1),
            (0.75, OFFSET as usize),
            (1.0, OFFSET as usize),
            (1.5, OFFSET as usize + 1),
            (bucket_bound(BUCKETS - 1), BUCKETS - 1),
            (bucket_bound(BUCKETS - 1) * 2.0, BUCKETS),
            (f64::MAX, BUCKETS),
        ] {
            assert_eq!(bucket_index(value), expected, "value {value}");
        }
        // Exact powers of two sit at their own bound, never one above.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound {i}");
        }
    }

    #[test]
    fn record_accumulates_stats() {
        let h = Histogram::new();
        for v in [0.5, 2.0, 2.0, 64.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 68.5).abs() < 1e-12);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(64.0));
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 4);
        assert_eq!(buckets[bucket_index(2.0)], 2);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn record_fold_matches_per_sample_recording() {
        let direct = Histogram::new();
        let folded = Histogram::new();
        let mut fold = Fold::new();
        assert!(fold.is_empty());
        for v in [0.5, 2.0, 2.0, 64.0, f64::NAN, f64::INFINITY] {
            direct.record(v);
            fold.record(v);
        }
        assert!(!fold.is_empty());
        folded.record_fold(&fold);
        assert_eq!(folded.count(), direct.count());
        assert_eq!(folded.sum(), direct.sum());
        assert_eq!(folded.min(), direct.min());
        assert_eq!(folded.max(), direct.max());
        assert_eq!(folded.bucket_counts(), direct.bucket_counts());
        // Publishing an empty fold leaves the histogram untouched.
        fold.clear();
        assert!(fold.is_empty());
        folded.record_fold(&fold);
        assert_eq!(folded.count(), direct.count());
    }

    #[test]
    fn reset_restores_the_empty_state() {
        let h = Histogram::new();
        h.record(3.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), None);
        assert!(h.bucket_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 / 100.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4000);
    }
}
