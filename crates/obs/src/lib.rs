#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Observability layer for the localization stack.
//!
//! The serving pipeline (DESIGN.md §13) records three kinds of signals:
//!
//! * **counters** — monotone event counts (k-NN candidates scanned,
//!   degradation-rung occupancy, cache hits/misses);
//! * **gauges** — last-written values (resolved worker-pool size);
//! * **histograms** — fixed-bucket distributions, fed either directly
//!   (items per worker) or by RAII [`span::Span`] timers (per-stage
//!   latency in seconds).
//!
//! Everything funnels through the [`recorder::Recorder`] trait. The
//! process-global recorder defaults to a no-op and recording is gated
//! by one relaxed atomic flag, so an instrumented hot path pays a
//! single predicted branch while disabled and stays **bit-identical**:
//! no signal ever feeds back into the computation (locked in by
//! `crates/eval/tests/observability.rs`).
//!
//! # Usage
//!
//! ```
//! // Serving code records unconditionally; calls are no-ops until a
//! // collector enables the global registry.
//! moloc_obs::counter_add("demo.queries", 1);
//! assert!(moloc_obs::snapshot().counter("demo.queries").is_none());
//!
//! moloc_obs::enable();
//! {
//!     let _span = moloc_obs::span("demo.stage");
//!     moloc_obs::counter_add("demo.queries", 1);
//! }
//! let snap = moloc_obs::snapshot();
//! assert_eq!(snap.counter("demo.queries"), Some(1));
//! assert_eq!(snap.histogram("demo.stage").map(|h| h.count), Some(1));
//! moloc_obs::set_enabled(false);
//! # moloc_obs::reset();
//! ```
//!
//! This crate deliberately has **zero dependencies** — the snapshot
//! serializes to JSON with a hand-rolled writer — so every crate on the
//! localization path can depend on it without widening the build.

mod buffer;
pub mod hist;
pub mod recorder;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use hist::Fold;
pub use recorder::{NoopRecorder, Recorder};
pub use registry::MetricsRegistry;
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether the global recorder is currently collecting. Relaxed is
/// enough: recording is advisory and never synchronizes data.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global registry, materialized on first use.
static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global [`MetricsRegistry`] (created on first call).
///
/// The registry exists independently of the enabled flag so tests and
/// collectors can snapshot or pre-declare metrics before enabling.
pub fn global() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Turns global recording on. Returns the global registry.
pub fn enable() -> &'static MetricsRegistry {
    let registry = global();
    ENABLED.store(true, Ordering::Relaxed);
    registry
}

/// Sets the enabled flag (for tests and benchmark arms that toggle
/// recording; production collectors use [`enable`]).
pub fn set_enabled(on: bool) {
    if on {
        enable();
    } else {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Whether the global recorder is collecting. One relaxed load — this
/// is the entire disabled-path cost of every recording call.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The active recorder: the global registry when enabled, the shared
/// no-op otherwise.
#[inline]
pub fn recorder() -> &'static dyn Recorder {
    if is_enabled() {
        global()
    } else {
        &NoopRecorder
    }
}

/// Adds `delta` to the named counter (no-op while disabled).
///
/// Inside an open [`Span`] on the current thread the increment is
/// buffered thread-locally and merged into the registry when the
/// outermost span closes (see [`buffer`](self)); outside any span it
/// lands in the registry immediately.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if is_enabled() && !buffer::counter_add(name, delta) {
        global().counter_add(name, delta);
    }
}

/// Sets the named gauge to `value` (no-op while disabled).
#[inline]
pub fn gauge_set(name: &'static str, value: u64) {
    if is_enabled() {
        global().gauge_set(name, value);
    }
}

/// Records `value` into the named histogram (no-op while disabled).
///
/// Buffered like [`counter_add`] while a span is open on this thread.
#[inline]
pub fn record(name: &'static str, value: f64) {
    if is_enabled() && !buffer::record(name, value) {
        global().record(name, value);
    }
}

/// Adds every `(name, delta)` pair in one call — a single enabled check
/// and (inside a span) a single thread-local round trip, where separate
/// [`counter_add`] calls would pay one each. For hot paths that always
/// emit the same few counters together.
#[inline]
pub fn counter_add_batch(entries: &[(&'static str, u64)]) {
    if is_enabled() && !buffer::counter_add_batch(entries) {
        let registry = global();
        for &(name, delta) in entries {
            registry.counter_add(name, delta);
        }
    }
}

/// Publishes a locally accumulated [`Fold`] into the named histogram
/// (no-op while disabled or when the fold is empty). The cheapest way
/// for a hot loop to feed a histogram: accumulate into a plain local
/// `Fold` (no atomics, no thread-local) and publish once per batch.
/// Publication is direct — it does not defer to an open span's buffer.
#[inline]
pub fn record_fold(name: &'static str, fold: &Fold) {
    if is_enabled() && !fold.is_empty() {
        global().histogram_handle(name).record_fold(fold);
    }
}

/// Starts an RAII timing span; its wall-clock duration (seconds) lands
/// in the histogram `name` when the guard drops. While disabled the
/// span never reads the clock.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::start(name, is_enabled())
}

/// Snapshots the global registry (empty when nothing was recorded).
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Zeroes every metric in the global registry, forgetting names too.
/// Meant for tests that measure deltas.
pub fn reset() {
    global().reset();
}

/// Serializes unit tests that touch the process-global registry (the
/// enabled flag and `reset` are cross-cutting state).
#[cfg(test)]
pub(crate) static TEST_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    // The global enabled flag is process state; every test here leaves
    // it disabled and the registry reset, serialized via TEST_GATE.
    fn scoped<F: FnOnce()>(f: F) {
        let _guard = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_calls_record_nothing() {
        scoped(|| {
            counter_add("t.counter", 5);
            gauge_set("t.gauge", 7);
            record("t.hist", 1.0);
            drop(span("t.span"));
            let snap = snapshot();
            assert!(snap.counter("t.counter").is_none());
            assert!(snap.gauge("t.gauge").is_none());
            assert!(snap.histogram("t.hist").is_none());
            assert!(snap.histogram("t.span").is_none());
        });
    }

    #[test]
    fn enabled_calls_land_in_the_snapshot() {
        scoped(|| {
            enable();
            counter_add("t.counter", 2);
            counter_add("t.counter", 3);
            gauge_set("t.gauge", 9);
            gauge_set("t.gauge", 4);
            record("t.hist", 0.25);
            {
                let _span = span("t.span");
            }
            let snap = snapshot();
            assert_eq!(snap.counter("t.counter"), Some(5));
            assert_eq!(snap.gauge("t.gauge"), Some(4));
            let h = snap.histogram("t.hist").expect("histogram recorded");
            assert_eq!(h.count, 1);
            assert!((h.sum - 0.25).abs() < 1e-12);
            let s = snap.histogram("t.span").expect("span recorded");
            assert_eq!(s.count, 1);
            assert!(s.sum >= 0.0);
        });
    }

    #[test]
    fn recorder_switches_with_the_flag() {
        scoped(|| {
            recorder().counter_add("t.noop", 1);
            assert!(snapshot().counter("t.noop").is_none());
            enable();
            recorder().counter_add("t.real", 1);
            assert_eq!(snapshot().counter("t.real"), Some(1));
        });
    }

    #[test]
    fn reset_clears_names_and_values() {
        scoped(|| {
            enable();
            counter_add("t.gone", 1);
            reset();
            assert!(snapshot().counter("t.gone").is_none());
        });
    }
}
