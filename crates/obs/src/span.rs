//! RAII timing spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop and records the duration (in seconds) into the histogram named
//! at creation. Spans are the latency primitive of the stack: every
//! per-stage latency histogram in DESIGN.md §13 is fed by one.
//!
//! While recording is disabled a span holds no timestamp and its drop
//! does nothing — creating one costs a relaxed load and a branch, and
//! the clock is never read.

use crate::recorder::Recorder as _;
use std::time::Instant;

/// An RAII guard that times a named stage.
///
/// Construct through [`crate::span`]; bind it to a named variable
/// (`let _span = ...`) so it lives to the end of the stage — `let _ =`
/// would drop it immediately and record a zero-length span.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span; `armed` is the enabled flag sampled at creation,
    /// so a span started while enabled still records if recording is
    /// toggled off mid-flight (the reverse never reads the clock).
    ///
    /// An armed span also opens the thread-local delta buffer: counter
    /// increments and histogram samples recorded while it (or any
    /// nested armed span) is alive are merged locally and flushed to
    /// the registry when the outermost armed span drops.
    pub(crate) fn start(name: &'static str, armed: bool) -> Self {
        if armed {
            crate::buffer::enter_span();
        }
        Self {
            name,
            start: armed.then(Instant::now),
        }
    }

    /// The histogram this span records into.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this span is actually timing (recording was enabled at
    /// creation).
    pub fn is_armed(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // The span's own duration buffers too, and the same
            // thread-local round trip closes the span — flushing
            // everything if this was the outermost armed span.
            let elapsed = start.elapsed().as_secs_f64();
            if !crate::buffer::close_span(self.name, elapsed) {
                crate::global().record(self.name, elapsed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_span_never_times() {
        let _guard = crate::TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let span = Span::start("t.span.disarmed", false);
        assert!(!span.is_armed());
        assert_eq!(span.name(), "t.span.disarmed");
        drop(span);
        assert!(crate::global()
            .snapshot()
            .histogram("t.span.disarmed")
            .is_none());
    }

    #[test]
    fn armed_span_records_a_nonnegative_duration() {
        let _guard = crate::TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let span = Span::start("t.span.armed", true);
        assert!(span.is_armed());
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(span);
        let h = crate::global()
            .snapshot()
            .histogram("t.span.armed")
            .cloned()
            .expect("span recorded");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.001, "slept at least 1 ms, recorded {}", h.sum);
    }
}
