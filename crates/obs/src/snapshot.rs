//! Point-in-time metric snapshots and their JSON form.
//!
//! [`MetricsSnapshot`] is the boundary artifact of the observability
//! layer: `repro --metrics out.json` writes one, the `metrics_check` CI
//! binary validates one, and tests diff two to measure a workload. The
//! JSON writer is hand-rolled (this crate has no dependencies); output
//! is deterministic — keys sorted, buckets in bound order — so
//! snapshots diff cleanly.

use crate::hist::{bucket_bound, Histogram, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier stamped into every snapshot.
pub const SCHEMA: &str = "moloc.metrics.v1";

/// A frozen histogram: summary stats plus non-empty buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: f64,
    /// Smallest sample, 0 when empty.
    pub min: f64,
    /// Largest sample, 0 when empty.
    pub max: f64,
    /// `(upper_bound, count)` for every non-empty bucket, in bound
    /// order; an upper bound of `f64::INFINITY` is the overflow bucket.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    fn freeze(h: &Histogram) -> Self {
        let buckets = h
            .bucket_counts()
            .into_iter()
            .enumerate()
            .filter(|&(_, count)| count > 0)
            .map(|(i, count)| {
                let bound = if i < BUCKETS {
                    bucket_bound(i)
                } else {
                    f64::INFINITY
                };
                (bound, count)
            })
            .collect();
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
            buckets,
        }
    }

    /// The mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// A frozen registry: every counter, gauge, and histogram by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub(crate) fn collect(
        counters: &std::collections::HashMap<
            &'static str,
            std::sync::Arc<std::sync::atomic::AtomicU64>,
        >,
        gauges: &std::collections::HashMap<
            &'static str,
            std::sync::Arc<std::sync::atomic::AtomicU64>,
        >,
        histograms: &std::collections::HashMap<&'static str, std::sync::Arc<Histogram>>,
    ) -> Self {
        use std::sync::atomic::Ordering;
        Self {
            counters: counters
                .iter()
                .map(|(&name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: gauges
                .iter()
                .map(|(&name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: histograms
                .iter()
                .map(|(&name, h)| (name.to_string(), HistogramSnapshot::freeze(h)))
                .collect(),
        }
    }

    /// Whether nothing was ever recorded or declared.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The named counter's value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The change from `earlier` to `self` in a named counter
    /// (saturating at 0 — counters are monotone between resets).
    pub fn counter_delta(&self, earlier: &MetricsSnapshot, name: &str) -> u64 {
        self.counter(name)
            .unwrap_or(0)
            .saturating_sub(earlier.counter(name).unwrap_or(0))
    }

    /// Serializes the snapshot as pretty-printed JSON (trailing
    /// newline included). Deterministic: keys sorted, buckets in bound
    /// order, floats in shortest round-trip form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));

        out.push_str("  \"counters\": {");
        write_u64_map(&mut out, &self.counters);
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        write_u64_map(&mut out, &self.gauges);
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_string(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
            );
            for (j, &(le, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le\": {}, \"count\": {}}}", json_f64(le), count);
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn write_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", json_string(name), value);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

/// A JSON string literal (metric names are ASCII identifiers, but the
/// escaper handles the general case).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for `v`. JSON has no Infinity/NaN; the overflow
/// bucket's bound serializes as a large sentinel, other non-finite
/// values (which recording already filters) as 0.
fn json_f64(v: f64) -> String {
    if v == f64::INFINITY {
        return "1e308".to_string();
    }
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // `{}` prints integral floats without a decimal point; keep them
    // unambiguously floats for schema checkers.
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder as _;
    use crate::registry::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter_add("b.counter", 7);
        r.counter_add("a.counter", 2);
        r.gauge_set("threads", 4);
        r.record("lat", 0.5);
        r.record("lat", 3.0);
        r.snapshot()
    }

    #[test]
    fn accessors_read_back_recorded_values() {
        let snap = sample();
        assert_eq!(snap.counter("a.counter"), Some(2));
        assert_eq!(snap.gauge("threads"), Some(4));
        let h = snap.histogram("lat").expect("recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), Some(1.75));
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 2);
    }

    #[test]
    fn counter_delta_diffs_two_snapshots() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 3);
        let before = r.snapshot();
        r.counter_add("c", 5);
        r.counter_add("new", 1);
        let after = r.snapshot();
        assert_eq!(after.counter_delta(&before, "c"), 5);
        assert_eq!(after.counter_delta(&before, "new"), 1);
        assert_eq!(after.counter_delta(&before, "absent"), 0);
        assert_eq!(before.counter_delta(&after, "c"), 0); // saturates
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"moloc.metrics.v1\""));
        // BTreeMap ordering: a.counter before b.counter.
        let ia = a.find("a.counter").expect("a.counter present");
        let ib = a.find("b.counter").expect("b.counter present");
        assert!(ia < ib);
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = MetricsRegistry::new().snapshot();
        assert!(snap.is_empty());
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn json_escapes_and_number_forms() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[test]
    fn overflow_bucket_serializes_with_sentinel_bound() {
        let r = MetricsRegistry::new();
        r.record("big", 1e12);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"le\": 1e308"), "{json}");
    }
}
