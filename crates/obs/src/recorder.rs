//! The recording interface.
//!
//! Instrumented code talks to a [`Recorder`]; the trait's default
//! methods do nothing, so [`NoopRecorder`] is a zero-cost sink and the
//! real [`crate::registry::MetricsRegistry`] only overrides what it
//! implements. Keeping the interface this narrow — three methods, all
//! `&self`, all infallible — is what lets hot paths carry
//! instrumentation unconditionally.

/// A sink for counters, gauges, and histogram samples.
///
/// Names are `&'static str` by design: every metric name in the stack
/// is a compile-time literal from the taxonomy in DESIGN.md §13, which
/// keeps recording allocation-free and makes the full name set
/// auditable with grep.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotone counter.
    fn counter_add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Overwrites the named gauge with `value`.
    fn gauge_set(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records one `value` into the named histogram. Non-finite values
    /// are dropped by implementations rather than poisoning buckets.
    fn record(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }
}

/// The do-nothing recorder: every method keeps the trait's empty
/// default body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let r = NoopRecorder;
        r.counter_add("a", 1);
        r.gauge_set("b", 2);
        r.record("c", 3.0);
    }

    #[test]
    fn defaults_make_custom_sinks_trivial() {
        struct CountOnly(std::sync::atomic::AtomicU64);
        impl Recorder for CountOnly {
            fn counter_add(&self, _name: &'static str, delta: u64) {
                self.0
                    .fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let sink = CountOnly(std::sync::atomic::AtomicU64::new(0));
        sink.counter_add("x", 4);
        sink.record("ignored", 1.0); // default no-op
        assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 4);
    }
}
