//! Property-based tests for the mobility substrate.

use moloc_geometry::polygon::Aabb;
use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
use moloc_mobility::trajectory::Trajectory;
use moloc_mobility::user::{paper_users, UserProfile};
use moloc_mobility::walk::{random_walk, random_walk_from};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world(cols: u32, rows: u32) -> (ReferenceGrid, WalkGraph) {
    let grid = ReferenceGrid::new(Vec2::new(2.0, 50.0), cols, rows, 3.0, 3.0).unwrap();
    let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(100.0, 100.0)).unwrap());
    let graph = WalkGraph::from_grid(&grid, &plan);
    (grid, graph)
}

fn user() -> UserProfile {
    paper_users()[1]
}

proptest! {
    #[test]
    fn walks_stay_on_graph_edges(
        cols in 2u32..7, rows in 2u32..5,
        segments in 1usize..60,
        seed in 0u64..300,
    ) {
        let (_, graph) = world(cols, rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let path = random_walk(&graph, segments, &mut rng);
        prop_assert_eq!(path.len(), segments + 1);
        for w in path.windows(2) {
            prop_assert!(graph.are_adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn walks_from_every_start_are_valid(
        start in 0usize..20,
        seed in 0u64..100,
    ) {
        let (_, graph) = world(5, 4);
        let start = LocationId::from_index(start % graph.node_count());
        let mut rng = StdRng::seed_from_u64(seed);
        let path = random_walk_from(&graph, start, 10, &mut rng);
        prop_assert_eq!(path[0], start);
    }

    #[test]
    fn trajectory_times_are_strictly_increasing(
        segments in 1usize..40,
        seed in 0u64..200,
        speed in 0.5..2.0f64,
    ) {
        let (grid, graph) = world(5, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let path = random_walk(&graph, segments, &mut rng);
        let mut u = user();
        u.speed_mps = speed;
        let traj = Trajectory::from_path(&path, &grid, &u).unwrap();
        for w in traj.passes().windows(2) {
            prop_assert!(w[1].time > w[0].time);
        }
        // Total duration = total path length / speed.
        let length: f64 = path.windows(2).map(|w| grid.distance(w[0], w[1])).sum();
        prop_assert!((traj.duration() - length / speed).abs() < 1e-9);
    }

    #[test]
    fn position_at_pass_times_is_the_pass_position(
        segments in 1usize..20,
        seed in 0u64..100,
    ) {
        let (grid, graph) = world(4, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let path = random_walk(&graph, segments, &mut rng);
        let traj = Trajectory::from_path(&path, &grid, &user()).unwrap();
        for p in traj.passes() {
            prop_assert!(traj.position_at(p.time).dist(p.position) < 1e-6);
        }
    }

    #[test]
    fn headings_at_mid_segment_match_segment_bearings(
        segments in 1usize..20,
        seed in 0u64..100,
    ) {
        let (grid, graph) = world(4, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let path = random_walk(&graph, segments, &mut rng);
        let traj = Trajectory::from_path(&path, &grid, &user()).unwrap();
        for (a, b) in traj.segments() {
            let mid = (a.time + b.time) / 2.0;
            let heading = traj.heading_at(mid).expect("inside the trajectory");
            let bearing = a.position.bearing_deg_to(b.position);
            prop_assert!(
                moloc_stats::circular::abs_diff_deg(heading, bearing) < 1e-6,
                "segment heading {heading} vs bearing {bearing}"
            );
        }
    }

    #[test]
    fn step_period_scales_inversely_with_speed(
        s1 in 0.6..1.8f64,
        s2 in 0.6..1.8f64,
    ) {
        let mut a = user();
        let mut b = user();
        a.speed_mps = s1;
        b.speed_mps = s2;
        if s1 < s2 {
            prop_assert!(a.step_period_s() > b.step_period_s());
        } else if s2 < s1 {
            prop_assert!(b.step_period_s() > a.step_period_s());
        }
    }
}
