//! Bulk trace generation — the paper's 184-trace corpus.
//!
//! Sec. VI-A: four users, 184 traces covering every reference location
//! 30+ times; 150 traces train the motion database, 34 are held out for
//! localization. [`TraceCorpus::generate`] reproduces the protocol with
//! a single master seed.

use crate::render::{SensorTrace, TraceRenderer};
use crate::trajectory::Trajectory;
use crate::user::UserProfile;
use crate::walk::random_walk;
use moloc_geometry::{ReferenceGrid, WalkGraph};
use moloc_radio::RadioEnvironment;
use moloc_stats::sampling::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Total traces (paper: 184).
    pub total_traces: usize,
    /// Traces assigned to motion-database training (paper: 150).
    pub train_traces: usize,
    /// Aisle segments walked per trace.
    pub segments_per_trace: usize,
    /// Master seed; every trace derives its own stream.
    pub seed: u64,
}

impl CorpusConfig {
    /// The paper's corpus shape with a practical per-trace length.
    pub fn paper(seed: u64) -> Self {
        Self {
            total_traces: 184,
            train_traces: 150,
            segments_per_trace: 20,
            seed,
        }
    }

    /// A small corpus for fast tests: large enough that the motion
    /// database covers most aisles, small enough to build in
    /// milliseconds.
    pub fn small(seed: u64) -> Self {
        Self {
            total_traces: 90,
            train_traces: 75,
            segments_per_trace: 14,
            seed,
        }
    }
}

/// The generated trace corpus, split into train and test sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceCorpus {
    /// Motion-database training traces.
    pub train: Vec<SensorTrace>,
    /// Held-out localization traces.
    pub test: Vec<SensorTrace>,
}

impl TraceCorpus {
    /// Generates the corpus: traces round-robin across `users`, each an
    /// independent seeded random walk rendered against `env`.
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty, `train_traces > total_traces`, or a
    /// generated walk is too short to form a trajectory (a disconnected
    /// graph).
    pub fn generate(
        env: &RadioEnvironment,
        grid: &ReferenceGrid,
        graph: &WalkGraph,
        users: &[UserProfile],
        config: CorpusConfig,
    ) -> Self {
        assert!(!users.is_empty(), "corpus needs at least one user");
        assert!(
            config.train_traces <= config.total_traces,
            "train split exceeds total traces"
        );
        let renderer = TraceRenderer::default();
        let mut traces = Vec::with_capacity(config.total_traces);
        for i in 0..config.total_traces {
            let user = &users[i % users.len()];
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, i as u64));
            let path = random_walk(graph, config.segments_per_trace, &mut rng);
            let trajectory = Trajectory::from_path(&path, grid, user)
                .expect("random walks on a connected graph have >= 2 nodes");
            traces.push(renderer.render(&trajectory, user, env, &mut rng));
        }
        let test = traces.split_off(config.train_traces);
        Self {
            train: traces,
            test,
        }
    }

    /// Total traces across both splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }

    /// Iterates all traces (train then test).
    pub fn iter(&self) -> impl Iterator<Item = &SensorTrace> {
        self.train.iter().chain(self.test.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::paper_users;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, Vec2};
    use moloc_radio::ap::AccessPoint;
    use std::collections::HashMap;

    fn world() -> (RadioEnvironment, ReferenceGrid, WalkGraph) {
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(20.0, 10.0)).unwrap());
        let env = RadioEnvironment::builder(plan.clone())
            .ap(AccessPoint::new(0, Vec2::new(10.0, 5.0), -20.0))
            .build()
            .unwrap();
        let grid = ReferenceGrid::new(Vec2::new(2.0, 8.0), 4, 2, 4.0, 4.0).unwrap();
        let graph = WalkGraph::from_grid(&grid, &plan);
        (env, grid, graph)
    }

    #[test]
    fn split_sizes_match_config() {
        let (env, grid, graph) = world();
        let corpus =
            TraceCorpus::generate(&env, &grid, &graph, &paper_users(), CorpusConfig::small(1));
        assert_eq!(corpus.train.len(), 75);
        assert_eq!(corpus.test.len(), 15);
        assert_eq!(corpus.len(), 90);
        assert!(!corpus.is_empty());
    }

    #[test]
    fn users_rotate_round_robin() {
        let (env, grid, graph) = world();
        let corpus =
            TraceCorpus::generate(&env, &grid, &graph, &paper_users(), CorpusConfig::small(1));
        let ids: Vec<u32> = corpus.iter().map(|t| t.user.id).collect();
        assert_eq!(&ids[..4], &[1, 2, 3, 4]);
        assert_eq!(ids[4], 1);
    }

    #[test]
    fn traces_have_expected_pass_counts() {
        let (env, grid, graph) = world();
        let corpus =
            TraceCorpus::generate(&env, &grid, &graph, &paper_users(), CorpusConfig::small(2));
        for t in corpus.iter() {
            assert_eq!(t.pass_count(), 15); // segments + 1
        }
    }

    #[test]
    fn corpus_covers_all_locations() {
        let (env, grid, graph) = world();
        let config = CorpusConfig {
            total_traces: 30,
            train_traces: 24,
            segments_per_trace: 20,
            seed: 3,
        };
        let corpus = TraceCorpus::generate(&env, &grid, &graph, &paper_users(), config);
        let mut visits: HashMap<u32, usize> = HashMap::new();
        for t in corpus.iter() {
            for p in &t.passes {
                *visits.entry(p.location.get()).or_default() += 1;
            }
        }
        for id in grid.ids() {
            assert!(
                visits.get(&id.get()).copied().unwrap_or(0) > 0,
                "{id} never visited"
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let (env, grid, graph) = world();
        let a = TraceCorpus::generate(&env, &grid, &graph, &paper_users(), CorpusConfig::small(5));
        let b = TraceCorpus::generate(&env, &grid, &graph, &paper_users(), CorpusConfig::small(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "train split")]
    fn oversized_train_split_panics() {
        let (env, grid, graph) = world();
        let config = CorpusConfig {
            total_traces: 5,
            train_traces: 6,
            segments_per_trace: 4,
            seed: 0,
        };
        let _ = TraceCorpus::generate(&env, &grid, &graph, &paper_users(), config);
    }
}
