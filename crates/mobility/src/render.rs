//! Sensor-trace rendering.
//!
//! [`TraceRenderer`] turns a timed [`Trajectory`] into everything the
//! paper's phone would have recorded: accelerometer magnitude and
//! compass readings at 10 Hz, and a WiFi scan at every reference-
//! location pass (the trace-driven protocol of Sec. VI-A).

use crate::trajectory::{PassEvent, Trajectory};
use crate::user::UserProfile;
use moloc_radio::RadioEnvironment;
use moloc_sensors::gyro::GyroSynthesizer;
use moloc_sensors::series::TimeSeries;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully rendered walking trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorTrace {
    /// The walker.
    pub user: UserProfile,
    /// Ground-truth passes over reference locations.
    pub passes: Vec<PassEvent>,
    /// Accelerometer magnitude at the renderer's sample rate.
    pub accel: TimeSeries,
    /// Compass readings (degrees, wrapped) at the same rate.
    pub compass: TimeSeries,
    /// Gyroscope z-axis turn rates (°/s) at the same rate — the raw
    /// material of the paper's future-work heading fusion.
    pub gyro: TimeSeries,
    /// One RSS scan (dBm per AP) per pass, aligned with `passes`.
    pub scans: Vec<Vec<f64>>,
}

impl SensorTrace {
    /// Number of passes (and scans).
    pub fn pass_count(&self) -> usize {
        self.passes.len()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.passes.last().map_or(0.0, |p| p.time)
    }
}

/// Renders trajectories into sensor traces against a radio environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRenderer {
    /// IMU sample rate in Hz (paper: 10).
    pub sample_rate_hz: f64,
    /// Gyroscope error model (typical consumer MEMS defaults).
    pub gyro_model: GyroSynthesizer,
}

impl Default for TraceRenderer {
    fn default() -> Self {
        Self {
            sample_rate_hz: 10.0,
            gyro_model: GyroSynthesizer::new(0.3, 0.5),
        }
    }
}

impl TraceRenderer {
    /// Renders one trace.
    ///
    /// The user walks the whole trajectory at constant cadence, so the
    /// accelerometer is one continuous gait signal; compass readings
    /// follow the segment bearings through the user's placement offset
    /// and noise; one fresh RSS scan is taken at each pass.
    ///
    /// # Panics
    ///
    /// Panics if the sample rate is not positive.
    pub fn render<R: Rng + ?Sized>(
        &self,
        trajectory: &Trajectory,
        user: &UserProfile,
        env: &RadioEnvironment,
        rng: &mut R,
    ) -> SensorTrace {
        assert!(self.sample_rate_hz > 0.0, "sample rate must be positive");
        user.validate();
        let duration = trajectory.duration();
        let (accel, _) = user.gait().synthesize_segment(
            duration,
            user.step_period_s(),
            0.0,
            self.sample_rate_hz,
            rng,
        );

        let compass_model = user.compass();
        let n = accel.len();
        let dt = 1.0 / self.sample_rate_hz;
        let mut last_heading = 0.0;
        let mut true_headings = Vec::with_capacity(n);
        let compass_values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                if let Some(h) = trajectory.heading_at(t) {
                    last_heading = h;
                }
                true_headings.push(last_heading);
                compass_model.read(last_heading, rng)
            })
            .collect();
        let compass = TimeSeries::new(0.0, self.sample_rate_hz, compass_values)
            .expect("positive sample rate");
        let truth_series =
            TimeSeries::new(0.0, self.sample_rate_hz, true_headings).expect("positive sample rate");
        let gyro = self.gyro_model.synthesize(&truth_series, rng);

        let scans = trajectory
            .passes()
            .iter()
            .map(|p| {
                env.scan(p.position, rng)
                    .into_iter()
                    .map(f64::from)
                    .collect()
            })
            .collect();

        SensorTrace {
            user: *user,
            passes: trajectory.passes().to_vec(),
            accel,
            compass,
            gyro,
            scans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::paper_users;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2};
    use moloc_radio::ap::AccessPoint;
    use moloc_sensors::steps::StepDetector;
    use moloc_stats::circular::abs_diff_deg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn world() -> (RadioEnvironment, ReferenceGrid) {
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(20.0, 10.0)).unwrap());
        let env = RadioEnvironment::builder(plan)
            .ap(AccessPoint::new(0, Vec2::new(5.0, 5.0), -20.0))
            .ap(AccessPoint::new(1, Vec2::new(15.0, 5.0), -20.0))
            .temporal_sigma_db(2.0)
            .build()
            .unwrap();
        let grid = ReferenceGrid::new(Vec2::new(2.0, 8.0), 3, 2, 4.0, 4.0).unwrap();
        (env, grid)
    }

    fn render_simple(seed: u64) -> SensorTrace {
        let (env, grid) = world();
        let user = paper_users()[1];
        let traj = Trajectory::from_path(&[l(1), l(2), l(5)], &grid, &user).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        TraceRenderer::default().render(&traj, &user, &env, &mut rng)
    }

    #[test]
    fn trace_shape_is_consistent() {
        let trace = render_simple(1);
        assert_eq!(trace.pass_count(), 3);
        assert_eq!(trace.scans.len(), 3);
        assert_eq!(trace.scans[0].len(), 2);
        assert_eq!(trace.accel.len(), trace.compass.len());
        assert!((trace.accel.duration() - trace.duration()).abs() < 0.2);
    }

    #[test]
    fn accel_contains_detectable_steps() {
        let trace = render_simple(2);
        let steps = StepDetector::default().detect(&trace.accel);
        // 8 m at user 2's step length (~0.70 m) ≈ 11 steps.
        let expected = 8.0 / trace.user.step_length_m();
        assert!(
            (steps.len() as f64 - expected).abs() <= 2.0,
            "{} steps vs expected {expected}",
            steps.len()
        );
    }

    #[test]
    fn compass_tracks_offset_heading_per_segment() {
        let trace = render_simple(3);
        let offset = trace.user.placement_offset_deg + trace.user.compass_bias_deg;
        // First segment heads east (90°).
        let first = trace.compass.slice_time(0.0, 3.0);
        let mean =
            moloc_stats::circular::circular_mean_deg(first.values().iter().copied()).unwrap();
        assert!(
            abs_diff_deg(mean, 90.0 + offset) < 6.0,
            "mean {mean} vs 90 + {offset}"
        );
    }

    #[test]
    fn scans_reflect_pass_positions() {
        let (env, grid) = world();
        let trace = render_simple(4);
        // First pass is at L1, near AP0 and far from AP1 → RSS(ap0) >
        // RSS(ap1) on average.
        let _ = env;
        let p0 = grid.position(l(1));
        assert_eq!(trace.passes[0].position, p0);
        assert!(trace.scans[0][0] > trace.scans[0][1]);
    }

    #[test]
    fn rendering_is_reproducible() {
        assert_eq!(render_simple(9), render_simple(9));
        assert_ne!(render_simple(9), render_simple(10));
    }
}
