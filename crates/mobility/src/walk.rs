//! Seeded random walks on the walkable aisle graph.
//!
//! The crowdsourcing users "randomly walked along the aisles"
//! (Sec. VI-A); [`random_walk`] reproduces that: start anywhere, repeat
//! "pick a random neighbor, preferring not to immediately backtrack".

use moloc_geometry::{LocationId, WalkGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a random walk of `segments + 1` reference locations over
/// the graph, starting at a uniformly random node.
///
/// Immediate backtracking (`a → b → a`) is avoided whenever the current
/// node has another neighbor, matching how people wander aisles. Nodes
/// with no neighbors end the walk early.
///
/// # Panics
///
/// Panics if the graph has no nodes.
pub fn random_walk<R: Rng + ?Sized>(
    graph: &WalkGraph,
    segments: usize,
    rng: &mut R,
) -> Vec<LocationId> {
    assert!(graph.node_count() > 0, "graph must have nodes");
    let start = LocationId::from_index(rng.gen_range(0..graph.node_count()));
    random_walk_from(graph, start, segments, rng)
}

/// Like [`random_walk`] but with an explicit start node.
///
/// # Panics
///
/// Panics if `start` is out of range for the graph.
pub fn random_walk_from<R: Rng + ?Sized>(
    graph: &WalkGraph,
    start: LocationId,
    segments: usize,
    rng: &mut R,
) -> Vec<LocationId> {
    assert!(
        start.index() < graph.node_count(),
        "{start} out of range for graph"
    );
    let mut path = Vec::with_capacity(segments + 1);
    path.push(start);
    let mut previous: Option<LocationId> = None;
    let mut current = start;
    for _ in 0..segments {
        let neighbors: Vec<LocationId> = graph.neighbors(current).map(|(id, _)| id).collect();
        if neighbors.is_empty() {
            break;
        }
        let non_backtracking: Vec<LocationId> = neighbors
            .iter()
            .copied()
            .filter(|&n| Some(n) != previous)
            .collect();
        let pool = if non_backtracking.is_empty() {
            &neighbors
        } else {
            &non_backtracking
        };
        let next = *pool.choose(rng).expect("pool is non-empty");
        previous = Some(current);
        path.push(next);
        current = next;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::floorplan::FloorPlan;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{ReferenceGrid, Vec2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn world() -> WalkGraph {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 7.0), 4, 4, 2.0, 2.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(9.0, 9.0)).unwrap());
        WalkGraph::from_grid(&grid, &plan)
    }

    #[test]
    fn walk_has_requested_length_and_valid_edges() {
        let g = world();
        let mut rng = StdRng::seed_from_u64(1);
        let path = random_walk(&g, 30, &mut rng);
        assert_eq!(path.len(), 31);
        for w in path.windows(2) {
            assert!(g.are_adjacent(w[0], w[1]), "{} !~ {}", w[0], w[1]);
        }
    }

    #[test]
    fn walk_avoids_immediate_backtracking_when_possible() {
        let g = world();
        let mut rng = StdRng::seed_from_u64(2);
        let path = random_walk(&g, 200, &mut rng);
        let backtracks = path.windows(3).filter(|w| w[0] == w[2]).count();
        // Interior nodes always offer an alternative; only degree-1
        // dead-ends could force backtracking, and this grid has none.
        assert_eq!(backtracks, 0);
    }

    #[test]
    fn walk_from_fixed_start() {
        let g = world();
        let mut rng = StdRng::seed_from_u64(3);
        let path = random_walk_from(&g, l(6), 10, &mut rng);
        assert_eq!(path[0], l(6));
        assert_eq!(path.len(), 11);
    }

    #[test]
    fn isolated_node_ends_walk() {
        let g = WalkGraph::with_nodes(3);
        let mut rng = StdRng::seed_from_u64(4);
        let path = random_walk_from(&g, l(2), 10, &mut rng);
        assert_eq!(path, vec![l(2)]);
    }

    #[test]
    fn dead_end_backtracks_rather_than_stalls() {
        // 1 - 2 - 3 as a path graph: from 1, a long walk must bounce.
        let mut g = WalkGraph::with_nodes(3);
        g.add_edge(l(1), l(2), 1.0);
        g.add_edge(l(2), l(3), 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let path = random_walk_from(&g, l(1), 6, &mut rng);
        assert_eq!(path.len(), 7);
        for w in path.windows(2) {
            assert!(g.are_adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn walks_are_reproducible_and_seed_sensitive() {
        let g = world();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_walk(&g, 50, &mut rng)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn long_walks_cover_most_of_the_grid() {
        let g = world();
        let mut rng = StdRng::seed_from_u64(11);
        let path = random_walk(&g, 400, &mut rng);
        let distinct: std::collections::HashSet<_> = path.iter().collect();
        assert!(distinct.len() >= 12, "covered {} of 16", distinct.len());
    }
}
