//! Timed trajectories with ground-truth pass events.
//!
//! A [`Trajectory`] turns a node path from [`crate::walk`] into timed
//! motion: the user walks straight aisle segments at her constant speed,
//! passing each reference location at a known time. Pass events are the
//! ground truth the evaluation scores against (the paper had users mark
//! passes manually).

use crate::user::UserProfile;
use moloc_geometry::{LocationId, ReferenceGrid, Vec2};
use serde::{Deserialize, Serialize};

/// A ground-truth pass over a reference location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PassEvent {
    /// Time of the pass, seconds from trace start.
    pub time: f64,
    /// The reference location passed.
    pub location: LocationId,
    /// Its position.
    pub position: Vec2,
}

/// A timed path through reference locations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    passes: Vec<PassEvent>,
    speed_mps: f64,
}

/// Error constructing a [`Trajectory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryError {
    /// The node path had fewer than two locations.
    TooShort,
    /// Two consecutive path nodes coincide.
    ZeroLengthSegment,
}

impl std::fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrajectoryError::TooShort => write!(f, "trajectory needs at least two locations"),
            TrajectoryError::ZeroLengthSegment => {
                write!(f, "consecutive trajectory nodes must differ")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

impl Trajectory {
    /// Times a node path for a user walking at constant speed, starting
    /// at `t = 0` on the first location.
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError`] for paths shorter than two nodes or
    /// with repeated consecutive nodes.
    pub fn from_path(
        path: &[LocationId],
        grid: &ReferenceGrid,
        user: &UserProfile,
    ) -> Result<Self, TrajectoryError> {
        if path.len() < 2 {
            return Err(TrajectoryError::TooShort);
        }
        let mut passes = Vec::with_capacity(path.len());
        let mut t = 0.0;
        for (i, &id) in path.iter().enumerate() {
            if i > 0 {
                let d = grid.distance(path[i - 1], id);
                if d <= 0.0 {
                    return Err(TrajectoryError::ZeroLengthSegment);
                }
                t += d / user.speed_mps;
            }
            passes.push(PassEvent {
                time: t,
                location: id,
                position: grid.position(id),
            });
        }
        Ok(Self {
            passes,
            speed_mps: user.speed_mps,
        })
    }

    /// The ground-truth pass events, in time order.
    pub fn passes(&self) -> &[PassEvent] {
        &self.passes
    }

    /// The walking speed in m/s.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Total duration, seconds.
    pub fn duration(&self) -> f64 {
        self.passes.last().map_or(0.0, |p| p.time)
    }

    /// The user's position at time `t` (clamped to the trajectory's
    /// extent), interpolating linearly along the current segment.
    pub fn position_at(&self, t: f64) -> Vec2 {
        let first = self.passes.first().expect("trajectory has passes");
        if t <= first.time {
            return first.position;
        }
        for w in self.passes.windows(2) {
            if t <= w[1].time {
                let frac = (t - w[0].time) / (w[1].time - w[0].time);
                return w[0].position.lerp(w[1].position, frac);
            }
        }
        self.passes.last().expect("non-empty").position
    }

    /// The compass bearing of the segment the user is on at time `t`
    /// (the segment *after* the pass at or before `t`); `None` past the
    /// end.
    pub fn heading_at(&self, t: f64) -> Option<f64> {
        for w in self.passes.windows(2) {
            if t < w[1].time {
                return w[0].position.bearing_deg_to_checked(w[1].position);
            }
        }
        None
    }

    /// Iterates over the walked segments as
    /// `(from, to, start_time, end_time)`.
    pub fn segments(&self) -> impl Iterator<Item = (PassEvent, PassEvent)> + '_ {
        self.passes.windows(2).map(|w| (w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::paper_users;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn grid() -> ReferenceGrid {
        ReferenceGrid::new(Vec2::new(1.0, 5.0), 3, 2, 2.0, 2.0).unwrap()
    }

    fn user() -> UserProfile {
        UserProfile {
            speed_mps: 1.0,
            ..paper_users()[0]
        }
    }

    #[test]
    fn pass_times_accumulate_distance_over_speed() {
        let traj = Trajectory::from_path(&[l(1), l(2), l(5)], &grid(), &user()).unwrap();
        let times: Vec<f64> = traj.passes().iter().map(|p| p.time).collect();
        assert_eq!(times[0], 0.0);
        assert!((times[1] - 2.0).abs() < 1e-12);
        assert!((times[2] - 4.0).abs() < 1e-12);
        assert!((traj.duration() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_paths() {
        assert_eq!(
            Trajectory::from_path(&[l(1)], &grid(), &user()).unwrap_err(),
            TrajectoryError::TooShort
        );
        assert_eq!(
            Trajectory::from_path(&[l(1), l(1)], &grid(), &user()).unwrap_err(),
            TrajectoryError::ZeroLengthSegment
        );
    }

    #[test]
    fn position_interpolates_linearly() {
        let traj = Trajectory::from_path(&[l(1), l(2)], &grid(), &user()).unwrap();
        let mid = traj.position_at(1.0);
        assert!((mid.x - 2.0).abs() < 1e-12);
        assert!((mid.y - 5.0).abs() < 1e-12);
        // Clamps at both ends.
        assert_eq!(traj.position_at(-5.0), grid().position(l(1)));
        assert_eq!(traj.position_at(100.0), grid().position(l(2)));
    }

    #[test]
    fn heading_follows_segments() {
        let traj = Trajectory::from_path(&[l(1), l(2), l(5)], &grid(), &user()).unwrap();
        // First segment east (90°), second south (180°).
        assert!((traj.heading_at(0.5).unwrap() - 90.0).abs() < 1e-9);
        assert!((traj.heading_at(2.5).unwrap() - 180.0).abs() < 1e-9);
        assert_eq!(traj.heading_at(10.0), None);
    }

    #[test]
    fn segments_iterate_pairs() {
        let traj = Trajectory::from_path(&[l(1), l(2), l(3)], &grid(), &user()).unwrap();
        let segs: Vec<_> = traj.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0.location, l(1));
        assert_eq!(segs[1].1.location, l(3));
    }

    #[test]
    fn faster_user_passes_sooner() {
        let mut fast = user();
        fast.speed_mps = 2.0;
        let slow_traj = Trajectory::from_path(&[l(1), l(2)], &grid(), &user()).unwrap();
        let fast_traj = Trajectory::from_path(&[l(1), l(2)], &grid(), &fast).unwrap();
        assert!(fast_traj.duration() < slow_traj.duration());
    }
}
