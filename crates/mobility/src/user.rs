//! User profiles.
//!
//! Each simulated walker carries the physical attributes the paper's
//! pipeline consumes: height/weight (→ step length via the stride
//! model), walking speed (→ step period), gait vigour (accelerometer
//! amplitude), and how they hold the phone (compass placement offset and
//! noise).

use moloc_sensors::accel::GaitSynthesizer;
use moloc_sensors::compass::CompassSynthesizer;
use moloc_sensors::noise::NoiseModel;
use moloc_sensors::stride::StepLengthModel;
use serde::{Deserialize, Serialize};

/// A simulated walker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Identifier for reporting.
    pub id: u32,
    /// Height in meters.
    pub height_m: f64,
    /// Weight in kilograms.
    pub weight_kg: f64,
    /// Walking speed in m/s.
    pub speed_mps: f64,
    /// Accelerometer gait amplitude in m/s².
    pub gait_amplitude: f64,
    /// Accelerometer white-noise sigma in m/s².
    pub accel_noise_sigma: f64,
    /// Constant offset between phone orientation and motion direction,
    /// degrees.
    pub placement_offset_deg: f64,
    /// Compass white-noise sigma in degrees.
    pub compass_noise_deg: f64,
    /// Constant compass bias in degrees (device hard-iron error).
    pub compass_bias_deg: f64,
    /// Ratio of the user's *actual* step length to the height/weight
    /// model's prediction. Real gaits deviate from the model by a few
    /// percent; this is the offset-measurement error source the paper's
    /// Fig. 6(b) reflects.
    pub step_length_model_ratio: f64,
}

impl UserProfile {
    /// The user's *modeled* step length — what the localization
    /// pipeline believes, from height and weight.
    pub fn step_length_m(&self) -> f64 {
        StepLengthModel::default().step_length_m(self.height_m, self.weight_kg)
    }

    /// The user's *actual* step length, including the model error.
    pub fn actual_step_length_m(&self) -> f64 {
        self.step_length_m() * self.step_length_model_ratio
    }

    /// The user's step period (`actual step length / speed`), seconds —
    /// physical, so it uses the actual stride.
    pub fn step_period_s(&self) -> f64 {
        self.actual_step_length_m() / self.speed_mps
    }

    /// The gait synthesizer for this user.
    pub fn gait(&self) -> GaitSynthesizer {
        GaitSynthesizer {
            amplitude: self.gait_amplitude,
            harmonic_ratio: 0.3,
            noise: NoiseModel::new(0.0, self.accel_noise_sigma),
        }
    }

    /// The compass synthesizer for this user's phone placement.
    pub fn compass(&self) -> CompassSynthesizer {
        CompassSynthesizer::new(
            self.placement_offset_deg,
            self.compass_noise_deg,
            self.compass_bias_deg,
        )
    }

    /// Validates physical plausibility.
    ///
    /// # Panics
    ///
    /// Panics on non-positive height, weight, or speed.
    pub fn validate(&self) {
        assert!(self.height_m > 0.0, "height must be positive");
        assert!(self.weight_kg > 0.0, "weight must be positive");
        assert!(self.speed_mps > 0.0, "speed must be positive");
        assert!(self.gait_amplitude > 0.0, "gait amplitude must be positive");
        assert!(self.accel_noise_sigma >= 0.0 && self.compass_noise_deg >= 0.0);
    }
}

/// The four walkers of the paper's evaluation: "4 users with diverse
/// height and walking speed" (Sec. VI-A).
pub fn paper_users() -> Vec<UserProfile> {
    vec![
        UserProfile {
            id: 1,
            height_m: 1.58,
            weight_kg: 52.0,
            speed_mps: 0.95,
            gait_amplitude: 2.2,
            accel_noise_sigma: 0.25,
            placement_offset_deg: 15.0,
            compass_noise_deg: 6.0,
            compass_bias_deg: 4.0,
            step_length_model_ratio: 0.97,
        },
        UserProfile {
            id: 2,
            height_m: 1.70,
            weight_kg: 65.0,
            speed_mps: 1.15,
            gait_amplitude: 2.8,
            accel_noise_sigma: 0.25,
            placement_offset_deg: -40.0,
            compass_noise_deg: 5.0,
            compass_bias_deg: -6.0,
            step_length_model_ratio: 1.04,
        },
        UserProfile {
            id: 3,
            height_m: 1.78,
            weight_kg: 74.0,
            speed_mps: 1.30,
            gait_amplitude: 3.1,
            accel_noise_sigma: 0.3,
            placement_offset_deg: 75.0,
            compass_noise_deg: 7.0,
            compass_bias_deg: 5.0,
            step_length_model_ratio: 0.98,
        },
        UserProfile {
            id: 4,
            height_m: 1.88,
            weight_kg: 85.0,
            speed_mps: 1.40,
            gait_amplitude: 3.4,
            accel_noise_sigma: 0.3,
            placement_offset_deg: -110.0,
            compass_noise_deg: 6.0,
            compass_bias_deg: -3.0,
            step_length_model_ratio: 1.03,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_users_are_four_and_diverse() {
        let users = paper_users();
        assert_eq!(users.len(), 4);
        for u in &users {
            u.validate();
        }
        let min_h = users.iter().map(|u| u.height_m).fold(f64::MAX, f64::min);
        let max_h = users.iter().map(|u| u.height_m).fold(f64::MIN, f64::max);
        assert!(max_h - min_h > 0.2, "heights should be diverse");
    }

    #[test]
    fn step_lengths_are_plausible() {
        for u in paper_users() {
            let l = u.step_length_m();
            assert!((0.6..0.85).contains(&l), "user {}: {l}", u.id);
        }
    }

    #[test]
    fn step_period_consistent_with_speed() {
        let u = &paper_users()[1];
        let period = u.step_period_s();
        assert!((period * u.speed_mps - u.actual_step_length_m()).abs() < 1e-12);
        assert!((0.4..0.9).contains(&period));
    }

    #[test]
    fn actual_step_length_carries_model_error() {
        for u in paper_users() {
            let ratio = u.actual_step_length_m() / u.step_length_m();
            assert!((ratio - u.step_length_model_ratio).abs() < 1e-12);
            assert!((0.9..1.1).contains(&ratio), "user {}: ratio {ratio}", u.id);
            assert_ne!(u.step_length_model_ratio, 1.0, "model error must exist");
        }
    }

    #[test]
    fn sensor_factories_reflect_profile() {
        let u = &paper_users()[2];
        assert_eq!(u.gait().amplitude, 3.1);
        assert_eq!(u.compass().placement_offset_deg, 75.0);
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn invalid_speed_rejected() {
        let mut u = paper_users()[0];
        u.speed_mps = 0.0;
        u.validate();
    }
}
