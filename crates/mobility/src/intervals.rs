//! Per-interval motion measurements.
//!
//! The motion processing unit of the paper slices a trace at reference-
//! location passes and, for each interval, extracts the raw ingredients
//! of an RLM: the (uncorrected) compass direction and the step counts.
//! Heading-offset correction and step-length scaling happen downstream,
//! where the calibration lives.

use crate::render::SensorTrace;
use moloc_sensors::counting::{csc, dsc};
use moloc_sensors::series::TimeSeries;
use moloc_sensors::steps::StepDetector;
use moloc_stats::circular::circular_mean_deg;
use serde::{Deserialize, Serialize};

/// Raw motion measurements of one inter-pass interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalMeasurement {
    /// Index of the starting pass within the trace.
    pub from_index: usize,
    /// Index of the ending pass.
    pub to_index: usize,
    /// Circular mean of the *raw* compass readings over the interval
    /// (before heading-offset correction); `None` when readings cancel.
    pub raw_direction_deg: Option<f64>,
    /// Continuous (decimal) step count over the interval.
    pub steps_csc: f64,
    /// Discrete (integral) step count over the interval.
    pub steps_dsc: f64,
    /// Interval duration in seconds.
    pub duration_s: f64,
}

/// Measures every inter-pass interval of a trace.
///
/// # Examples
///
/// See the integration tests in `tests/` for an end-to-end use; the
/// shape is:
///
/// ```ignore
/// let measurements = measure_intervals(&trace, &StepDetector::default());
/// assert_eq!(measurements.len(), trace.pass_count() - 1);
/// ```
pub fn measure_intervals(trace: &SensorTrace, detector: &StepDetector) -> Vec<IntervalMeasurement> {
    // One scratch set serves every interval: the slices, the smoothed
    // signal, and the step list are rewritten in place, so the whole
    // trace allocates four buffers instead of four per interval.
    let mut accel = TimeSeries::default();
    let mut compass = TimeSeries::default();
    let mut smoothed = TimeSeries::default();
    let mut steps = Vec::new();
    trace
        .passes
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let (t0, t1) = (w[0].time, w[1].time);
            trace.accel.slice_time_into(t0, t1, &mut accel);
            trace.compass.slice_time_into(t0, t1, &mut compass);
            detector.detect_into(&accel, &mut smoothed, &mut steps);
            IntervalMeasurement {
                from_index: i,
                to_index: i + 1,
                // Non-finite compass samples (sensor gaps) are skipped;
                // the final guard catches an all-gap interval, where the
                // mean itself is NaN — both degrade to `None`, the same
                // as cancelling readings.
                raw_direction_deg: circular_mean_deg(
                    compass.values().iter().copied().filter(|v| v.is_finite()),
                )
                .filter(|d| d.is_finite()),
                steps_csc: csc(&steps, t1 - t0),
                steps_dsc: dsc(&steps),
                duration_s: t1 - t0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::TraceRenderer;
    use crate::trajectory::Trajectory;
    use crate::user::paper_users;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2};
    use moloc_radio::ap::AccessPoint;
    use moloc_radio::RadioEnvironment;
    use moloc_stats::circular::abs_diff_deg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn trace(seed: u64) -> SensorTrace {
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(20.0, 10.0)).unwrap());
        let env = RadioEnvironment::builder(plan)
            .ap(AccessPoint::new(0, Vec2::new(10.0, 5.0), -20.0))
            .build()
            .unwrap();
        let grid = ReferenceGrid::new(Vec2::new(2.0, 8.0), 3, 2, 4.0, 4.0).unwrap();
        let user = paper_users()[1];
        let traj = Trajectory::from_path(&[l(1), l(2), l(5), l(4)], &grid, &user).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        TraceRenderer::default().render(&traj, &user, &env, &mut rng)
    }

    #[test]
    fn one_measurement_per_interval() {
        let t = trace(1);
        let m = measure_intervals(&t, &StepDetector::default());
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].from_index, 0);
        assert_eq!(m[2].to_index, 3);
    }

    #[test]
    fn step_counts_match_walked_distance() {
        let t = trace(2);
        let m = measure_intervals(&t, &StepDetector::default());
        // Each interval is 4 m; expected steps = 4 / step_length.
        let expected = 4.0 / t.user.step_length_m();
        for (i, meas) in m.iter().enumerate() {
            assert!(
                (meas.steps_csc - expected).abs() < 1.6,
                "interval {i}: csc {} vs {expected}",
                meas.steps_csc
            );
            assert!(meas.steps_dsc >= 1.0);
        }
    }

    #[test]
    fn raw_directions_include_placement_offset() {
        let t = trace(3);
        let offset = t.user.placement_offset_deg + t.user.compass_bias_deg;
        let m = measure_intervals(&t, &StepDetector::default());
        // Segment headings: east (90°), south (180°), west (270°).
        for (meas, truth) in m.iter().zip([90.0, 180.0, 270.0]) {
            let raw = meas.raw_direction_deg.unwrap();
            assert!(
                abs_diff_deg(raw, truth + offset) < 8.0,
                "raw {raw} vs {truth} + {offset}"
            );
        }
    }

    #[test]
    fn empty_sensor_streams_yield_empty_measurements() {
        // A trace whose sensors recorded nothing (or a single sample)
        // must still measure every interval — no steps, no direction —
        // instead of panicking in the step detector's moment estimates.
        let mut t = trace(5);
        for series in [
            TimeSeries::default(),
            TimeSeries::new(0.0, 10.0, vec![9.8]).unwrap(),
        ] {
            t.accel = series.clone();
            t.compass = series;
            let m = measure_intervals(&t, &StepDetector::default());
            assert_eq!(m.len(), t.passes.len() - 1);
            for meas in &m {
                assert_eq!(meas.steps_csc, 0.0);
                assert_eq!(meas.steps_dsc, 0.0);
                // A lone compass sample may still give a direction;
                // it just must not be NaN.
                assert!(meas.raw_direction_deg.is_none_or(|d| d.is_finite()));
            }
        }
    }

    #[test]
    fn gapped_compass_directions_stay_finite_or_none() {
        // NaN compass samples (sensor gaps) are masked from the
        // circular mean; a fully-gapped interval yields `None`.
        let mut t = trace(6);
        t.compass = t.compass.map(|_| f64::NAN);
        let m = measure_intervals(&t, &StepDetector::default());
        assert!(m.iter().all(|meas| meas.raw_direction_deg.is_none()));
    }

    #[test]
    fn durations_match_pass_times() {
        let t = trace(4);
        let m = measure_intervals(&t, &StepDetector::default());
        for (meas, w) in m.iter().zip(t.passes.windows(2)) {
            assert!((meas.duration_s - (w[1].time - w[0].time)).abs() < 1e-9);
        }
    }
}
