//! Mobility substrate for the MoLoc reproduction.
//!
//! The paper's evaluation is trace-driven: four users with diverse
//! height and walking speed randomly walked the office hall's aisles for
//! half an hour each, producing 184 traces. This crate generates the
//! simulated counterpart:
//!
//! * [`user`] — user profiles (height → step length, speed, gait
//!   vigour, how they hold the phone).
//! * [`walk`] — seeded random walks over the walkable aisle graph.
//! * [`trajectory`] — timed paths with ground-truth pass events at
//!   reference locations.
//! * [`render`] — full sensor traces: accelerometer + compass at 10 Hz
//!   and an RSS scan at every reference-location pass.
//! * [`intervals`] — per-interval motion measurements (raw direction,
//!   CSC/DSC step counts) extracted from a rendered trace.
//! * [`corpus`] — bulk trace generation with train/test splits.

pub mod corpus;
pub mod intervals;
pub mod render;
pub mod trajectory;
pub mod user;
pub mod walk;

pub use corpus::TraceCorpus;
pub use render::SensorTrace;
pub use trajectory::{PassEvent, Trajectory};
pub use user::UserProfile;
