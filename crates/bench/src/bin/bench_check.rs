//! Bench-regression gate: compares two `BENCH_*.json` files emitted by
//! the `micro_hot_paths` bench and fails when any benchmark shared by
//! both files regressed by more than the tolerance.
//!
//! ```text
//! bench_check [--old BENCH_pr1.json] [--new BENCH_pr2.json] [--tolerance 1.25]
//!             [--min-speedup NAME:X]... [--max-speedup NAME:X]...
//! ```
//!
//! `--min-speedup`/`--max-speedup` gate the *new* file's recorded
//! comparison entries by name: `--min-speedup eval/foo:1.5` fails when
//! the comparison named `eval/foo` reports a speedup below 1.5x, and
//! `--max-speedup micro/bar:1.2` fails when it reports one above 1.2x
//! (the overhead form — the obs pair records enabled/disabled time as
//! its "speedup"). Both flags repeat; a named comparison that is
//! missing from the file is an error, not a pass.
//!
//! Exit status: 0 when every shared benchmark's `new/old` mean-time
//! ratio is at or under the tolerance and every speedup gate holds,
//! 1 otherwise, 2 on usage or parse errors. Benchmarks present in only
//! one file are listed but never gate (new optimizations add arms; old
//! ones may be retired).

use serde::Deserialize;

#[derive(Debug, Deserialize)]
struct BenchFile {
    pr: u64,
    parallel_threads: u64,
    /// Runner-shape header fields added in PR 7; `None` when reading a
    /// file emitted before then (or when the env pin was unset).
    available_parallelism: Option<u64>,
    moloc_threads: Option<u64>,
    moloc_chunk: Option<u64>,
    benchmarks: Vec<Benchmark>,
    comparisons: Vec<Comparison>,
}

/// Renders the runner-shape header of one file for the comparison
/// banner: machine parallelism plus the effective env pins.
fn describe_shape(f: &BenchFile) -> String {
    let opt = |v: Option<u64>| v.map_or("unset".to_string(), |n| n.to_string());
    format!(
        "{} threads, avail {}, MOLOC_THREADS {}, MOLOC_CHUNK {}",
        f.parallel_threads,
        opt(f.available_parallelism),
        opt(f.moloc_threads),
        opt(f.moloc_chunk),
    )
}

#[derive(Debug, Deserialize)]
struct Benchmark {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: u64,
    iters_per_sample: u64,
}

#[derive(Debug, Deserialize)]
struct Comparison {
    name: String,
    baseline: String,
    speedup: f64,
}

/// One `--min-speedup`/`--max-speedup` gate over a named comparison in
/// the new file.
struct SpeedupGate {
    name: String,
    bound: f64,
    /// `true`: the comparison's speedup must be >= `bound`;
    /// `false`: it must be <= `bound`.
    is_min: bool,
}

struct Args {
    old: String,
    new: String,
    tolerance: f64,
    gates: Vec<SpeedupGate>,
}

fn parse_gate(flag: &str, spec: &str, is_min: bool) -> Result<SpeedupGate, String> {
    let (name, bound) = spec
        .rsplit_once(':')
        .ok_or_else(|| format!("{flag} expects NAME:RATIO, got {spec}"))?;
    let bound: f64 = bound
        .parse()
        .map_err(|_| format!("{flag}: invalid ratio in {spec}"))?;
    if !(bound.is_finite() && bound > 0.0) || name.is_empty() {
        return Err(format!("{flag}: malformed gate {spec}"));
    }
    Ok(SpeedupGate {
        name: name.to_string(),
        bound,
        is_min,
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        old: "BENCH_pr1.json".to_string(),
        new: "BENCH_pr2.json".to_string(),
        tolerance: 1.25,
        gates: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--old" => args.old = value("--old")?,
            "--new" => args.new = value("--new")?,
            "--tolerance" => {
                let v = value("--tolerance")?;
                args.tolerance = v.parse().map_err(|_| format!("invalid tolerance: {v}"))?;
            }
            "--min-speedup" => {
                let v = value("--min-speedup")?;
                args.gates.push(parse_gate("--min-speedup", &v, true)?);
            }
            "--max-speedup" => {
                let v = value("--max-speedup")?;
                args.gates.push(parse_gate("--max-speedup", &v, false)?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_check [--old FILE] [--new FILE] [--tolerance RATIO] \
                     [--min-speedup NAME:X]... [--max-speedup NAME:X]..."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !(args.tolerance.is_finite() && args.tolerance >= 1.0) {
        return Err(format!("tolerance must be >= 1.0, got {}", args.tolerance));
    }
    Ok(args)
}

fn load(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let (old, new) = match (load(&args.old), load(&args.new)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for e in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            std::process::exit(2);
        }
    };
    println!(
        "comparing PR {} ({}; {}) -> PR {} ({}; {}), tolerance {:.2}x",
        old.pr,
        args.old,
        describe_shape(&old),
        new.pr,
        args.new,
        describe_shape(&new),
        args.tolerance,
    );

    let mut regressions = 0usize;
    let mut shared = 0usize;
    for nb in &new.benchmarks {
        let Some(ob) = old.benchmarks.iter().find(|b| b.name == nb.name) else {
            println!("  NEW       {:<48} {:>12.1} ns", nb.name, nb.mean_ns);
            continue;
        };
        shared += 1;
        let ratio = nb.mean_ns / ob.mean_ns;
        let status = if ratio > args.tolerance {
            regressions += 1;
            "REGRESSED"
        } else if ratio < 1.0 {
            "faster"
        } else {
            "ok"
        };
        println!(
            "  {:<9} {:<48} {:>12.1} -> {:>12.1} ns ({:.2}x)",
            status, nb.name, ob.mean_ns, nb.mean_ns, ratio,
        );
        // Sanity: a benchmark with absurd sampling is a broken run, not
        // a measurement — refuse to certify it.
        if nb.samples == 0 || nb.iters_per_sample == 0 || nb.min_ns <= 0.0 || nb.median_ns <= 0.0 {
            eprintln!("error: malformed measurement for {}", nb.name);
            std::process::exit(2);
        }
    }
    for ob in &old.benchmarks {
        if !new.benchmarks.iter().any(|b| b.name == ob.name) {
            println!("  RETIRED   {:<48} {:>12.1} ns", ob.name, ob.mean_ns);
        }
    }
    for cmp in &new.comparisons {
        println!(
            "  speedup   {:<48} {:.2}x over {}",
            cmp.name, cmp.speedup, cmp.baseline
        );
    }

    let mut gate_failures = 0usize;
    for gate in &args.gates {
        let Some(cmp) = new.comparisons.iter().find(|c| c.name == gate.name) else {
            eprintln!(
                "error: gated comparison {} not found in {}",
                gate.name, args.new
            );
            std::process::exit(2);
        };
        let (op, holds) = if gate.is_min {
            (">=", cmp.speedup >= gate.bound)
        } else {
            ("<=", cmp.speedup <= gate.bound)
        };
        let status = if holds {
            "gate ok"
        } else {
            gate_failures += 1;
            "GATE FAIL"
        };
        println!(
            "  {:<9} {:<48} {:.3}x (required {op} {:.3}x)",
            status, gate.name, cmp.speedup, gate.bound
        );
    }

    if shared == 0 {
        eprintln!("error: the two files share no benchmark names");
        std::process::exit(2);
    }
    if gate_failures > 0 {
        eprintln!("{gate_failures} speedup gate(s) failed");
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!(
            "{regressions} of {shared} shared benchmarks regressed beyond {:.2}x",
            args.tolerance
        );
        std::process::exit(1);
    }
    println!("all {shared} shared benchmarks within tolerance");
}
