//! Scaling benchmarks for the persistent work-stealing evaluation
//! runtime (PR 6).
//!
//! Four question groups, each a production-path arm against the path it
//! replaced (or the width it scales from):
//!
//! * **Thread scaling** — the fig. 7 MoLoc localization at 1/2/4/8
//!   workers via the bench-only worker override, plus the serial vs
//!   ambient-pool pair under the PR 1/PR 2 benchmark names so
//!   `bench_check` can diff the files directly.
//! * **Result collection** — disjoint-slot writes (`par_run`) against
//!   the `Mutex<Vec>`-push-then-sort collection the pool replaced.
//! * **Job dispatch** — submitting a job to the warm persistent pool
//!   against spawning fresh scoped threads for the same shard set.
//! * **Obs overhead** — the batch localizer with the recorder off vs
//!   on, pricing the thread-local buffered-delta path (gated ≤ 1.2x by
//!   CI via `bench_check --max-speedup`).
//! * **Sharded k-NN** — one query over a ≥ 1024-location synthetic
//!   survey, serial columnar scan vs the intra-query sharded driver.
//!
//! The final target writes every measurement and the derived speedups
//! to `BENCH_pr6.json` at the repository root. On few-core hosts the
//! scaling speedups honestly approach 1x — `parallel_threads` records
//! the width the file was generated at, and CI regenerates the PR 2 and
//! PR 6 files on the same runner before gating.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, light_criterion};
use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_core::tracker::MotionMeasurement;
use moloc_eval::parallel::{
    default_chunk, par_k_nearest, par_run, par_shards_with_workers, set_worker_override,
    thread_count,
};
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, SquaredEuclidean};
use moloc_geometry::LocationId;
use std::sync::Mutex;

/// Widths the scaling table sweeps. `MAX_OVERSUBSCRIPTION` in the
/// parallel module allows 4x the machine parallelism, so the sweep is
/// valid (if honest about contention) even on small hosts.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Cheap per-item payload for the collection/dispatch benches: enough
/// arithmetic to be real work, little enough that scheduling and
/// collection costs dominate — which is exactly what those pairs price.
fn item_work(i: usize) -> u64 {
    let mut acc = i as u64 ^ 0x9E3779B97F4A7C15;
    for k in 0..32u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

/// A deterministic synthetic survey large enough to clear
/// `SHARDED_KNN_MIN_LOCATIONS`: RSSI means on a dBm lattice plus a
/// sub-dBm per-cell offset, with every 32nd location cloning the row
/// 17 back — planted fingerprint twins whose rank ties cross shard
/// boundaries. The same generator as the `query_block` bench, so the
/// shared `knn/*` arm names measure the same workload.
fn synthetic_index(locations: u32) -> FingerprintIndex {
    let fps = (0..locations)
        .map(|i| {
            let j = if i >= 17 && i % 32 == 0 { i - 17 } else { i };
            let values = (0..6)
                .map(|a| {
                    -40.0
                        - f64::from((j * 7 + a * 13) % 23)
                        - f64::from((j * 31 + a * 11) % 97) / 128.0
                })
                .collect::<Vec<f64>>();
            (LocationId::new(i + 1), Fingerprint::new(values))
        })
        .collect::<Vec<_>>();
    FingerprintIndex::build(&FingerprintDb::from_fingerprints(fps).expect("valid synthetic db"))
}

fn bench_scaling(c: &mut Criterion) {
    let world = bench_world();
    let setting = world.setting(6);
    let config = MoLocConfig::paper();
    let index = FingerprintIndex::build(&setting.fdb);
    let kernel = build_kernel(&setting.motion_db, &config);

    // --- Thread scaling on the fig. 7 localization ---------------
    for workers in WIDTHS {
        set_worker_override(Some(workers));
        c.bench_function(
            &format!("scaling/localize_moloc_fig7_setting_w{workers}"),
            |b| {
                b.iter(|| {
                    black_box(moloc_eval::pipeline::localize_moloc_with(
                        &world, &setting, config, &index, &kernel,
                    ))
                })
            },
        );
    }
    // The PR 1/PR 2 pair names, so `bench_check` diffs straight across
    // the BENCH files: serial pinned to one worker, parallel on the
    // ambient pool width.
    set_worker_override(Some(1));
    c.bench_function("eval/localize_moloc_fig7_setting_serial", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::localize_moloc_with(
                &world, &setting, config, &index, &kernel,
            ))
        })
    });
    set_worker_override(None);
    c.bench_function("eval/localize_moloc_fig7_setting_parallel", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::localize_moloc_with(
                &world, &setting, config, &index, &kernel,
            ))
        })
    });

    // --- Result collection: disjoint slots vs Mutex<Vec> ---------
    const ITEMS: usize = 4096;
    c.bench_function("runtime/collect_disjoint_slots", |b| {
        b.iter(|| black_box(par_run(ITEMS, item_work)))
    });
    c.bench_function("runtime/collect_mutex_vec", |b| {
        b.iter(|| {
            // The collection scheme the slot writer replaced: every
            // shard locks a shared Vec to append its (index, value)
            // pairs, and the caller re-sorts into input order.
            let results: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::with_capacity(ITEMS));
            let workers = thread_count().min(ITEMS);
            par_shards_with_workers(workers, ITEMS, default_chunk(ITEMS, workers), |range| {
                let mut local: Vec<(usize, u64)> = range.map(|i| (i, item_work(i))).collect();
                results
                    .lock()
                    .expect("no panics in item_work")
                    .append(&mut local);
            });
            let mut collected = results.into_inner().expect("workers joined");
            collected.sort_unstable_by_key(|&(i, _)| i);
            black_box(collected.into_iter().map(|(_, v)| v).collect::<Vec<u64>>())
        })
    });

    // --- Job dispatch: warm pool vs fresh scoped threads ---------
    // Both arms run the same 16 shards at width 4; the pool arm rides
    // the persistent workers, the scoped arm pays thread spawn + join
    // per job, which is what `par_run` used to do every call.
    const DISPATCH_ITEMS: usize = 64;
    const DISPATCH_CHUNK: usize = 4;
    const DISPATCH_WIDTH: usize = 4;
    c.bench_function("runtime/pool_dispatch_w4", |b| {
        b.iter(|| {
            par_shards_with_workers(DISPATCH_WIDTH, DISPATCH_ITEMS, DISPATCH_CHUNK, |range| {
                for i in range {
                    black_box(item_work(i));
                }
            })
        })
    });
    c.bench_function("runtime/scoped_spawn_w4", |b| {
        b.iter(|| {
            let shards: Vec<std::ops::Range<usize>> = (0..DISPATCH_ITEMS)
                .step_by(DISPATCH_CHUNK)
                .map(|s| s..(s + DISPATCH_CHUNK).min(DISPATCH_ITEMS))
                .collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..DISPATCH_WIDTH {
                    scope.spawn(|| loop {
                        let s = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(range) = shards.get(s) else { break };
                        for i in range.clone() {
                            black_box(item_work(i));
                        }
                    });
                }
            });
        })
    });

    // --- Obs overhead on the batch localizer ---------------------
    // Same construction as `micro_hot_paths` (same names, so the
    // PR 2 -> PR 6 diff shows the buffered-delta improvement), driven
    // by the first test trace's real queries and measurements.
    let trace0 = &world.corpus.test[0];
    let detector = moloc_sensors::steps::StepDetector::default();
    let analysis = moloc_eval::pipeline::analyze_trace(
        trace0,
        &setting.fdb,
        &world.hall,
        &detector,
        moloc_eval::pipeline::CountingMethod::Continuous,
        6,
    );
    let queries: Vec<(Fingerprint, Option<MotionMeasurement>)> = trace0
        .scans
        .iter()
        .enumerate()
        .map(|(i, scan)| {
            let motion = if i == 0 {
                None
            } else {
                analysis.measurements[i - 1]
            };
            (Fingerprint::new(scan.clone()), motion)
        })
        .collect();
    let mut batch = BatchLocalizer::new_with_index(&index, &kernel, config);
    let mut estimates = Vec::with_capacity(queries.len());
    c.bench_function("micro/batch_localizer_full_trace", |b| {
        b.iter(|| {
            batch
                .localize_trace_into(black_box(&queries), &mut estimates)
                .expect("queries are valid");
            black_box(&estimates);
        })
    });
    moloc_obs::enable();
    c.bench_function("micro/batch_localizer_full_trace_obs_enabled", |b| {
        b.iter(|| {
            batch
                .localize_trace_into(black_box(&queries), &mut estimates)
                .expect("queries are valid");
            black_box(&estimates);
        })
    });
    moloc_obs::set_enabled(false);
    moloc_obs::reset();

    // --- Sharded k-NN over a large synthetic survey --------------
    let big = synthetic_index(2048);
    let query = [-45.0, -52.0, -47.0, -60.0, -44.0, -58.0];
    let mut scratch = KnnScratch::with_k(8);
    let mut neighbors = Vec::with_capacity(8);
    c.bench_function("knn/serial_scan_2048", |b| {
        b.iter(|| {
            big.k_nearest_into::<SquaredEuclidean>(
                black_box(&query[..]),
                8,
                &mut scratch,
                &mut neighbors,
            );
            black_box(&neighbors);
        })
    });
    set_worker_override(Some(4));
    c.bench_function("knn/sharded_scan_2048_w4", |b| {
        b.iter(|| {
            black_box(par_k_nearest::<SquaredEuclidean>(
                &big,
                black_box(&query[..]),
                8,
            ))
        })
    });
    set_worker_override(None);
}

/// Final group target: serializes every measurement plus the derived
/// speedups to `BENCH_pr6.json` at the repository root, mirroring the
/// `BENCH_pr2.json` schema so `bench_check` consumes both.
fn emit_bench_json(c: &mut Criterion) {
    let mut out = moloc_bench::bench_header(6);
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            m.name,
            m.mean_ns,
            m.median_ns,
            m.min_ns,
            m.samples,
            m.iters_per_sample,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"comparisons\": [\n");
    let pairs = [
        // Scaling table, each width over the single-worker arm.
        (
            "scaling/localize_moloc_fig7_setting_w2",
            "scaling/localize_moloc_fig7_setting_w1",
        ),
        (
            "scaling/localize_moloc_fig7_setting_w4",
            "scaling/localize_moloc_fig7_setting_w1",
        ),
        (
            "scaling/localize_moloc_fig7_setting_w8",
            "scaling/localize_moloc_fig7_setting_w1",
        ),
        // Headline parallel-vs-serial pair (PR 2 names).
        (
            "eval/localize_moloc_fig7_setting_parallel",
            "eval/localize_moloc_fig7_setting_serial",
        ),
        // Disjoint slots vs mutex collection.
        (
            "runtime/collect_disjoint_slots",
            "runtime/collect_mutex_vec",
        ),
        // Warm pool vs scoped spawn per job.
        ("runtime/pool_dispatch_w4", "runtime/scoped_spawn_w4"),
        // Recorder overhead: speedup here is the enabled/disabled time
        // ratio — CI gates it at <= 1.2x.
        (
            "micro/batch_localizer_full_trace",
            "micro/batch_localizer_full_trace_obs_enabled",
        ),
        // Intra-query sharded k-NN over the serial columnar scan.
        ("knn/sharded_scan_2048_w4", "knn/serial_scan_2048"),
    ];
    for (i, (name, baseline)) in pairs.iter().enumerate() {
        let fast = c.measurement(name).expect("benchmark ran").mean_ns;
        let slow = c.measurement(baseline).expect("baseline ran").mean_ns;
        let speedup = slow / fast;
        println!("{name}: {speedup:.2}x over {baseline}");
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"baseline\": \"{baseline}\", \
             \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    std::fs::write(path, out).expect("write BENCH_pr6.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_scaling, emit_bench_json
}
criterion_main!(benches);
