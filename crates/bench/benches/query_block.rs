//! Cache-blocked multi-query k-NN benchmarks (PR 7).
//!
//! Three question groups, each pairing a production path against the
//! path it replaced:
//!
//! * **Blocked vs looped** — 32 queries against a 2048-location
//!   synthetic survey through `k_nearest_block_into`, once with the
//!   block kernel disabled (`MOLOC_BLOCK=0` semantics: the per-query
//!   loop every caller ran before this PR) and once on the defaults
//!   (register-blocked lane kernel + f32 mirror prefilter with exact
//!   f64 rescore). Results are bit-identical by construction; only the
//!   time differs.
//! * **f32 mirror vs f64 lanes** — the same blocked scan with the
//!   mirror disabled, isolating what the half-bandwidth quantized pass
//!   buys over the pure-f64 lane kernel.
//! * **Sharded single-query k-NN** — the PR 6 pair, re-run under the
//!   `MOLOC_KNN_SHARD_MIN` work threshold: at 2048 rows x 1 query the
//!   sharded driver now falls back to the serial mirror scan instead of
//!   paying dispatch overhead, so the pair can be gated >= 1.0x. The
//!   arm names match `BENCH_pr6.json` so `bench_check` diffs them
//!   directly.
//!
//! A fourth informational arm runs the query-range-sharded
//! `par_k_nearest_block` driver at width 4 (2048 x 32 clears the work
//! threshold, so the dispatch is real); on few-core hosts its speedup
//! honestly approaches the oversubscription penalty, so it is recorded
//! but not gated.
//!
//! The final target writes every measurement and the derived speedups
//! to `BENCH_pr7.json` at the repository root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moloc_bench::light_criterion;
use moloc_eval::parallel::{par_k_nearest, par_k_nearest_block, set_worker_override};
use moloc_fingerprint::block::{
    set_block_override, set_mirror_override, BlockNeighbors, BlockScratch, QueryBlock,
};
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, SquaredEuclidean};
use moloc_geometry::LocationId;

/// Survey size: large enough that a scan is bandwidth-shaped, and the
/// same 2048 used by the PR 6 sharded pair so the arm names align.
const ROWS: u32 = 2048;
/// Queries per block: a full trace's worth, matching the batch
/// localizer's per-trace block.
const QUERIES: usize = 32;
const K: usize = 8;

/// The same deterministic synthetic survey `runtime_scaling` builds:
/// 6 APs (inside the unrolled 4..=8 lane range), f32-safe RSSI means
/// on a dBm lattice plus a sub-dBm per-cell offset (survey means are
/// averages, hence continuous), with every 32nd location cloning the
/// row 17 back — planted fingerprint twins, so exact-tie breaking
/// stays on the measured path without collapsing the survey into a
/// few dozen duplicate classes.
fn synthetic_index(locations: u32) -> FingerprintIndex {
    let fps = (0..locations)
        .map(|i| {
            let j = if i >= 17 && i % 32 == 0 { i - 17 } else { i };
            let values = (0..6)
                .map(|a| {
                    -40.0
                        - f64::from((j * 7 + a * 13) % 23)
                        - f64::from((j * 31 + a * 11) % 97) / 128.0
                })
                .collect::<Vec<f64>>();
            (LocationId::new(i + 1), Fingerprint::new(values))
        })
        .collect::<Vec<_>>();
    FingerprintIndex::build(&FingerprintDb::from_fingerprints(fps).expect("valid synthetic db"))
}

/// Deterministic query set off the survey's lattice (half-dBm offset
/// plus the same sub-dBm dither), so every query has genuine near-ties
/// to select among.
fn query_set(count: usize) -> Vec<Vec<f64>> {
    (0..count as u32)
        .map(|q| {
            (0..6)
                .map(|a| {
                    -41.5
                        - f64::from((q * 11 + a * 5) % 19)
                        - f64::from((q * 13 + a * 7) % 53) / 128.0
                })
                .collect()
        })
        .collect()
}

fn bench_query_block(c: &mut Criterion) {
    let index = synthetic_index(ROWS);
    assert!(index.has_mirror(), "survey values must be f32-safe");
    let queries = query_set(QUERIES);

    // --- Sharded single-query pair (PR 6 arm names) --------------
    let single = [-45.0, -52.0, -47.0, -60.0, -44.0, -58.0];
    let mut scratch = KnnScratch::with_k(K);
    let mut neighbors = Vec::with_capacity(K);
    c.bench_function("knn/serial_scan_2048", |b| {
        b.iter(|| {
            index.k_nearest_into::<SquaredEuclidean>(
                black_box(&single[..]),
                K,
                &mut scratch,
                &mut neighbors,
            );
            black_box(&neighbors);
        })
    });
    // 2048 rows x 1 query sits far below `KNN_SHARD_MIN_WORK`, so this
    // arm measures the threshold fallback: a serial mirror-accelerated
    // scan instead of the PR 6 dispatch that lost to plain serial.
    set_worker_override(Some(4));
    c.bench_function("knn/sharded_scan_2048_w4", |b| {
        b.iter(|| {
            black_box(par_k_nearest::<SquaredEuclidean>(
                &index,
                black_box(&single[..]),
                K,
            ))
        })
    });
    set_worker_override(None);

    // --- Blocked vs looped vs f64-only, same entry point ---------
    let mut block = QueryBlock::new(6);
    for q in &queries {
        block.push(q);
    }
    let mut block_scratch = BlockScratch::new();
    let mut out = BlockNeighbors::new();
    let mut run_block = |c: &mut Criterion, name: &str| {
        c.bench_function(name, |b| {
            b.iter(|| {
                index.k_nearest_block_into::<SquaredEuclidean>(
                    black_box(&mut block),
                    K,
                    &mut block_scratch,
                    &mut out,
                );
                black_box(&out);
            })
        });
    };
    // The pre-PR path: 32 independent single-query scans.
    set_block_override(Some(false));
    run_block(c, "block/looped_scan_2048x32");
    // The production defaults: lane kernel + f32 mirror + f64 rescore.
    set_block_override(None);
    run_block(c, "block/blocked_scan_2048x32");
    // Mirror off: the blocked f64 lane kernel alone.
    set_mirror_override(Some(false));
    run_block(c, "block/blocked_f64_scan_2048x32");
    set_mirror_override(None);

    // --- Query-range-sharded block driver (informational) --------
    // 2048 x 32 = 65536 clears the work threshold, so width 4 really
    // dispatches; per-query selection is independent, so results are
    // identical at any width.
    let flat: Vec<f64> = queries.iter().flat_map(|q| q.iter().copied()).collect();
    set_worker_override(Some(4));
    c.bench_function("block/par_block_scan_2048x32_w4", |b| {
        b.iter(|| {
            black_box(par_k_nearest_block::<SquaredEuclidean>(
                &index,
                black_box(&flat),
                K,
            ))
        })
    });
    set_worker_override(None);
}

/// Final group target: serializes every measurement plus the derived
/// speedups to `BENCH_pr7.json` at the repository root. The f32-vs-f64
/// pair gets its own comparison label because its fast arm is the same
/// benchmark the headline blocked-vs-looped pair gates.
fn emit_bench_json(c: &mut Criterion) {
    let mut out = moloc_bench::bench_header(7);
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            m.name,
            m.mean_ns,
            m.median_ns,
            m.min_ns,
            m.samples,
            m.iters_per_sample,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"comparisons\": [\n");
    // (comparison label, fast arm, baseline arm).
    let pairs = [
        // Headline: the blocked production path over the per-query loop
        // it replaced (CI gates >= 2.0x).
        (
            "block/blocked_scan_2048x32",
            "block/blocked_scan_2048x32",
            "block/looped_scan_2048x32",
        ),
        // The mirror's own contribution: full blocked path over the
        // blocked path with the f32 pass disabled (CI gates >= 1.05x).
        (
            "block/mirror_f32_vs_f64_2048x32",
            "block/blocked_scan_2048x32",
            "block/blocked_f64_scan_2048x32",
        ),
        // The repaired PR 6 pair (CI gates >= 1.0x).
        (
            "knn/sharded_scan_2048_w4",
            "knn/sharded_scan_2048_w4",
            "knn/serial_scan_2048",
        ),
        // Informational: the width-4 query-range dispatch against the
        // in-thread blocked scan (not gated; honest on few-core hosts).
        (
            "block/par_block_scan_2048x32_w4",
            "block/par_block_scan_2048x32_w4",
            "block/blocked_scan_2048x32",
        ),
    ];
    for (i, (label, name, baseline)) in pairs.iter().enumerate() {
        let fast = c.measurement(name).expect("benchmark ran").mean_ns;
        let slow = c.measurement(baseline).expect("baseline ran").mean_ns;
        let speedup = slow / fast;
        println!("{label}: {speedup:.2}x ({name} over {baseline})");
        out.push_str(&format!(
            "    {{\"name\": \"{label}\", \"baseline\": \"{baseline}\", \
             \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    std::fs::write(path, out).expect("write BENCH_pr7.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_query_block, emit_bench_json
}
criterion_main!(benches);
