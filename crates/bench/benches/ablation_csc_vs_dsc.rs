//! Ablation bench: Continuous vs Discrete Step Counting.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, heavy_criterion};
use moloc_eval::experiments::ablations;
use moloc_mobility::user::paper_users;
use moloc_sensors::counting::{csc, dsc};
use moloc_sensors::steps::StepDetector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_counting(c: &mut Criterion) {
    let world = bench_world();
    let result = ablations::csc_vs_dsc(&world);
    println!("\n=== Ablation: CSC vs DSC (offset error) ===");
    println!(
        "mean |error|: CSC {:.3} m, DSC {:.3} m (CSC must win, Sec. IV-B1)",
        result.csc_errors.mean().unwrap_or(f64::NAN),
        result.dsc_errors.mean().unwrap_or(f64::NAN)
    );

    let user = paper_users()[0];
    let mut rng = StdRng::seed_from_u64(5);
    let (series, _) =
        user.gait()
            .synthesize_segment(3.0, user.step_period_s(), 0.31, 10.0, &mut rng);
    let detector = StepDetector::default();
    let steps = detector.detect(&series);

    c.bench_function("counting/csc_single_interval", |b| {
        b.iter(|| black_box(csc(black_box(&steps), 3.0)))
    });
    c.bench_function("counting/dsc_single_interval", |b| {
        b.iter(|| black_box(dsc(black_box(&steps))))
    });
    c.bench_function("counting/full_corpus_comparison", |b| {
        b.iter(|| black_box(ablations::csc_vs_dsc(&world)))
    });
}

criterion_group! {
    name = benches;
    config = heavy_criterion();
    targets = bench_counting
}
criterion_main!(benches);
