//! Fig. 1 bench: the twin-disambiguation kernel — one tracker step
//! fusing fingerprint candidates with motion evidence.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::light_criterion;
use moloc_core::config::MoLocConfig;
use moloc_core::engine::MoLoc;
use moloc_core::tracker::MotionMeasurement;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_geometry::LocationId;
use moloc_motion::matrix::{MotionDb, PairStats};
use moloc_stats::gaussian::Gaussian;
use std::hint::black_box;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

fn system() -> MoLoc {
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-50.0, -50.0])),
        (l(2), Fingerprint::new(vec![-40.0, -70.0])),
        (l(3), Fingerprint::new(vec![-50.0, -50.1])),
    ])
    .unwrap();
    let mut mdb = MotionDb::new(3);
    let east = PairStats {
        direction: Gaussian::new(90.0, 5.0).unwrap(),
        offset: Gaussian::new(4.0, 0.3).unwrap(),
        sample_count: 10,
    };
    mdb.insert(l(1), l(2), east);
    mdb.insert(l(2), l(3), east);
    mdb.insert(l(1), l(3), east);
    MoLoc::builder(fdb, mdb).build()
}

fn bench_twins(c: &mut Criterion) {
    let system = system();
    let unique = Fingerprint::new(vec![-40.0, -70.0]);
    let twin = Fingerprint::new(vec![-50.0, -50.05]);
    let east = Some(MotionMeasurement {
        direction_deg: 90.0,
        offset_m: 4.0,
    });

    // Demonstrate the disambiguation once.
    let mut t = system.tracker();
    t.observe(&unique, None).unwrap();
    let got = t.observe(&twin, east).unwrap();
    println!("\n=== Fig. 1 kernel === twins resolved to {got} via eastward motion");

    c.bench_function("fig1/tracker_two_step_disambiguation", |b| {
        b.iter(|| {
            let mut t = system.tracker();
            t.observe(black_box(&unique), None).unwrap();
            black_box(t.observe(black_box(&twin), east).unwrap())
        })
    });
    c.bench_function("fig1/tracker_fingerprint_only_step", |b| {
        b.iter(|| {
            let mut t = system.tracker();
            black_box(t.observe(black_box(&unique), None).unwrap())
        })
    });
    let config = MoLocConfig::paper();
    c.bench_function("fig1/localize_sequence_of_32", |b| {
        let mut queries = Vec::new();
        queries.push((unique.clone(), None));
        for i in 0..31 {
            let fp = if i % 2 == 0 {
                twin.clone()
            } else {
                unique.clone()
            };
            queries.push((fp, east));
        }
        let system = MoLoc::builder(system.fingerprint_db().clone(), system.motion_db().clone())
            .config(config)
            .build();
        b.iter(|| black_box(system.localize_sequence(black_box(&queries)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_twins
}
criterion_main!(benches);
