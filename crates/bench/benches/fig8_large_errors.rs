//! Fig. 8 bench: regenerates the large-error-location comparison and
//! measures its derivation from Fig. 7 outcomes.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, heavy_criterion};
use moloc_core::config::MoLocConfig;
use moloc_eval::experiments::{fig7, fig8};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let world = bench_world();
    let setting = world.setting(4); // fewest APs → strongest ambiguity
    let f7 = fig7::Fig7 {
        settings: vec![fig7::run_setting(&world, &setting, MoLocConfig::paper())],
    };
    let f8 = fig8::run(&f7);

    println!("\n=== Fig. 8 (reduced corpus, 4 APs) ===");
    for s in &f8.settings {
        println!(
            "{} ambiguous locations; WiFi mean {:.2} m / max {:.2} m; MoLoc mean {:.2} m / max {:.2} m",
            s.ambiguous_locations.len(),
            s.wifi.mean_error_m,
            s.wifi.max_error_m,
            s.moloc.mean_error_m,
            s.moloc.max_error_m,
        );
    }

    c.bench_function("fig8/ambiguous_location_extraction", |b| {
        b.iter(|| black_box(fig8::run(&f7)))
    });
    c.bench_function("fig8/from_scratch_including_localization", |b| {
        b.iter(|| {
            let f7 = fig7::Fig7 {
                settings: vec![fig7::run_setting(&world, &setting, MoLocConfig::paper())],
            };
            black_box(fig8::run(&f7))
        })
    });
}

criterion_group! {
    name = benches;
    config = heavy_criterion();
    targets = bench_fig8
}
criterion_main!(benches);
