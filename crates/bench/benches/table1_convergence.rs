//! Table I bench: regenerates the convergence statistics and measures
//! their computation.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, heavy_criterion};
use moloc_core::config::MoLocConfig;
use moloc_eval::convergence::convergence_stats;
use moloc_eval::experiments::{fig7, table1};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let world = bench_world();
    let f7 = fig7::Fig7 {
        settings: [4, 5, 6]
            .into_iter()
            .map(|n| fig7::run_setting(&world, &world.setting(n), MoLocConfig::paper()))
            .collect(),
    };
    let t1 = table1::run(&f7);
    println!("\n=== Table I (reduced corpus) ===");
    println!("{}", table1::render(&t1));

    c.bench_function("table1/derivation_from_outcomes", |b| {
        b.iter(|| black_box(table1::run(&f7)))
    });
    c.bench_function("table1/convergence_stats_single_method", |b| {
        b.iter(|| black_box(convergence_stats(&f7.settings[0].moloc.outcomes)))
    });
}

criterion_group! {
    name = benches;
    config = heavy_criterion();
    targets = bench_table1
}
criterion_main!(benches);
