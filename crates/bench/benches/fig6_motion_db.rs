//! Fig. 6 bench: regenerates the motion-database validity CDFs and
//! measures database construction from the crowdsourced corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, heavy_criterion};
use moloc_eval::experiments::fig6;
use moloc_eval::pipeline::CountingMethod;
use moloc_motion::filter::SanitationConfig;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let world = bench_world();
    let setting = world.setting(6);

    let fig = fig6::run(&world, &setting);
    println!("\n=== Fig. 6 (reduced corpus) ===");
    println!(
        "direction errors: median {:.1}°, max {:.1}° (paper: 3°, 15°)",
        fig.direction_errors.median().unwrap_or(f64::NAN),
        fig.direction_errors.max().unwrap_or(f64::NAN),
    );
    println!(
        "offset errors:    median {:.2} m, max {:.2} m (paper: 0.13 m, 0.46 m)",
        fig.offset_errors.median().unwrap_or(f64::NAN),
        fig.offset_errors.max().unwrap_or(f64::NAN),
    );

    c.bench_function("fig6/motion_db_construction_sanitized", |b| {
        b.iter(|| {
            black_box(world.setting_with(6, SanitationConfig::paper(), CountingMethod::Continuous))
        })
    });
    c.bench_function("fig6/validity_extraction", |b| {
        b.iter(|| black_box(fig6::run(&world, &setting)))
    });
}

criterion_group! {
    name = benches;
    config = heavy_criterion();
    targets = bench_fig6
}
criterion_main!(benches);
