//! Fig. 4 bench: regenerates the 10-step acceleration signature and
//! measures gait synthesis plus step detection.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::light_criterion;
use moloc_eval::experiments::fig4;
use moloc_mobility::user::paper_users;
use moloc_sensors::steps::StepDetector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let fig = fig4::run(2013);
    println!("\n=== Fig. 4 (acceleration signature) ===");
    println!(
        "{} samples over 10 s; detected {} of {} steps",
        fig.series.len(),
        fig.steps.len(),
        fig.true_steps
    );

    let user = paper_users()[1];
    let mut rng = StdRng::seed_from_u64(7);
    let series = user.gait().synthesize_walk(10, 1.0, 10.0, &mut rng);
    let detector = StepDetector::default();

    c.bench_function("fig4/gait_synthesis_10_steps", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(user.gait().synthesize_walk(10, 1.0, 10.0, &mut rng)))
    });
    c.bench_function("fig4/step_detection_100_samples", |b| {
        b.iter(|| black_box(detector.detect(&series)))
    });
    c.bench_function("fig4/full_experiment", |b| {
        b.iter(|| black_box(fig4::run(2013)))
    });
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_fig4
}
criterion_main!(benches);
