//! Fig. 7 bench: regenerates the overall MoLoc-vs-WiFi comparison and
//! measures the localization passes.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, heavy_criterion};
use moloc_core::config::MoLocConfig;
use moloc_eval::experiments::fig7;
use moloc_eval::pipeline::{localize_moloc, localize_wifi};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let world = bench_world();
    let settings: Vec<_> = [4, 5, 6].into_iter().map(|n| world.setting(n)).collect();

    // Print the paper rows once, from the same data the bench measures.
    println!("\n=== Fig. 7 (reduced corpus) ===");
    for setting in &settings {
        let r = fig7::run_setting(&world, setting, MoLocConfig::paper());
        println!(
            "{}-AP  WiFi acc {:4.0}% mean {:5.2} m   MoLoc acc {:4.0}% mean {:5.2} m",
            setting.n_aps,
            r.wifi.summary.accuracy * 100.0,
            r.wifi.summary.mean_error_m,
            r.moloc.summary.accuracy * 100.0,
            r.moloc.summary.mean_error_m,
        );
    }

    let six_ap = &settings[2];
    c.bench_function("fig7/wifi_baseline_all_test_traces", |b| {
        b.iter(|| black_box(localize_wifi(&world, six_ap)))
    });
    c.bench_function("fig7/moloc_all_test_traces", |b| {
        b.iter(|| black_box(localize_moloc(&world, six_ap, MoLocConfig::paper())))
    });
    c.bench_function("fig7/full_4_5_6_ap_comparison", |b| {
        b.iter(|| {
            for setting in &settings {
                black_box(fig7::run_setting(&world, setting, MoLocConfig::paper()));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = heavy_criterion();
    targets = bench_fig7
}
criterion_main!(benches);
