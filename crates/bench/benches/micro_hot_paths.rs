//! Microbenchmarks of the pipeline's hot paths: fingerprint matching,
//! motion matching, RSS scanning, shortest paths.
//!
//! The hot-path benchmarks come in pairs — the production path against
//! the path it replaced. PR 1 pairs: precomputed [`MotionKernel`]
//! lookup tables vs per-call `Gaussian::new`/`erf` evaluation, plus a
//! fig. 7 setting localized serially (`MOLOC_THREADS=1`) vs under the
//! ambient worker pool. PR 2 pairs: the columnar [`FingerprintIndex`]
//! k-NN vs the generic `dyn` metric scan, the zero-allocation
//! [`BatchLocalizer`] vs the per-query tracker, the full fig. 7
//! setting vs a faithful reproduction of the PR 1 serving path, a
//! cache-fed pipeline run vs one that rebuilds its artifacts, and the
//! fig. 7 setting end to end (setting + kernel acquisition included)
//! on the cached PR 2 pipeline vs the rebuild-everything PR 1 path.
//! PR 4 pair: the batched engine with the metrics recorder disabled vs
//! enabled, pricing the observability layer on the hottest path. The
//! final group target writes all measurements and the derived speedups
//! to `BENCH_pr2.json` at the repository root (PR 1 names are kept
//! verbatim so `bench_check` can diff the two files).

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, light_criterion};
use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::matching::{build_kernel, set_motion_probability, set_motion_probability_kernel};
use moloc_core::tracker::MoLocTracker;
use moloc_eval::pipeline::{analyze_trace_exact, EvalWorld, PassOutcome, Setting};
use moloc_eval::ScenarioCache;
use moloc_fingerprint::candidates::CandidateSet;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, SquaredEuclidean};
use moloc_fingerprint::knn::k_nearest;
use moloc_fingerprint::metric::Euclidean;
use moloc_geometry::shortest_path::{all_pairs, dijkstra};
use moloc_geometry::LocationId;
use moloc_motion::kernel::MotionKernel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_micro(c: &mut Criterion) {
    let world = bench_world();
    let setting = world.setting(6);
    let grid = &world.hall.grid;
    let mut rng = StdRng::seed_from_u64(11);
    let pos = grid.position(LocationId::new(10));
    let scan = world.hall.env.scan(pos, &mut rng);
    let query = Fingerprint::new(scan.into_iter().map(f64::from).collect());

    c.bench_function("micro/rss_scan_6_aps", |b| {
        b.iter(|| black_box(world.hall.env.scan(black_box(pos), &mut rng)))
    });
    c.bench_function("micro/knn_k8_over_28_locations", |b| {
        b.iter(|| black_box(k_nearest(&setting.fdb, black_box(&query), 8, &Euclidean)))
    });

    // The columnar-index k-NN against the generic scan above: same
    // neighbors, same order, but monomorphized squared-distance ranking
    // over contiguous rows into caller-owned buffers (no allocation).
    let index = FingerprintIndex::build(&setting.fdb);
    let mut scratch = KnnScratch::with_k(8);
    let mut neighbors = Vec::with_capacity(8);
    c.bench_function("micro/knn_k8_index_over_28_locations", |b| {
        b.iter(|| {
            index.k_nearest_into::<SquaredEuclidean>(
                black_box(query.values()),
                8,
                &mut scratch,
                &mut neighbors,
            );
            black_box(&neighbors);
        })
    });

    let config = MoLocConfig::paper();

    // Eq. 6 over trained pairs: candidates are the motion-db neighbors
    // of the best-connected location (plus the location itself, so the
    // stay-in-place branch is exercised), and the measurement sits at a
    // trained pair's mean so the Gaussian windows carry real mass.
    let to = (1..=setting.motion_db.location_count() as u32)
        .map(LocationId::new)
        .max_by_key(|&l| setting.motion_db.neighbors_of(l).len())
        .expect("motion db is non-empty");
    let mut sources = setting.motion_db.neighbors_of(to);
    sources.truncate(7);
    sources.push(to);
    let prev = CandidateSet::from_weights(
        sources
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, 1.0 / (i + 1) as f64))
            .collect(),
    )
    .unwrap();
    let trained = setting
        .motion_db
        .get(sources[0], to)
        .expect("neighbor pair is trained");
    let (dir, off) = (trained.direction.mean(), trained.offset.mean());

    c.bench_function("micro/eq6_set_motion_probability_naive", |b| {
        b.iter(|| {
            black_box(set_motion_probability(
                &setting.motion_db,
                black_box(&prev),
                to,
                dir,
                off,
                &config,
            ))
        })
    });
    let kernel = build_kernel(&setting.motion_db, &config);
    c.bench_function("micro/eq6_set_motion_probability", |b| {
        b.iter(|| {
            black_box(set_motion_probability_kernel(
                &kernel,
                black_box(&prev),
                to,
                dir,
                off,
            ))
        })
    });

    c.bench_function("micro/dijkstra_28_nodes", |b| {
        b.iter(|| black_box(dijkstra(&world.hall.graph, LocationId::new(1))))
    });
    c.bench_function("micro/all_pairs_28_nodes", |b| {
        b.iter(|| black_box(all_pairs(&world.hall.graph)))
    });

    // The paper's efficiency argument: MoLoc's O(k²) online step vs the
    // HMM's O(n²) per-step decoding over the full state space. Queries
    // carry the trace's real motion measurements so Eq. 6/7 runs on
    // every pass after the first.
    let trace0 = &world.corpus.test[0];
    let detector = moloc_sensors::steps::StepDetector::default();
    let analysis = moloc_eval::pipeline::analyze_trace(
        trace0,
        &setting.fdb,
        &world.hall,
        &detector,
        moloc_eval::pipeline::CountingMethod::Continuous,
        6,
    );
    let queries: Vec<(Fingerprint, Option<moloc_core::tracker::MotionMeasurement>)> = trace0
        .scans
        .iter()
        .enumerate()
        .map(|(i, scan)| {
            let motion = if i == 0 {
                None
            } else {
                analysis.measurements[i - 1]
            };
            (Fingerprint::new(scan.clone()), motion)
        })
        .collect();
    let viterbi =
        moloc_core::viterbi::ViterbiLocalizer::new(&setting.fdb, &setting.motion_db, config);
    c.bench_function("micro/viterbi_decode_full_trace", |b| {
        b.iter(|| black_box(viterbi.localize_trace(black_box(&queries)).unwrap()))
    });

    // Both tracker variants are constructed once and reset per
    // iteration, so the comparison isolates the per-observation motion
    // matching (neither arm pays a kernel build inside the loop).
    let mut exact_tracker =
        moloc_core::tracker::MoLocTracker::new(&setting.fdb, &setting.motion_db, config)
            .with_exact_matching();
    c.bench_function("micro/moloc_tracker_full_trace_naive", |b| {
        b.iter(|| {
            exact_tracker.reset();
            for (fp, m) in &queries {
                black_box(exact_tracker.observe(fp, *m).unwrap());
            }
        })
    });
    let mut kernel_tracker = moloc_core::tracker::MoLocTracker::new_with_kernel(
        &setting.fdb,
        &setting.motion_db,
        config,
        &kernel,
    );
    c.bench_function("micro/moloc_tracker_full_trace", |b| {
        b.iter(|| {
            kernel_tracker.reset();
            for (fp, m) in &queries {
                black_box(kernel_tracker.observe(fp, *m).unwrap());
            }
        })
    });

    // The batched engine over the same trace: shared index + kernel,
    // warm scratch buffers, zero heap allocations per iteration.
    let mut batch = BatchLocalizer::new_with_index(&index, &kernel, config);
    let mut estimates = Vec::with_capacity(queries.len());
    c.bench_function("micro/batch_localizer_full_trace", |b| {
        b.iter(|| {
            batch
                .localize_trace_into(black_box(&queries), &mut estimates)
                .unwrap();
            black_box(&estimates);
        })
    });

    // The same batched engine with the metrics recorder live: the only
    // difference is the relaxed `is_enabled()` load turning true, so
    // counter increments, the span clock, and the Eq. 7 histogram all
    // execute. Paired against the arm above, this prices the recorder.
    moloc_obs::enable();
    c.bench_function("micro/batch_localizer_full_trace_obs_enabled", |b| {
        b.iter(|| {
            batch
                .localize_trace_into(black_box(&queries), &mut estimates)
                .unwrap();
            black_box(&estimates);
        })
    });
    moloc_obs::set_enabled(false);
    moloc_obs::reset();

    let trace = &world.corpus.test[0];
    c.bench_function("micro/step_detection_full_trace", |b| {
        b.iter(|| black_box(detector.detect(&trace.accel)))
    });
    c.bench_function("micro/trace_analysis_full", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::analyze_trace(
                trace,
                &setting.fdb,
                &world.hall,
                &detector,
                moloc_eval::pipeline::CountingMethod::Continuous,
                6,
            ))
        })
    });

    // One full fig. 7 setting end-to-end, serial vs the ambient worker
    // pool. `MOLOC_THREADS` is parsed once per process now, so the
    // serial arm pins the width through the bench-only worker override
    // instead of mutating the environment (which would race the pool's
    // persistent workers and be ignored after first use anyway).
    moloc_eval::parallel::set_worker_override(Some(1));
    c.bench_function("eval/localize_moloc_fig7_setting_serial", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::localize_moloc(
                &world, &setting, config,
            ))
        })
    });
    moloc_eval::parallel::set_worker_override(None);
    c.bench_function("eval/localize_moloc_fig7_setting_parallel", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::localize_moloc(
                &world, &setting, config,
            ))
        })
    });

    // The PR 1 serving path, reproduced faithfully under the same
    // ambient pool: per-pass NN estimates from the generic dyn-metric
    // scan and a per-query tracker on the exact k-NN walk (with the
    // same precomputed-kernel motion matching PR 1 shipped).
    c.bench_function("eval/localize_moloc_fig7_setting_pr1_path", |b| {
        b.iter(|| black_box(localize_moloc_pr1_path(&world, &setting, config, &kernel)))
    });

    // The cache-fed pipeline: identical localization work, but the
    // fingerprint index and motion kernel arrive prebuilt (as a
    // `ScenarioCache` hands them to every experiment) instead of being
    // rebuilt inside the call.
    c.bench_function("eval/localize_moloc_fig7_setting_cached", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::localize_moloc_with(
                &world, &setting, config, &index, &kernel,
            ))
        })
    });

    // The fig. 7 setting end to end, as the experiments actually
    // execute it. PR 1's `fig7::run` rebuilt the setting (fingerprint
    // sanitation + motion-database construction) and the motion kernel
    // inside every call before localizing; the PR 2 pipeline serves
    // both from a warm `ScenarioCache` and localizes through the
    // columnar index and the batched engine. This pair measures the
    // whole difference a caller observes per experiment run.
    c.bench_function("eval/fig7_setting_end_to_end_pr1_path", |b| {
        b.iter(|| {
            let setting = world.setting(6);
            let kernel = build_kernel(&setting.motion_db, &config);
            black_box(localize_moloc_pr1_path(&world, &setting, config, &kernel))
        })
    });
    let cache = ScenarioCache::new(&world);
    cache.artifacts(6);
    cache.kernel(6, &config);
    c.bench_function("eval/fig7_setting_end_to_end_cached", |b| {
        b.iter(|| {
            let artifacts = cache.artifacts(6);
            let kernel = cache.kernel(6, &config);
            black_box(moloc_eval::pipeline::localize_moloc_with(
                &world,
                &artifacts.setting,
                config,
                &artifacts.index,
                &kernel,
            ))
        })
    });
}

/// The end-to-end MoLoc localization loop exactly as PR 1 ran it:
/// exact-scan trace analysis, per-trace tracker sessions on the `dyn`
/// metric heap path, one fresh candidate set allocated per observation.
fn localize_moloc_pr1_path(
    world: &EvalWorld,
    setting: &Setting,
    config: MoLocConfig,
    kernel: &MotionKernel,
) -> Vec<Vec<PassOutcome>> {
    let detector = moloc_sensors::steps::StepDetector::default();
    moloc_eval::parallel::par_run(world.corpus.test.len(), |trace_index| {
        let trace = &world.corpus.test[trace_index];
        let analysis = analyze_trace_exact(
            trace,
            &setting.fdb,
            &world.hall,
            &detector,
            setting.counting,
            setting.n_aps,
        );
        let mut tracker =
            MoLocTracker::new_with_kernel(&setting.fdb, &setting.motion_db, config, kernel)
                .with_exact_scan();
        trace
            .passes
            .iter()
            .zip(&trace.scans)
            .enumerate()
            .map(|(pass_index, (pass, scan))| {
                let query = Fingerprint::new(scan[..setting.n_aps].to_vec());
                let motion = if pass_index == 0 {
                    None
                } else {
                    analysis.measurements[pass_index - 1]
                };
                let estimate = tracker
                    .observe(&query, motion)
                    .expect("query length matches database");
                PassOutcome {
                    trace_index,
                    pass_index,
                    truth: pass.location,
                    estimate,
                    error_m: world.hall.grid.distance(pass.location, estimate),
                }
            })
            .collect()
    })
}

/// Final group target: serializes every recorded measurement plus the
/// derived speedups (kernel vs naive, index vs scan, batch vs
/// per-query, new pipeline vs PR 1 path, cached vs rebuilt) to
/// `BENCH_pr2.json` at the repository root.
fn emit_bench_json(c: &mut Criterion) {
    // The parallel arm's speedup is bounded by the worker count, so
    // record it alongside the measurements (a 1-CPU host reports ~1x),
    // plus the runner shape the file was generated on.
    let mut out = moloc_bench::bench_header(2);
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            m.name,
            m.mean_ns,
            m.median_ns,
            m.min_ns,
            m.samples,
            m.iters_per_sample,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"comparisons\": [\n");
    let pairs = [
        (
            "micro/eq6_set_motion_probability",
            "micro/eq6_set_motion_probability_naive",
        ),
        (
            "micro/moloc_tracker_full_trace",
            "micro/moloc_tracker_full_trace_naive",
        ),
        (
            "eval/localize_moloc_fig7_setting_parallel",
            "eval/localize_moloc_fig7_setting_serial",
        ),
        (
            "micro/knn_k8_index_over_28_locations",
            "micro/knn_k8_over_28_locations",
        ),
        (
            "micro/batch_localizer_full_trace",
            "micro/moloc_tracker_full_trace",
        ),
        // Recorder overhead: disabled vs enabled on the same engine
        // (a speedup near 1.0x means metrics are effectively free).
        (
            "micro/batch_localizer_full_trace",
            "micro/batch_localizer_full_trace_obs_enabled",
        ),
        (
            "eval/localize_moloc_fig7_setting_parallel",
            "eval/localize_moloc_fig7_setting_pr1_path",
        ),
        (
            "eval/localize_moloc_fig7_setting_cached",
            "eval/localize_moloc_fig7_setting_parallel",
        ),
        (
            "eval/fig7_setting_end_to_end_cached",
            "eval/fig7_setting_end_to_end_pr1_path",
        ),
    ];
    for (i, (name, baseline)) in pairs.iter().enumerate() {
        let fast = c.measurement(name).expect("benchmark ran").mean_ns;
        let slow = c.measurement(baseline).expect("baseline ran").mean_ns;
        let speedup = slow / fast;
        println!("{name}: {speedup:.2}x over {baseline}");
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"baseline\": \"{baseline}\", \
             \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
    std::fs::write(path, out).expect("write BENCH_pr2.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_micro, emit_bench_json
}
criterion_main!(benches);
