//! Microbenchmarks of the pipeline's hot paths: fingerprint matching,
//! motion matching, RSS scanning, shortest paths.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, light_criterion};
use moloc_core::config::MoLocConfig;
use moloc_core::matching::set_motion_probability;
use moloc_fingerprint::candidates::CandidateSet;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::knn::k_nearest;
use moloc_fingerprint::metric::Euclidean;
use moloc_geometry::shortest_path::{all_pairs, dijkstra};
use moloc_geometry::LocationId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_micro(c: &mut Criterion) {
    let world = bench_world();
    let setting = world.setting(6);
    let grid = &world.hall.grid;
    let mut rng = StdRng::seed_from_u64(11);
    let pos = grid.position(LocationId::new(10));
    let scan = world.hall.env.scan(pos, &mut rng);
    let query = Fingerprint::new(scan.into_iter().map(f64::from).collect());

    c.bench_function("micro/rss_scan_6_aps", |b| {
        b.iter(|| black_box(world.hall.env.scan(black_box(pos), &mut rng)))
    });
    c.bench_function("micro/knn_k8_over_28_locations", |b| {
        b.iter(|| black_box(k_nearest(&setting.fdb, black_box(&query), 8, &Euclidean)))
    });

    let config = MoLocConfig::paper();
    let prev = CandidateSet::from_weights(
        (1..=8u32)
            .map(|i| (LocationId::new(i), 1.0 / i as f64))
            .collect(),
    )
    .unwrap();
    c.bench_function("micro/eq6_set_motion_probability", |b| {
        b.iter(|| {
            black_box(set_motion_probability(
                &setting.motion_db,
                black_box(&prev),
                LocationId::new(9),
                91.0,
                5.7,
                &config,
            ))
        })
    });

    c.bench_function("micro/dijkstra_28_nodes", |b| {
        b.iter(|| black_box(dijkstra(&world.hall.graph, LocationId::new(1))))
    });
    c.bench_function("micro/all_pairs_28_nodes", |b| {
        b.iter(|| black_box(all_pairs(&world.hall.graph)))
    });

    // The paper's efficiency argument: MoLoc's O(k²) online step vs the
    // HMM's O(n²) per-step decoding over the full state space.
    let trace0 = &world.corpus.test[0];
    let queries: Vec<(Fingerprint, Option<moloc_core::tracker::MotionMeasurement>)> = trace0
        .scans
        .iter()
        .map(|scan| (Fingerprint::new(scan.clone()), None))
        .collect();
    let viterbi =
        moloc_core::viterbi::ViterbiLocalizer::new(&setting.fdb, &setting.motion_db, config);
    c.bench_function("micro/viterbi_decode_full_trace", |b| {
        b.iter(|| black_box(viterbi.localize_trace(black_box(&queries)).unwrap()))
    });
    c.bench_function("micro/moloc_tracker_full_trace", |b| {
        b.iter(|| {
            let mut t =
                moloc_core::tracker::MoLocTracker::new(&setting.fdb, &setting.motion_db, config);
            for (fp, m) in &queries {
                black_box(t.observe(fp, *m).unwrap());
            }
        })
    });

    let trace = &world.corpus.test[0];
    let detector = moloc_sensors::steps::StepDetector::default();
    c.bench_function("micro/step_detection_full_trace", |b| {
        b.iter(|| black_box(detector.detect(&trace.accel)))
    });
    c.bench_function("micro/trace_analysis_full", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::analyze_trace(
                trace,
                &setting.fdb,
                &world.hall,
                &detector,
                moloc_eval::pipeline::CountingMethod::Continuous,
                6,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_micro
}
criterion_main!(benches);
