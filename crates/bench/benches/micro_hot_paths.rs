//! Microbenchmarks of the pipeline's hot paths: fingerprint matching,
//! motion matching, RSS scanning, shortest paths.
//!
//! The motion-matching and tracker benchmarks come in pairs — the
//! production path (precomputed [`MotionKernel`] lookup tables) against
//! the `_naive` exact path it replaced (per-call `Gaussian::new` and
//! `erf` window evaluation) — and one fig. 7 setting is localized both
//! serially (`MOLOC_THREADS=1`) and under the ambient worker pool. The
//! final group target writes all measurements and the derived speedups
//! to `BENCH_pr1.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use moloc_bench::{bench_world, light_criterion};
use moloc_core::config::MoLocConfig;
use moloc_core::matching::{build_kernel, set_motion_probability, set_motion_probability_kernel};
use moloc_fingerprint::candidates::CandidateSet;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::knn::k_nearest;
use moloc_fingerprint::metric::Euclidean;
use moloc_geometry::shortest_path::{all_pairs, dijkstra};
use moloc_geometry::LocationId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_micro(c: &mut Criterion) {
    let world = bench_world();
    let setting = world.setting(6);
    let grid = &world.hall.grid;
    let mut rng = StdRng::seed_from_u64(11);
    let pos = grid.position(LocationId::new(10));
    let scan = world.hall.env.scan(pos, &mut rng);
    let query = Fingerprint::new(scan.into_iter().map(f64::from).collect());

    c.bench_function("micro/rss_scan_6_aps", |b| {
        b.iter(|| black_box(world.hall.env.scan(black_box(pos), &mut rng)))
    });
    c.bench_function("micro/knn_k8_over_28_locations", |b| {
        b.iter(|| black_box(k_nearest(&setting.fdb, black_box(&query), 8, &Euclidean)))
    });

    let config = MoLocConfig::paper();

    // Eq. 6 over trained pairs: candidates are the motion-db neighbors
    // of the best-connected location (plus the location itself, so the
    // stay-in-place branch is exercised), and the measurement sits at a
    // trained pair's mean so the Gaussian windows carry real mass.
    let to = (1..=setting.motion_db.location_count() as u32)
        .map(LocationId::new)
        .max_by_key(|&l| setting.motion_db.neighbors_of(l).len())
        .expect("motion db is non-empty");
    let mut sources = setting.motion_db.neighbors_of(to);
    sources.truncate(7);
    sources.push(to);
    let prev = CandidateSet::from_weights(
        sources
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, 1.0 / (i + 1) as f64))
            .collect(),
    )
    .unwrap();
    let trained = setting
        .motion_db
        .get(sources[0], to)
        .expect("neighbor pair is trained");
    let (dir, off) = (trained.direction.mean(), trained.offset.mean());

    c.bench_function("micro/eq6_set_motion_probability_naive", |b| {
        b.iter(|| {
            black_box(set_motion_probability(
                &setting.motion_db,
                black_box(&prev),
                to,
                dir,
                off,
                &config,
            ))
        })
    });
    let kernel = build_kernel(&setting.motion_db, &config);
    c.bench_function("micro/eq6_set_motion_probability", |b| {
        b.iter(|| {
            black_box(set_motion_probability_kernel(
                &kernel,
                black_box(&prev),
                to,
                dir,
                off,
            ))
        })
    });

    c.bench_function("micro/dijkstra_28_nodes", |b| {
        b.iter(|| black_box(dijkstra(&world.hall.graph, LocationId::new(1))))
    });
    c.bench_function("micro/all_pairs_28_nodes", |b| {
        b.iter(|| black_box(all_pairs(&world.hall.graph)))
    });

    // The paper's efficiency argument: MoLoc's O(k²) online step vs the
    // HMM's O(n²) per-step decoding over the full state space. Queries
    // carry the trace's real motion measurements so Eq. 6/7 runs on
    // every pass after the first.
    let trace0 = &world.corpus.test[0];
    let detector = moloc_sensors::steps::StepDetector::default();
    let analysis = moloc_eval::pipeline::analyze_trace(
        trace0,
        &setting.fdb,
        &world.hall,
        &detector,
        moloc_eval::pipeline::CountingMethod::Continuous,
        6,
    );
    let queries: Vec<(Fingerprint, Option<moloc_core::tracker::MotionMeasurement>)> = trace0
        .scans
        .iter()
        .enumerate()
        .map(|(i, scan)| {
            let motion = if i == 0 {
                None
            } else {
                analysis.measurements[i - 1]
            };
            (Fingerprint::new(scan.clone()), motion)
        })
        .collect();
    let viterbi =
        moloc_core::viterbi::ViterbiLocalizer::new(&setting.fdb, &setting.motion_db, config);
    c.bench_function("micro/viterbi_decode_full_trace", |b| {
        b.iter(|| black_box(viterbi.localize_trace(black_box(&queries)).unwrap()))
    });

    // Both tracker variants are constructed once and reset per
    // iteration, so the comparison isolates the per-observation motion
    // matching (neither arm pays a kernel build inside the loop).
    let mut exact_tracker =
        moloc_core::tracker::MoLocTracker::new(&setting.fdb, &setting.motion_db, config)
            .with_exact_matching();
    c.bench_function("micro/moloc_tracker_full_trace_naive", |b| {
        b.iter(|| {
            exact_tracker.reset();
            for (fp, m) in &queries {
                black_box(exact_tracker.observe(fp, *m).unwrap());
            }
        })
    });
    let mut kernel_tracker = moloc_core::tracker::MoLocTracker::new_with_kernel(
        &setting.fdb,
        &setting.motion_db,
        config,
        &kernel,
    );
    c.bench_function("micro/moloc_tracker_full_trace", |b| {
        b.iter(|| {
            kernel_tracker.reset();
            for (fp, m) in &queries {
                black_box(kernel_tracker.observe(fp, *m).unwrap());
            }
        })
    });

    let trace = &world.corpus.test[0];
    c.bench_function("micro/step_detection_full_trace", |b| {
        b.iter(|| black_box(detector.detect(&trace.accel)))
    });
    c.bench_function("micro/trace_analysis_full", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::analyze_trace(
                trace,
                &setting.fdb,
                &world.hall,
                &detector,
                moloc_eval::pipeline::CountingMethod::Continuous,
                6,
            ))
        })
    });

    // One full fig. 7 setting end-to-end, serial vs the ambient worker
    // pool. The bench binary is single-threaded between benchmarks (the
    // pool's scoped workers are joined before `par_run` returns), so
    // toggling the env var here is race-free.
    std::env::set_var("MOLOC_THREADS", "1");
    c.bench_function("eval/localize_moloc_fig7_setting_serial", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::localize_moloc(
                &world, &setting, config,
            ))
        })
    });
    std::env::remove_var("MOLOC_THREADS");
    c.bench_function("eval/localize_moloc_fig7_setting_parallel", |b| {
        b.iter(|| {
            black_box(moloc_eval::pipeline::localize_moloc(
                &world, &setting, config,
            ))
        })
    });
}

/// Final group target: serializes every recorded measurement plus the
/// kernel-vs-naive and parallel-vs-serial speedups to `BENCH_pr1.json`
/// at the repository root.
fn emit_bench_json(c: &mut Criterion) {
    // The parallel arm's speedup is bounded by the worker count, so
    // record it alongside the measurements (a 1-CPU host reports ~1x).
    let mut out = format!(
        "{{\n  \"pr\": 1,\n  \"parallel_threads\": {},\n  \"benchmarks\": [\n",
        moloc_eval::parallel::thread_count(),
    );
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            m.name,
            m.mean_ns,
            m.median_ns,
            m.min_ns,
            m.samples,
            m.iters_per_sample,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"comparisons\": [\n");
    let pairs = [
        (
            "micro/eq6_set_motion_probability",
            "micro/eq6_set_motion_probability_naive",
        ),
        (
            "micro/moloc_tracker_full_trace",
            "micro/moloc_tracker_full_trace_naive",
        ),
        (
            "eval/localize_moloc_fig7_setting_parallel",
            "eval/localize_moloc_fig7_setting_serial",
        ),
    ];
    for (i, (name, baseline)) in pairs.iter().enumerate() {
        let fast = c.measurement(name).expect("benchmark ran").mean_ns;
        let slow = c.measurement(baseline).expect("baseline ran").mean_ns;
        let speedup = slow / fast;
        println!("{name}: {speedup:.2}x over {baseline}");
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"baseline\": \"{baseline}\", \
             \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json");
    std::fs::write(path, out).expect("write BENCH_pr1.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_micro, emit_bench_json
}
criterion_main!(benches);
