//! Live-update serving-path benchmarks (PR 9).
//!
//! The epoch-snapshot design promise is that following live database
//! updates costs the query path almost nothing: a reader performs one
//! atomic epoch load per step and only touches the slot lock when a
//! publish actually landed. Two arms check that promise on a 256-cell
//! synthetic deployment:
//!
//! * **Static engine** — a plain `BatchLocalizer` pinned to the seed
//!   database, observing a 16-step motion-fused trace. The pre-PR
//!   serving path.
//! * **Live engine** — a `LiveLocalizer` behind a `SnapshotReader` on
//!   the same database with no publishes in flight, observing the same
//!   trace. Identical estimates; the only extra work is the per-step
//!   epoch check.
//!
//! Their ratio is the `live/reader_overhead` comparison, gated in CI
//! at 0.90x or better (the epoch check may cost at most ~10%, clearing the
//! few-percent run-to-run noise of shared hosts). A third,
//! informational arm measures full publish latency — fold one survey
//! delta, rebuild fingerprint database + index + motion database, swap
//! the slot — which bounds how quickly crowdsourced contributions can
//! reach readers.
//!
//! The final target writes every measurement and the derived speedups
//! to `BENCH_pr9.json` at the repository root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moloc_bench::light_criterion;
use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_core::tracker::MotionMeasurement;
use moloc_geometry::polygon::Aabb;
use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
use moloc_live::{LiveLocalizer, SnapshotPublisher, UpdateLog};
use moloc_motion::builder::MapReference;
use moloc_motion::filter::SanitationConfig;
use moloc_motion::rlm::Rlm;

/// Grid columns and rows: 16 x 16 = 256 reference locations, the same
/// order of magnitude as the paper floor at survey density.
const COLS: u32 = 16;
const ROWS: u32 = 16;
/// Steps per benchmarked trace: one full row walked east.
const STEPS: usize = 16;
const N_APS: usize = 6;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

/// 16x16 grid spaced 2 m in an open hall; ids 1..=256, row-major.
fn map() -> MapReference {
    let grid =
        ReferenceGrid::new(Vec2::new(1.0, 1.0), COLS, ROWS, 2.0, 2.0).expect("valid grid");
    let plan = FloorPlan::new(
        Aabb::new(Vec2::ZERO, Vec2::new(2.0 * COLS as f64, 2.0 * ROWS as f64)).expect("valid aabb"),
    );
    let graph = WalkGraph::from_grid(&grid, &plan);
    MapReference::new(&grid, &graph)
}

/// Deterministic 6-AP fingerprint for location `id`: a dBm lattice
/// plus a sub-dBm dither so neighbors are distinct but realistic.
fn fingerprint_values(id: u32) -> Vec<f64> {
    (0..N_APS as u32)
        .map(|a| {
            -40.0 - f64::from((id * 7 + a * 13) % 23) - f64::from((id * 31 + a * 11) % 97) / 128.0
        })
        .collect()
}

/// Survey + RLM corpus: one sample per location, five clean east RLMs
/// per horizontally-adjacent pair (enough to build every motion cell
/// the benchmarked trace crosses).
fn seeded_log() -> UpdateLog {
    let mut log = UpdateLog::new(N_APS, map(), SanitationConfig::paper()).expect("valid config");
    for id in 1..=COLS * ROWS {
        log.observe_survey_sample(l(id), &fingerprint_values(id))
            .expect("sample matches AP count");
    }
    for row in 0..ROWS {
        for col in 0..COLS - 1 {
            let from = row * COLS + col + 1;
            for k in 0..5 {
                log.observe_rlm(
                    Rlm::new(l(from), l(from + 1), 89.0 + f64::from(k), 2.0).expect("valid rlm"),
                );
            }
        }
    }
    log
}

fn east() -> Option<MotionMeasurement> {
    Some(MotionMeasurement {
        direction_deg: 90.0,
        offset_m: 2.0,
    })
}

/// The benchmarked walk: row 4 traversed east, scans straight off the
/// survey (the arms compare serving overhead, not accuracy).
fn trace() -> Vec<(Vec<f64>, Option<MotionMeasurement>)> {
    let first = 3 * COLS + 1;
    (0..STEPS as u32)
        .map(|s| {
            let motion = if s == 0 { None } else { east() };
            (fingerprint_values(first + s), motion)
        })
        .collect()
}

fn bench_live_update(c: &mut Criterion) {
    let mut log = seeded_log();
    let seed = log.build_snapshot(0).expect("seed snapshot builds");
    let publisher = SnapshotPublisher::new(seed.clone());
    log.mark_published();
    let config = MoLocConfig::paper();
    let walk = trace();

    // --- Static serving: the pre-PR path, database pinned forever.
    let kernel = build_kernel(&seed.motion_db, &config);
    let mut static_engine = BatchLocalizer::new_with_index(&seed.index, &kernel, config);
    c.bench_function("live/static_observe_trace_256x16", |b| {
        b.iter(|| {
            static_engine.reset();
            for (scan, motion) in &walk {
                black_box(
                    static_engine
                        .observe_slice(black_box(scan), *motion)
                        .expect("step scores"),
                );
            }
        })
    });

    // --- Live serving: same database, no publish in flight — pure
    // per-step epoch-check overhead.
    let mut live = LiveLocalizer::new(publisher.reader(), config);
    c.bench_function("live/live_observe_trace_256x16", |b| {
        b.iter(|| {
            live.reset();
            for (scan, motion) in &walk {
                black_box(
                    live.observe(black_box(scan), *motion)
                        .expect("step scores"),
                );
            }
        })
    });

    // --- Publish latency (informational): fold one crowdsourced
    // survey delta and republish the full 256-location snapshot.
    c.bench_function("live/publish_one_delta_256", |b| {
        b.iter(|| {
            log.observe_survey_sample(l(1), &fingerprint_values(1))
                .expect("sample matches AP count");
            black_box(publisher.publish(&mut log).expect("publish succeeds"));
        })
    });
}

/// Final group target: serializes every measurement plus the derived
/// speedups to `BENCH_pr9.json` at the repository root.
fn emit_bench_json(c: &mut Criterion) {
    let mut out = moloc_bench::bench_header(9);
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            m.name,
            m.mean_ns,
            m.median_ns,
            m.min_ns,
            m.samples,
            m.iters_per_sample,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"comparisons\": [\n");
    // (comparison label, fast arm, baseline arm). One gated pair: the
    // live serving loop over the static engine it wraps (CI gates
    // >= 0.90x — the epoch check may cost at most ~10%).
    let pairs = [(
        "live/reader_overhead",
        "live/live_observe_trace_256x16",
        "live/static_observe_trace_256x16",
    )];
    for (i, (label, name, baseline)) in pairs.iter().enumerate() {
        let fast = c.measurement(name).expect("benchmark ran").mean_ns;
        let slow = c.measurement(baseline).expect("baseline ran").mean_ns;
        let speedup = slow / fast;
        println!("{label}: {speedup:.2}x ({name} over {baseline})");
        out.push_str(&format!(
            "    {{\"name\": \"{label}\", \"baseline\": \"{baseline}\", \
             \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    std::fs::write(path, out).expect("write BENCH_pr9.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = light_criterion();
    targets = bench_live_update, emit_bench_json
}
criterion_main!(benches);
