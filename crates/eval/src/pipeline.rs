//! The end-to-end trace-driven evaluation pipeline (paper Sec. VI-A).
//!
//! ```text
//! OfficeHall ──► SiteSurvey (60 samples/location, 40/10/10)
//!            ──► TraceCorpus (184 traces, 150 train / 34 test)
//!                     │
//!     per AP-count ───┴─► FingerprintDb (40-sample means)
//!                      └─► MotionDb  (crowdsourced from train traces)
//!                               │
//!                               ├─► WiFi baseline over test traces
//!                               └─► MoLoc over test traces
//! ```
//!
//! Heading calibration mirrors the Zee-style procedure the paper
//! borrows: per trace, the constant compass-to-motion offset is the
//! circular mean of (raw compass direction − map bearing between the
//! *estimated* locations of the interval), so localization errors leak
//! into the calibration exactly as they would in the real system.

use crate::arena::{give_back, ArenaPool};
use crate::parallel::{default_chunk, par_run, par_shards, thread_count};
use crate::runtime::SlotVec;
use crate::scenario::{HallConfig, OfficeHall};
use moloc_core::batch::{BatchLocalizer, BatchScratch};
use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_core::tracker::MotionMeasurement;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::FingerprintIndex;
use moloc_fingerprint::nn_localizer::NnLocalizer;
use moloc_geometry::LocationId;
use moloc_mobility::corpus::{CorpusConfig, TraceCorpus};
use moloc_mobility::intervals::{measure_intervals, IntervalMeasurement};
use moloc_mobility::render::SensorTrace;
use moloc_mobility::user::paper_users;
use moloc_motion::builder::{BuildReport, MotionDbBuilder};
use moloc_motion::filter::SanitationConfig;
use moloc_motion::kernel::MotionKernel;
use moloc_motion::matrix::MotionDb;
use moloc_motion::rlm::Rlm;
use moloc_radio::survey::{SiteSurvey, SurveySplit};
use moloc_sensors::heading::HeadingOffsetEstimator;
use moloc_sensors::steps::StepDetector;
use moloc_sensors::stride::offset_m;
use moloc_stats::circular::normalize_deg;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which step-counting estimator feeds offsets (CSC is the paper's).
pub use moloc_sensors::counting::CountingMethod;

/// The expensive, AP-count-independent world state.
#[derive(Debug, Clone)]
pub struct EvalWorld {
    /// The testbed.
    pub hall: OfficeHall,
    /// The 60-samples-per-location site survey.
    pub survey: SiteSurvey,
    /// The walking-trace corpus.
    pub corpus: TraceCorpus,
}

impl EvalWorld {
    /// Builds the paper-scale world (184 traces).
    pub fn paper(seed: u64) -> Self {
        Self::build(HallConfig::default(), CorpusConfig::paper(seed), seed)
    }

    /// Builds a reduced world for fast tests and benches (90 traces).
    pub fn small(seed: u64) -> Self {
        Self::build(HallConfig::default(), CorpusConfig::small(seed), seed)
    }

    /// Builds a world with explicit hall and corpus configurations.
    pub fn build(hall_config: HallConfig, corpus_config: CorpusConfig, seed: u64) -> Self {
        let hall = OfficeHall::with_config(hall_config);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5175_7EC0_DE01_u64);
        let survey = SiteSurvey::conduct(&hall.env, &hall.grid, SurveySplit::paper(), &mut rng);
        let corpus = TraceCorpus::generate(
            &hall.env,
            &hall.grid,
            &hall.graph,
            &paper_users(),
            corpus_config,
        );
        Self {
            hall,
            survey,
            corpus,
        }
    }

    /// Prepares the fingerprint + motion databases for an `n_aps`-AP
    /// setting (paper: 4, 5, 6) with the given sanitation and counting
    /// choices.
    pub fn setting_with(
        &self,
        n_aps: usize,
        sanitation: SanitationConfig,
        counting: CountingMethod,
    ) -> Setting {
        let _span = moloc_obs::span("eval.pipeline.build_setting");
        assert!(
            n_aps >= 1 && n_aps <= self.survey.ap_count(),
            "invalid AP count {n_aps}"
        );
        let fdb = FingerprintDb::from_samples(self.survey.locations().iter().map(|loc| {
            (
                loc.location,
                loc.fingerprint
                    .iter()
                    .map(|scan| {
                        Fingerprint::new(scan.iter().take(n_aps).map(|d| d.value()).collect())
                    })
                    .collect::<Vec<_>>(),
            )
        }))
        .expect("survey covers every location");

        // Trace analysis fans out on the worker pool; the extracted
        // RLMs feed the builder in trace order, so the built database
        // is identical to a serial run. One index serves every trace
        // (`analyze_trace` would flatten the database per trace).
        let detector = StepDetector::default();
        let index = FingerprintIndex::build(&fdb);
        let per_trace_rlms: Vec<Vec<Rlm>> = par_run(self.corpus.train.len(), |i| {
            let trace = &self.corpus.train[i];
            let analysis =
                analyze_trace_indexed(trace, &fdb, &index, &self.hall, &detector, counting, n_aps);
            analysis
                .intervals
                .iter()
                .zip(&analysis.measurements)
                .filter_map(|(interval, measurement)| {
                    let m = measurement.as_ref()?;
                    let from = analysis.nn_estimates[interval.from_index];
                    let to = analysis.nn_estimates[interval.to_index];
                    if from == to {
                        return None;
                    }
                    Rlm::new(from, to, m.direction_deg, m.offset_m).ok()
                })
                .collect()
        });
        let mut builder = MotionDbBuilder::new(self.hall.map.clone(), sanitation)
            .expect("experiment sanitation configs are valid");
        for rlm in per_trace_rlms.into_iter().flatten() {
            builder.observe(rlm);
        }
        let (motion_db, build_report) = builder.build();
        Setting {
            n_aps,
            fdb,
            motion_db,
            build_report,
            counting,
        }
    }

    /// The paper-default setting: CSC counting, paper sanitation.
    pub fn setting(&self, n_aps: usize) -> Setting {
        self.setting_with(n_aps, SanitationConfig::paper(), CountingMethod::Continuous)
    }
}

/// The per-AP-count databases and construction report.
#[derive(Debug, Clone)]
pub struct Setting {
    /// Number of APs used.
    pub n_aps: usize,
    /// The fingerprint database.
    pub fdb: FingerprintDb,
    /// The crowdsourced motion database.
    pub motion_db: MotionDb,
    /// Counters from the motion-database construction.
    pub build_report: BuildReport,
    /// The step-counting method used for offsets.
    pub counting: CountingMethod,
}

/// The motion analysis of one trace against one fingerprint database.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Per-pass nearest-neighbor location estimates.
    pub nn_estimates: Vec<LocationId>,
    /// Raw per-interval measurements.
    pub intervals: Vec<IntervalMeasurement>,
    /// Calibrated motion measurements per interval (`None` when the
    /// compass produced no usable direction).
    pub measurements: Vec<Option<MotionMeasurement>>,
    /// The estimated heading offset, degrees.
    pub heading_offset_deg: f64,
    /// Whether any calibration pairs were available at all; without
    /// them the offset falls back to 0 and downstream quality drops to
    /// whatever the raw compass placement admits.
    pub calibration_reliable: bool,
}

/// Analyzes a trace: NN estimates per pass, heading-offset calibration,
/// and calibrated per-interval motion measurements.
pub fn analyze_trace(
    trace: &SensorTrace,
    fdb: &FingerprintDb,
    hall: &OfficeHall,
    detector: &StepDetector,
    counting: CountingMethod,
    n_aps: usize,
) -> TraceAnalysis {
    analyze_trace_with(
        trace,
        &NnLocalizer::new(fdb),
        hall,
        detector,
        counting,
        n_aps,
    )
}

/// [`analyze_trace`] over a caller-shared [`FingerprintIndex`]: skips
/// the per-trace index build, so the per-setting index (e.g. from a
/// [`crate::cache::ScenarioCache`]) serves every trace. `index` must
/// have been built from `fdb`. Results are identical to
/// [`analyze_trace`].
pub fn analyze_trace_indexed(
    trace: &SensorTrace,
    fdb: &FingerprintDb,
    index: &FingerprintIndex,
    hall: &OfficeHall,
    detector: &StepDetector,
    counting: CountingMethod,
    n_aps: usize,
) -> TraceAnalysis {
    let localizer = NnLocalizer::with_index(fdb, index);
    analyze_trace_with(trace, &localizer, hall, detector, counting, n_aps)
}

/// [`analyze_trace`] with the pre-index NN scan (generic `dyn` metric
/// walk instead of the columnar index). Kept as the reference arm for
/// the benchmark suite's old-path comparisons; results are identical.
pub fn analyze_trace_exact(
    trace: &SensorTrace,
    fdb: &FingerprintDb,
    hall: &OfficeHall,
    detector: &StepDetector,
    counting: CountingMethod,
    n_aps: usize,
) -> TraceAnalysis {
    let localizer = NnLocalizer::with_metric(fdb, moloc_fingerprint::metric::Euclidean);
    analyze_trace_with(trace, &localizer, hall, detector, counting, n_aps)
}

fn analyze_trace_with(
    trace: &SensorTrace,
    localizer: &NnLocalizer<'_>,
    hall: &OfficeHall,
    detector: &StepDetector,
    counting: CountingMethod,
    n_aps: usize,
) -> TraceAnalysis {
    let _span = moloc_obs::span("eval.pipeline.analyze_trace");
    let nn_estimates: Vec<LocationId> = trace
        .scans
        .iter()
        .map(|scan| {
            localizer
                .localize_slice(&scan[..n_aps])
                .expect("scan length matches database")
        })
        .collect();

    let intervals = measure_intervals(trace, detector);

    // Zee-style calibration: raw compass direction vs map bearing of
    // the estimated endpoints. Wrong endpoint estimates contaminate the
    // pairs; the 45-degree trimmed circular mean absorbs that (mirror
    // mistakes on east-west aisles even leave the reference bearing
    // intact, anchoring the estimate).
    let mut estimator = HeadingOffsetEstimator::new();
    for interval in &intervals {
        let (from, to) = (
            nn_estimates[interval.from_index],
            nn_estimates[interval.to_index],
        );
        if from == to {
            continue;
        }
        let (Some(raw), Some(reference)) =
            (interval.raw_direction_deg, hall.map.direction_deg(from, to))
        else {
            continue;
        };
        estimator.observe(raw, reference);
    }
    let calibration = estimator.trimmed_stats(45.0);
    let heading_offset_deg = calibration.map_or(0.0, |c| c.offset_deg);
    let calibration_reliable = calibration.is_some();

    let step_length = trace.user.step_length_m();
    let measurements = intervals
        .iter()
        .map(|interval| {
            interval
                .raw_direction_deg
                .map(|raw| {
                    let steps = match counting {
                        CountingMethod::Continuous => interval.steps_csc,
                        CountingMethod::Discrete => interval.steps_dsc,
                    };
                    MotionMeasurement {
                        direction_deg: normalize_deg(raw - heading_offset_deg),
                        offset_m: offset_m(steps, step_length),
                    }
                })
                // Degraded sensor input (gaps, jitter) can leak NaN
                // through step counts; drop the measurement — the
                // interval localizes fingerprint-only — rather than
                // hand the engine a `BadMeasurement`.
                .filter(|m| m.direction_deg.is_finite() && m.offset_m.is_finite())
        })
        .collect();

    TraceAnalysis {
        nn_estimates,
        intervals,
        measurements,
        heading_offset_deg,
        calibration_reliable,
    }
}

/// One localization outcome at one reference-location pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassOutcome {
    /// Test-trace index.
    pub trace_index: usize,
    /// Pass index within the trace.
    pub pass_index: usize,
    /// Ground-truth location.
    pub truth: LocationId,
    /// Estimated location.
    pub estimate: LocationId,
    /// Euclidean localization error in meters.
    pub error_m: f64,
}

impl PassOutcome {
    /// Whether the estimate hit the true reference location.
    pub fn is_accurate(&self) -> bool {
        self.estimate == self.truth
    }
}

/// Runs the WiFi fingerprinting baseline (Eq. 2) over the test traces.
///
/// Traces fan out on the [`crate::parallel`] worker pool; the outcome
/// of each trace is a pure function of the shared databases, so the
/// result is identical to a serial run.
pub fn localize_wifi(world: &EvalWorld, setting: &Setting) -> Vec<Vec<PassOutcome>> {
    let localizer = NnLocalizer::new(&setting.fdb);
    par_run(world.corpus.test.len(), |trace_index| {
        let _span = moloc_obs::span("eval.pipeline.wifi_trace");
        let trace = &world.corpus.test[trace_index];
        trace
            .passes
            .iter()
            .zip(&trace.scans)
            .enumerate()
            .map(|(pass_index, (pass, scan))| {
                let estimate = localizer
                    .localize_slice(&scan[..setting.n_aps])
                    .expect("scan length matches database");
                outcome(world, trace_index, pass_index, pass.location, estimate)
            })
            .collect()
    })
}

/// Runs MoLoc over the test traces.
///
/// One [`FingerprintIndex`] and one [`MotionKernel`] are built per call
/// and shared by every per-trace engine. When callers already hold the
/// artifacts (e.g. from a [`crate::cache::ScenarioCache`]), use
/// [`localize_moloc_with`] and skip the builds entirely.
pub fn localize_moloc(
    world: &EvalWorld,
    setting: &Setting,
    config: MoLocConfig,
) -> Vec<Vec<PassOutcome>> {
    let index = FingerprintIndex::build(&setting.fdb);
    let kernel = build_kernel(&setting.motion_db, &config);
    localize_moloc_with(world, setting, config, &index, &kernel)
}

/// Runs MoLoc over the test traces against prebuilt serving artifacts.
///
/// Traces fan out in shards on the persistent worker pool. Each shard
/// checks one [`BatchScratch`] working set out of a shared arena and
/// threads it through every trace's [`BatchLocalizer`] in the shard, so
/// steady-state evaluation builds no per-trace buffers; per-trace
/// results land in disjoint pre-sized slots. Each trace's engine
/// session is independent and the scratch is cleared at every engine
/// handoff, so the result is identical to a serial run at every worker
/// count and chunk size — and the batch engine reproduces the per-query
/// tracker path bit-for-bit (see `tests/determinism.rs`).
///
/// `index` must be built from `setting.fdb` and `kernel` from
/// `setting.motion_db` under `config`'s kernel fields.
pub fn localize_moloc_with(
    world: &EvalWorld,
    setting: &Setting,
    config: MoLocConfig,
    index: &FingerprintIndex,
    kernel: &MotionKernel,
) -> Vec<Vec<PassOutcome>> {
    let detector = StepDetector::default();
    let n = world.corpus.test.len();
    let factory = || BatchScratch::for_k(config.k);
    let scratch_pool: ArenaPool<'_, BatchScratch> = ArenaPool::new(&factory);
    let mut slots = SlotVec::new(n);
    let writer = slots.writer();
    let workers = thread_count().min(n.max(1));
    par_shards(n, default_chunk(n, workers), |range| {
        let mut scratch = scratch_pool.checkout().take();
        for trace_index in range {
            let _span = moloc_obs::span("eval.pipeline.moloc_trace");
            let trace = &world.corpus.test[trace_index];
            let analysis = analyze_trace_indexed(
                trace,
                &setting.fdb,
                index,
                &world.hall,
                &detector,
                setting.counting,
                setting.n_aps,
            );
            let mut engine = BatchLocalizer::with_scratch(index, kernel, config, scratch);
            // Whole-trace localization: the engine batches every pass's
            // k-NN through the cache-blocked multi-query scan
            // (DESIGN.md §15) before the sequential Eq. 4/7 recursion —
            // bit-identical estimates to the old per-pass observe loop.
            let scans: Vec<&[f64]> = trace
                .scans
                .iter()
                .map(|scan| &scan[..setting.n_aps])
                .collect();
            let motions: Vec<_> = (0..scans.len())
                .map(|i| {
                    if i == 0 {
                        None
                    } else {
                        analysis.measurements[i - 1]
                    }
                })
                .collect();
            let mut estimates = Vec::with_capacity(scans.len());
            engine
                .localize_scans_into(&scans, &motions, &mut estimates)
                .expect("query length matches database");
            let outcomes: Vec<PassOutcome> = trace
                .passes
                .iter()
                .enumerate()
                .map(|(pass_index, pass)| {
                    outcome(
                        world,
                        trace_index,
                        pass_index,
                        pass.location,
                        estimates[pass_index],
                    )
                })
                .collect();
            scratch = engine.into_scratch();
            writer.write(trace_index, outcomes);
        }
        give_back(&scratch_pool, scratch);
    });
    // SAFETY: `par_shards` partitions `0..n` into disjoint shards and
    // every iteration above writes exactly its own `trace_index` slot.
    unsafe { slots.into_vec() }
}

fn outcome(
    world: &EvalWorld,
    trace_index: usize,
    pass_index: usize,
    truth: LocationId,
    estimate: LocationId,
) -> PassOutcome {
    PassOutcome {
        trace_index,
        pass_index,
        truth,
        estimate,
        error_m: world.hall.grid.distance(truth, estimate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> EvalWorld {
        EvalWorld::small(77)
    }

    #[test]
    fn setting_builds_consistent_databases() {
        let world = world();
        for n_aps in [4, 6] {
            let setting = world.setting(n_aps);
            assert_eq!(setting.n_aps, n_aps);
            assert_eq!(setting.fdb.ap_count(), n_aps);
            assert_eq!(setting.fdb.len(), world.hall.grid.len());
            assert_eq!(setting.motion_db.location_count(), world.hall.grid.len());
            // Every trained pair is a real location pair.
            for (a, b, stats) in setting.motion_db.iter() {
                assert!(world.hall.grid.contains(a) && world.hall.grid.contains(b));
                assert!(stats.sample_count >= 3);
            }
            // The report's arithmetic is self-consistent.
            let r = setting.build_report;
            assert!(r.observed >= r.rejected_coarse);
            assert!(r.pairs_built > 0);
        }
    }

    #[test]
    fn analyze_trace_shapes_line_up() {
        let world = world();
        let setting = world.setting(6);
        let detector = StepDetector::default();
        let trace = &world.corpus.test[0];
        let analysis = analyze_trace(
            trace,
            &setting.fdb,
            &world.hall,
            &detector,
            CountingMethod::Continuous,
            6,
        );
        assert_eq!(analysis.nn_estimates.len(), trace.pass_count());
        assert_eq!(analysis.intervals.len(), trace.pass_count() - 1);
        assert_eq!(analysis.measurements.len(), analysis.intervals.len());
        assert!(analysis.calibration_reliable);
        // Measurements carry plausible values: offsets within the hall,
        // directions wrapped.
        for m in analysis.measurements.iter().flatten() {
            assert!((0.0..360.0).contains(&m.direction_deg));
            assert!(m.offset_m >= 0.0 && m.offset_m < 45.0);
        }
    }

    #[test]
    fn discrete_counting_setting_uses_dsc_offsets() {
        let world = world();
        let dsc = world.setting_with(
            6,
            moloc_motion::filter::SanitationConfig::paper(),
            CountingMethod::Discrete,
        );
        let csc = world.setting(6);
        // Different counting methods must actually change the built
        // databases (DSC drops fractional steps).
        assert_ne!(dsc.motion_db, csc.motion_db);
    }

    #[test]
    fn wifi_outcomes_cover_every_pass_once() {
        let world = world();
        let setting = world.setting(5);
        let outcomes = localize_wifi(&world, &setting);
        assert_eq!(outcomes.len(), world.corpus.test.len());
        for (trace, per_trace) in world.corpus.test.iter().zip(&outcomes) {
            assert_eq!(per_trace.len(), trace.pass_count());
            for (o, pass) in per_trace.iter().zip(&trace.passes) {
                assert_eq!(o.truth, pass.location);
                assert!(o.error_m >= 0.0);
                assert_eq!(o.is_accurate(), o.error_m == 0.0);
            }
        }
    }

    #[test]
    fn moloc_outcomes_are_deterministic_per_setting() {
        let world = world();
        let setting = world.setting(6);
        let a = localize_moloc(&world, &setting, moloc_core::config::MoLocConfig::paper());
        let b = localize_moloc(&world, &setting, moloc_core::config::MoLocConfig::paper());
        assert_eq!(a, b);
    }
}
