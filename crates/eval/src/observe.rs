//! Canonical metric taxonomy for the evaluation pipeline.
//!
//! Every metric name the workspace emits through [`moloc_obs`] is
//! listed here once, so the `repro --metrics` artifact has a stable,
//! discoverable schema: [`preregister`] declares the full set on the
//! global registry before a run, which guarantees the names appear in
//! the snapshot (zero-valued if untouched) even for experiments that
//! never exercise a given code path — e.g. `--exp fig4` never builds a
//! setting, but its snapshot still carries the cache counters.
//!
//! Naming convention (see DESIGN.md §13): `<crate>.<subsystem>.<what>`,
//! lowercase, dot-separated components, snake_case leaves. Timing spans
//! reuse the name of the function they wrap and record seconds.

/// Monotonic event counters.
pub const COUNTERS: &[&str] = &[
    // k-NN over the columnar fingerprint index.
    "fingerprint.knn.queries",
    "fingerprint.knn.masked_queries",
    "fingerprint.knn.candidates_scanned",
    // Cache-blocked multi-query scans (DESIGN.md §15): one `block_scans`
    // tick per Q×L dispatch, `block_queries` per query inside one, and
    // the f32 mirror's prefilter traffic (`mirror_queries` prefiltered,
    // `mirror_survivors` exactly rescored in f64).
    "fingerprint.knn.block_scans",
    "fingerprint.knn.block_queries",
    "fingerprint.knn.mirror_queries",
    "fingerprint.knn.mirror_survivors",
    // Degradation-rung occupancy: one `observations` tick per batch
    // observation, plus one tick per rung flagged on that observation
    // (`clean` when no rung fired). Mirrors `DegradationFlags`.
    "core.degradation.observations",
    "core.degradation.clean",
    "core.degradation.masked_query",
    "core.degradation.no_observed_aps",
    "core.degradation.motion_fallback",
    "core.degradation.candidate_reset",
    // Scenario-cache accesses (advisory; authoritative build totals are
    // `ScenarioCache::{setting,kernel}_builds`).
    "eval.cache.setting_hits",
    "eval.cache.setting_misses",
    "eval.cache.kernel_hits",
    "eval.cache.kernel_misses",
    // Work-stealing runtime: jobs dispatched to the pool and shards
    // executed by a worker other than their dealt owner.
    "eval.runtime.jobs",
    "eval.runtime.steals",
    // Runtime watchdogs: jobs whose deadline fired before every shard
    // started, workers flagged still-busy past the stall grace period,
    // and poisoned jobs recorded in the quarantine registry.
    "eval.runtime.deadline_expired",
    "eval.runtime.stalls_detected",
    "eval.runtime.quarantined",
    // Intra-query sharded k-NN dispatches (large synthetic surveys)
    // and multi-query block scans fanned out over query ranges.
    "eval.knn.sharded_queries",
    "eval.knn.block_dispatches",
    // Streaming session layer (moloc-session): transport, checkpoint,
    // recovery, admission, and watchdog events.
    "session.stream.ingested",
    "session.stream.delivered",
    "session.checkpoint.writes",
    "session.checkpoint.bytes",
    "session.checkpoint.compactions",
    "session.recovery.attempts",
    "session.recovery.resumed",
    "session.recovery.corrupt_logs",
    "session.admission.accepted",
    "session.admission.shed",
    "session.watchdog.reaped",
    // Live database updates (moloc-live): snapshot publishes (and the
    // zero-delta skips that short-circuit them), deltas folded per
    // publish, reader epoch adoptions, and stale-holds injected by the
    // `StaleSnapshot` fault.
    "live.publish.count",
    "live.publish.skipped_empty",
    "live.publish.deltas_folded",
    "live.reader.refreshes",
    "live.reader.stale_holds",
];

/// Last-write-wins instantaneous values.
pub const GAUGES: &[&str] = &[
    // Resolved worker-pool width after `MOLOC_THREADS` clamping.
    "eval.parallel.threads",
    // Live sessions held by the streaming session manager.
    "session.manager.active",
    // Newest published database epoch and how far behind it the most
    // recently refreshed reader was when it noticed.
    "live.publish.epoch",
    "live.reader.epoch_lag",
];

/// Value distributions (timing spans record seconds).
pub const HISTOGRAMS: &[&str] = &[
    // Timing spans, per stage.
    "core.batch.localize_trace",
    "core.batch.observe",
    "core.tracker.observe",
    "core.tracker.observe_trace",
    "core.particle.observe",
    "core.viterbi.localize_trace",
    "eval.pipeline.build_setting",
    "eval.pipeline.analyze_trace",
    "eval.pipeline.moloc_trace",
    "eval.pipeline.wifi_trace",
    // Work-shape distributions.
    "core.eq7.pair_products",
    "eval.parallel.items_per_worker",
    // Wall-clock seconds to condense one published snapshot.
    "live.publish.build_seconds",
];

/// Declares the full metric taxonomy on the global registry so every
/// name above appears in subsequent snapshots even if never touched.
pub fn preregister() {
    let registry = moloc_obs::global();
    for name in COUNTERS {
        registry.declare_counter(name);
    }
    for name in GAUGES {
        registry.declare_gauge(name);
    }
    for name in HISTOGRAMS {
        registry.declare_histogram(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_disjoint_and_well_formed() {
        let all: Vec<&str> = COUNTERS
            .iter()
            .chain(GAUGES)
            .chain(HISTOGRAMS)
            .copied()
            .collect();
        let unique: std::collections::BTreeSet<&str> = all.iter().copied().collect();
        assert_eq!(all.len(), unique.len(), "duplicate metric name");
        for name in &all {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "non-canonical metric name: {name}"
            );
            assert!(
                name.split('.').count() >= 3,
                "metric name missing <crate>.<subsystem>.<what> shape: {name}"
            );
        }
    }
}
