//! Convergence to accurate localization (paper Table I).
//!
//! Over traces whose *initial* estimate is wrong, the paper measures:
//! how many erroneous localizations (EL) happen before the first
//! accurate one, and the accuracy / mean error / maximum error of all
//! localizations after that first accurate fix.

use crate::pipeline::PassOutcome;
use serde::{Deserialize, Serialize};

/// Table I's statistics for one method at one AP count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceStats {
    /// Traces considered (those with an erroneous initial estimate).
    pub traces: usize,
    /// Mean number of erroneous localizations before the first
    /// accurate one.
    pub mean_el: f64,
    /// Accuracy of localizations after the first accurate one.
    pub post_accuracy: f64,
    /// Mean error (m) after the first accurate localization.
    pub post_mean_error_m: f64,
    /// Maximum error (m) after the first accurate localization.
    pub post_max_error_m: f64,
}

/// Computes Table I statistics from per-trace outcomes.
///
/// Traces whose initial estimate is already accurate are excluded, as
/// in the paper ("extract those traces that have erroneous initial
/// estimates"). A trace that never becomes accurate contributes its
/// full length to EL and nothing to the post-fix statistics.
///
/// Returns `None` when no trace qualifies.
pub fn convergence_stats(outcomes: &[Vec<PassOutcome>]) -> Option<ConvergenceStats> {
    let mut traces = 0usize;
    let mut el_sum = 0.0;
    let mut post_total = 0usize;
    let mut post_accurate = 0usize;
    let mut post_error_sum = 0.0;
    let mut post_error_max = 0.0f64;

    for trace in outcomes {
        let Some(first) = trace.first() else { continue };
        if first.is_accurate() {
            continue;
        }
        traces += 1;
        match trace.iter().position(PassOutcome::is_accurate) {
            Some(first_accurate) => {
                el_sum += first_accurate as f64;
                for o in &trace[first_accurate + 1..] {
                    post_total += 1;
                    if o.is_accurate() {
                        post_accurate += 1;
                    }
                    post_error_sum += o.error_m;
                    post_error_max = post_error_max.max(o.error_m);
                }
            }
            None => {
                el_sum += trace.len() as f64;
            }
        }
    }

    if traces == 0 {
        return None;
    }
    Some(ConvergenceStats {
        traces,
        mean_el: el_sum / traces as f64,
        post_accuracy: if post_total == 0 {
            0.0
        } else {
            post_accurate as f64 / post_total as f64
        },
        post_mean_error_m: if post_total == 0 {
            0.0
        } else {
            post_error_sum / post_total as f64
        },
        post_max_error_m: post_error_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;

    fn o(truth: u32, estimate: u32, error_m: f64) -> PassOutcome {
        PassOutcome {
            trace_index: 0,
            pass_index: 0,
            truth: LocationId::new(truth),
            estimate: LocationId::new(estimate),
            error_m,
        }
    }

    #[test]
    fn counts_el_until_first_accurate() {
        // Wrong, wrong, right, wrong, right → EL = 2; post = [wrong(2m), right].
        let trace = vec![
            o(1, 2, 4.0),
            o(1, 3, 6.0),
            o(1, 1, 0.0),
            o(1, 4, 2.0),
            o(1, 1, 0.0),
        ];
        let stats = convergence_stats(&[trace]).unwrap();
        assert_eq!(stats.traces, 1);
        assert!((stats.mean_el - 2.0).abs() < 1e-12);
        assert!((stats.post_accuracy - 0.5).abs() < 1e-12);
        assert!((stats.post_mean_error_m - 1.0).abs() < 1e-12);
        assert_eq!(stats.post_max_error_m, 2.0);
    }

    #[test]
    fn accurate_initial_traces_are_excluded() {
        let good = vec![o(1, 1, 0.0), o(2, 3, 5.0)];
        assert!(convergence_stats(&[good]).is_none());
    }

    #[test]
    fn never_accurate_trace_counts_full_length() {
        let bad = vec![o(1, 2, 4.0), o(1, 3, 4.0), o(1, 4, 4.0)];
        let stats = convergence_stats(&[bad]).unwrap();
        assert!((stats.mean_el - 3.0).abs() < 1e-12);
        assert_eq!(stats.post_accuracy, 0.0);
        assert_eq!(stats.post_mean_error_m, 0.0);
    }

    #[test]
    fn averages_across_traces() {
        let t1 = vec![o(1, 2, 4.0), o(1, 1, 0.0), o(1, 1, 0.0)]; // EL 1
        let t2 = vec![o(1, 2, 4.0), o(1, 3, 4.0), o(1, 1, 0.0)]; // EL 2
        let stats = convergence_stats(&[t1, t2]).unwrap();
        assert_eq!(stats.traces, 2);
        assert!((stats.mean_el - 1.5).abs() < 1e-12);
        assert!((stats.post_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(convergence_stats(&[]).is_none());
        assert!(convergence_stats(&[vec![]]).is_none());
    }
}
