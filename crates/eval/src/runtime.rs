//! The persistent work-stealing evaluation runtime.
//!
//! The PR 1 pool spawned fresh OS threads for every [`crate::parallel`]
//! call, pulled one item at a time off a shared atomic counter, and
//! merged results through a `Mutex<Vec>`. Thread spawn/join dominated
//! small fan-outs, the single-item pulls put the counter's cache line
//! on every worker's hot path, and the merge serialized the tail of
//! every job. This module replaces all of it with one process-wide
//! pool:
//!
//! * **Persistent workers** — spawned lazily on first use (up to the
//!   job's worker count, capped at [`MAX_POOL_WORKERS`]) and parked on
//!   a condvar between jobs. No per-call spawn, no per-call join; the
//!   submitting thread participates as worker 0 and blocks until the
//!   job drains, so task closures may freely borrow its stack.
//! * **Per-worker deques, chunked shards** — a job's items are split
//!   into contiguous index ranges ("shards") dealt round-robin onto
//!   per-worker deques. A worker pops its own deque from the front
//!   (preserving locality of the round-robin deal) and steals from the
//!   *back* of a victim's deque when its own runs dry, so owner and
//!   thief touch opposite ends. Shards amortize all scheduling cost:
//!   the deque mutex is taken once per shard, not once per item.
//! * **Lock-free result collection** — callers hand each item's result
//!   to a pre-sized slot keyed by item index ([`SlotVec`]); shards
//!   cover disjoint index ranges, so no two workers ever write the
//!   same slot and the job needs no result lock at all.
//! * **Watchdogs** — a job may carry a deadline
//!   ([`Runtime::run_shards_deadline`]): shards not started by the
//!   deadline are abandoned (never interrupted mid-item), workers still
//!   inside the job past a grace period are flagged as stalled, and a
//!   poisoned job lands in the process-wide [`quarantine_log`] with its
//!   panic payload and work accounting before the panic is rethrown.
//!   Every outcome is a [`JobReport`].
//!
//! # Determinism
//!
//! Which worker runs a shard — and whether it was stolen — is
//! scheduling-dependent; *what* is computed is not. Every item's result
//! is a pure function of its index, lands in slot `i`, and the output
//! vector is read in index order after the job completes, so output is
//! byte-identical to `(0..n).map(f).collect()` for every worker count,
//! chunk size, and steal schedule (`tests/determinism.rs` and the
//! in-module tests lock this in).
//!
//! # Nesting
//!
//! The pool runs one job at a time. A `par_*` call issued from inside a
//! running job (a nested fan-out, e.g. an experiment parallelizing over
//! settings whose builder parallelizes over traces), or while another
//! top-level job holds the pool, runs inline in the caller — same
//! results, sequential execution — rather than deadlocking on its own
//! workers. The outermost fan-out therefore owns the hardware, which is
//! the right allocation for every workload in this crate.

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Hard ceiling on pool threads, whatever `MOLOC_THREADS` or a bench
/// override asks for. Thread-scaling tables legitimately oversubscribe
/// (8 workers on a 1-core host), but an unbounded request would abort
/// the process on stack exhaustion before doing any work.
pub const MAX_POOL_WORKERS: usize = 64;

/// How long past a job's deadline a still-pending worker counts as
/// stalled (rather than merely finishing its last shard), and how often
/// the submitter polls for that condition while waiting on a
/// deadline-bearing job.
const STALL_GRACE: Duration = Duration::from_millis(100);
const STALL_POLL: Duration = Duration::from_millis(25);

/// Quarantine-registry capacity: oldest records are evicted first. A
/// chaos run that poisons thousands of jobs must not turn the registry
/// into an unbounded leak.
const MAX_QUARANTINE: usize = 64;

/// Process-wide job sequence, so quarantine records and reports can be
/// correlated across the run.
static JOB_SEQ: AtomicU64 = AtomicU64::new(1);

/// Poisoned jobs, newest last (bounded at [`MAX_QUARANTINE`]).
static QUARANTINE: Mutex<Vec<QuarantineRecord>> = Mutex::new(Vec::new());

/// What the watchdog knows about one poisoned job: which job, what the
/// panic said, and how much work was finished versus abandoned when the
/// poison flag drained the deques.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Process-wide job sequence number (see [`JobReport::job_id`]).
    pub job_id: u64,
    /// Downcast panic payload (`&str`/`String`), or a placeholder for
    /// exotic payload types.
    pub message: String,
    /// Items completed before the poison flag stopped shard handout.
    pub completed_items: usize,
    /// Items abandoned in the deques when the job drained.
    pub abandoned_items: usize,
}

/// Snapshot of the quarantine registry, oldest first.
pub fn quarantine_log() -> Vec<QuarantineRecord> {
    lock(&QUARANTINE).clone()
}

/// Empties the quarantine registry (test/experiment isolation).
pub fn clear_quarantine() {
    lock(&QUARANTINE).clear();
}

fn push_quarantine(record: QuarantineRecord) {
    if moloc_obs::is_enabled() {
        moloc_obs::counter_add("eval.runtime.quarantined", 1);
    }
    let mut log = lock(&QUARANTINE);
    if log.len() >= MAX_QUARANTINE {
        log.remove(0);
    }
    log.push(record);
}

/// Best-effort human-readable form of a panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// What happened to one job: identity, work accounting, and the
/// watchdog verdicts. Returned by the deadline-aware submission path so
/// chaos harnesses can assert on expiry/stall behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobReport {
    /// Process-wide job sequence number.
    pub job_id: u64,
    /// Items whose shard ran to completion.
    pub completed_items: usize,
    /// Items abandoned because the job expired or was poisoned.
    pub abandoned_items: usize,
    /// The per-job deadline passed while shards were still queued.
    pub expired: bool,
    /// A worker was still inside the job [`STALL_GRACE`] past the
    /// deadline — detected and reported, though the submitter must
    /// still wait it out (task closures borrow its stack, so the job
    /// can never be detached).
    pub stall_detected: bool,
}

/// A job's task: lifetime-erased reference to the per-shard closure.
///
/// # Safety
///
/// The submitter constructs this from a stack closure and must not
/// return until every participating worker has finished the job (the
/// completion protocol below guarantees it), so the erased lifetime is
/// never actually outlived.
type TaskRef = &'static (dyn Fn(Range<usize>) + Sync);

/// One in-flight job: the erased task, the shard deques, and the
/// completion/panic state.
struct JobState {
    task: TaskRef,
    /// Process-wide job sequence number.
    job_id: u64,
    /// One deque per participating worker (slot 0 is the submitter).
    deques: Vec<Mutex<VecDeque<Range<usize>>>>,
    /// Participating workers, submitter included.
    workers: usize,
    /// Pool workers (not the submitter) still inside the job.
    pending: AtomicUsize,
    /// Set when any shard panicked: remaining shards are abandoned.
    poisoned: AtomicBool,
    /// First panic payload, rethrown on the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Shards executed by a worker other than the one they were dealt
    /// to (advisory, feeds the `eval.runtime.steals` counter).
    steals: AtomicUsize,
    /// Abandon-remaining-shards instant, if the job carries one.
    deadline: Option<Instant>,
    /// Set by the first worker that observes the deadline passed.
    expired: AtomicBool,
    /// Items whose shard ran to completion (all workers).
    completed: AtomicUsize,
}

// SAFETY: `task` is only dereferenced while the submitter is blocked in
// `run_job`, which keeps the borrowed closure alive; everything else is
// ordinary `Sync` state.
unsafe impl Send for JobState {}
unsafe impl Sync for JobState {}

impl JobState {
    /// Pops the next shard for `slot`: own deque front first, then the
    /// back of the first non-empty victim. Returns `None` when every
    /// deque is empty, the job is poisoned, or its deadline has passed
    /// (remaining shards are abandoned, never half-run).
    fn next_shard(&self, slot: usize) -> Option<Range<usize>> {
        if self.poisoned.load(Ordering::Relaxed) {
            return None;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.expired.store(true, Ordering::Relaxed);
                return None;
            }
        }
        if let Some(shard) = lock(&self.deques[slot]).pop_front() {
            return Some(shard);
        }
        // Steal scan: start just past our own slot so victims are
        // spread instead of everyone mobbing deque 0.
        for offset in 1..self.deques.len() {
            let victim = (slot + offset) % self.deques.len();
            if let Some(shard) = lock(&self.deques[victim]).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(shard);
            }
        }
        None
    }

    /// Runs shards until the job drains, catching panics into the
    /// shared payload slot. Returns the number of items processed.
    fn work(&self, slot: usize) -> usize {
        let mut items = 0usize;
        while let Some(shard) = self.next_shard(slot) {
            let len = shard.len();
            let task = self.task;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(shard))) {
                self.poisoned.store(true, Ordering::Relaxed);
                let mut first = lock(&self.panic);
                if first.is_none() {
                    *first = Some(payload);
                }
            } else {
                items += len;
            }
        }
        self.completed.fetch_add(items, Ordering::Relaxed);
        items
    }

    /// Items still sitting in the deques (meaningful once the job has
    /// drained: they were abandoned by poison or deadline expiry).
    fn abandoned_items(&self) -> usize {
        self.deques
            .iter()
            .map(|d| lock(d).iter().map(Range::len).sum::<usize>())
            .sum()
    }
}

/// Mutex lock that shrugs off poisoning: a panicked shard already
/// records its payload in the job, so a poisoned deque or payload lock
/// carries no extra information.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// What pool workers watch: the current job (if any) and an epoch so a
/// worker never re-enters a job it already finished.
struct PoolSlot {
    job: Option<Arc<JobState>>,
    epoch: u64,
    /// Pool threads spawned so far (worker slots `1..=spawned`).
    spawned: usize,
}

/// The process-wide runtime.
pub(crate) struct Runtime {
    slot: Mutex<PoolSlot>,
    /// Wakes parked workers when a job is published.
    job_cv: Condvar,
    /// Wakes the submitter when the last pool worker leaves a job.
    done_cv: Condvar,
}

thread_local! {
    /// Whether this thread is a pool worker (or currently executing a
    /// job as the submitter): nested submissions run inline.
    static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static RUNTIME: OnceLock<Runtime> = OnceLock::new();

impl Runtime {
    /// The global runtime (no threads are spawned until a job needs
    /// them).
    pub(crate) fn global() -> &'static Runtime {
        RUNTIME.get_or_init(|| Runtime {
            slot: Mutex::new(PoolSlot {
                job: None,
                epoch: 0,
                spawned: 0,
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
        })
    }

    /// Whether the current thread may not block on the pool (it is a
    /// pool worker, or a submitter already inside a job).
    pub(crate) fn in_job() -> bool {
        IN_JOB.with(|f| f.get())
    }

    /// Runs `shard_fn` over `shards` with up to `workers` threads
    /// (submitter included). Falls back to inline execution when the
    /// pool is busy, the caller is nested inside a job, or one worker
    /// suffices. Shards are executed exactly once each; panics from
    /// `shard_fn` are rethrown on the calling thread after the job
    /// fully drains.
    pub(crate) fn run_shards(
        &'static self,
        workers: usize,
        shards: Vec<Range<usize>>,
        shard_fn: &(dyn Fn(Range<usize>) + Sync),
    ) {
        self.run_shards_deadline(workers, shards, None, shard_fn);
    }

    /// [`Runtime::run_shards`] with watchdog semantics: when `deadline`
    /// is set, shards not yet *started* by that instant are abandoned
    /// (a shard in flight always runs to completion — work is never
    /// interrupted mid-item), and a pool worker still inside the job
    /// [`STALL_GRACE`] past the deadline is flagged as stalled. The
    /// report accounts for completed versus abandoned items either way;
    /// a poisoned job is recorded in the quarantine registry before its
    /// panic is rethrown.
    pub(crate) fn run_shards_deadline(
        &'static self,
        workers: usize,
        shards: Vec<Range<usize>>,
        deadline: Option<Instant>,
        shard_fn: &(dyn Fn(Range<usize>) + Sync),
    ) -> JobReport {
        let workers = workers.clamp(1, MAX_POOL_WORKERS).min(shards.len().max(1));
        let job_id = JOB_SEQ.fetch_add(1, Ordering::Relaxed);
        if workers <= 1 || Self::in_job() {
            return run_shards_serial(job_id, shards, deadline, shard_fn);
        }

        // Deal shards round-robin onto per-worker deques so the initial
        // distribution is balanced and contiguous-ish per worker.
        let mut deques: Vec<VecDeque<Range<usize>>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        for (i, shard) in shards.into_iter().enumerate() {
            deques[i % workers].push_back(shard);
        }
        // SAFETY: the erased borrow is released before this function
        // returns — `run_job` blocks until every participant has left
        // the job (see `JobState` safety note).
        let task: TaskRef =
            unsafe { std::mem::transmute::<&(dyn Fn(Range<usize>) + Sync), TaskRef>(shard_fn) };
        let job = Arc::new(JobState {
            task,
            job_id,
            deques: deques.into_iter().map(Mutex::new).collect(),
            workers,
            pending: AtomicUsize::new(workers - 1),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            steals: AtomicUsize::new(0),
            deadline,
            expired: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
        });

        if !self.try_publish(&job) {
            // The pool is running someone else's job: execute inline.
            // Shards were already dealt into the job's deques; drain
            // them through the same path so accounting matches.
            job.pending.store(0, Ordering::Release);
            return self.finish_inline(&job);
        }

        // Participate as worker 0, then wait for the pool workers. A
        // deadline-bearing job polls so a worker wedged inside a shard
        // is detected (and reported) even though it cannot be detached:
        // the task borrows this very stack frame.
        IN_JOB.with(|f| f.set(true));
        let items = job.work(0);
        IN_JOB.with(|f| f.set(false));
        record_items(items);
        let mut stall_detected = false;
        {
            let mut slot = lock(&self.slot);
            while job.pending.load(Ordering::Acquire) > 0 {
                match deadline {
                    None => {
                        slot = self.done_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(deadline) => {
                        slot = self
                            .done_cv
                            .wait_timeout(slot, STALL_POLL)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                        if !stall_detected
                            && Instant::now() >= deadline + STALL_GRACE
                            && job.pending.load(Ordering::Acquire) > 0
                        {
                            stall_detected = true;
                            if moloc_obs::is_enabled() {
                                moloc_obs::counter_add("eval.runtime.stalls_detected", 1);
                            }
                        }
                    }
                }
            }
            slot.job = None;
        }
        if moloc_obs::is_enabled() {
            moloc_obs::counter_add(
                "eval.runtime.steals",
                job.steals.load(Ordering::Relaxed) as u64,
            );
            moloc_obs::counter_add("eval.runtime.jobs", 1);
        }
        self.settle(&job, stall_detected)
    }

    /// Drains a job entirely on the calling thread (pool contended).
    fn finish_inline(&self, job: &Arc<JobState>) -> JobReport {
        IN_JOB.with(|f| f.set(true));
        let items = job.work(0);
        IN_JOB.with(|f| f.set(false));
        record_items(items);
        self.settle(job, false)
    }

    /// Post-drain accounting shared by the pooled and inline paths:
    /// build the report, quarantine a poisoned job, rethrow its panic.
    fn settle(&self, job: &Arc<JobState>, stall_detected: bool) -> JobReport {
        let report = JobReport {
            job_id: job.job_id,
            completed_items: job.completed.load(Ordering::Relaxed),
            abandoned_items: job.abandoned_items(),
            expired: job.expired.load(Ordering::Relaxed),
            stall_detected,
        };
        if report.expired && moloc_obs::is_enabled() {
            moloc_obs::counter_add("eval.runtime.deadline_expired", 1);
        }
        let payload = lock(&job.panic).take();
        if let Some(payload) = payload {
            push_quarantine(QuarantineRecord {
                job_id: report.job_id,
                message: payload_message(payload.as_ref()),
                completed_items: report.completed_items,
                abandoned_items: report.abandoned_items,
            });
            resume_unwind(payload);
        }
        report
    }

    /// Publishes `job` to the pool if it is idle, spawning any missing
    /// workers. Returns false when another job holds the pool.
    fn try_publish(&'static self, job: &Arc<JobState>) -> bool {
        let mut slot = lock(&self.slot);
        if slot.job.is_some() {
            return false;
        }
        while slot.spawned < job.workers - 1 {
            let worker_slot = slot.spawned + 1;
            let spawned = thread::Builder::new()
                .name(format!("moloc-worker-{worker_slot}"))
                .spawn(move || Self::global().worker_loop(worker_slot))
                .is_ok();
            if !spawned {
                // Thread exhaustion: run with the workers that exist
                // (possibly just the submitter). Correctness is
                // unaffected — deques are drained by whoever shows up.
                break;
            }
            slot.spawned += 1;
        }
        // Workers that failed to spawn must not be waited for.
        let present = slot.spawned.min(job.workers - 1);
        job.pending.store(present, Ordering::Release);
        slot.job = Some(Arc::clone(job));
        slot.epoch += 1;
        drop(slot);
        self.job_cv.notify_all();
        true
    }

    /// The pool worker body: park until a job names this slot, work it,
    /// check out, repeat forever.
    fn worker_loop(&'static self, worker_slot: usize) {
        IN_JOB.with(|f| f.set(true));
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut slot = lock(&self.slot);
                loop {
                    if slot.epoch != seen_epoch {
                        seen_epoch = slot.epoch;
                        if let Some(job) = slot.job.as_ref() {
                            if worker_slot < job.workers {
                                break Arc::clone(job);
                            }
                        }
                    }
                    slot = self.job_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            };
            let items = job.work(worker_slot);
            record_items(items);
            if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last pool worker out: wake the submitter. Take the
                // slot lock so the notification cannot race ahead of
                // the submitter's condition check.
                drop(lock(&self.slot));
                self.done_cv.notify_all();
            }
        }
    }
}

/// Per-worker load-balance histogram (advisory; results are keyed by
/// index regardless of who computed them).
fn record_items(items: usize) {
    if moloc_obs::is_enabled() {
        moloc_obs::record("eval.parallel.items_per_worker", items as f64);
    }
}

/// The serial path of [`Runtime::run_shards_deadline`]: one worker, or
/// a submission nested inside a running job. Deadline, poison,
/// quarantine, and accounting semantics match the pooled path exactly;
/// only the scheduling differs (shards run inline, in input order).
fn run_shards_serial(
    job_id: u64,
    shards: Vec<Range<usize>>,
    deadline: Option<Instant>,
    shard_fn: &(dyn Fn(Range<usize>) + Sync),
) -> JobReport {
    let mut completed = 0usize;
    let mut abandoned = 0usize;
    let mut expired = false;
    let mut payload: Option<Box<dyn std::any::Any + Send>> = None;
    for shard in shards {
        if payload.is_some() || expired {
            abandoned += shard.len();
            continue;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            expired = true;
            abandoned += shard.len();
            continue;
        }
        let len = shard.len();
        match catch_unwind(AssertUnwindSafe(|| shard_fn(shard))) {
            Ok(()) => completed += len,
            Err(p) => payload = Some(p),
        }
    }
    record_items(completed);
    let report = JobReport {
        job_id,
        completed_items: completed,
        abandoned_items: abandoned,
        expired,
        stall_detected: false,
    };
    if report.expired && moloc_obs::is_enabled() {
        moloc_obs::counter_add("eval.runtime.deadline_expired", 1);
    }
    if let Some(payload) = payload {
        push_quarantine(QuarantineRecord {
            job_id,
            message: payload_message(payload.as_ref()),
            completed_items: report.completed_items,
            abandoned_items: report.abandoned_items,
        });
        resume_unwind(payload);
    }
    report
}

/// A pre-sized, lock-free output table: slot `i` receives item `i`'s
/// result exactly once, from whichever worker ran its shard.
///
/// Writes to distinct indices are data-race-free by construction (the
/// runtime deals disjoint shards); the happens-before edge between the
/// workers' writes and the submitter's [`SlotVec::into_vec`] read is
/// the job-completion protocol (acquire on `pending` plus the slot
/// mutex). If a job panics, written values are leaked rather than
/// dropped — `Vec<MaybeUninit<T>>` never drops its elements — which is
/// sound, merely wasteful, on the already-unwinding path.
pub struct SlotVec<T> {
    slots: Vec<MaybeUninit<T>>,
}

/// A shared writer handle over a [`SlotVec`]'s buffer.
pub struct SlotWriter<'a, T> {
    ptr: *mut MaybeUninit<T>,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [MaybeUninit<T>]>,
}

// SAFETY: concurrent `write`s are only issued for disjoint indices (the
// runtime's shard contract); `T: Send` moves values across threads.
unsafe impl<T: Send> Send for SlotWriter<'_, T> {}
unsafe impl<T: Send> Sync for SlotWriter<'_, T> {}

impl<T> SlotVec<T> {
    /// An uninitialized table of `n` slots.
    pub fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        // SAFETY: MaybeUninit needs no initialization; len == capacity.
        unsafe { slots.set_len(n) };
        Self { slots }
    }

    /// A writer handle to pass into the parallel region.
    pub fn writer(&mut self) -> SlotWriter<'_, T> {
        SlotWriter {
            ptr: self.slots.as_mut_ptr(),
            len: self.slots.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Converts the table into the result vector.
    ///
    /// # Safety
    ///
    /// Every slot must have been written exactly once (the runtime's
    /// shard partition guarantees this for a job that completed without
    /// panicking).
    pub unsafe fn into_vec(self) -> Vec<T> {
        let mut slots = std::mem::ManuallyDrop::new(self.slots);
        let (ptr, len, cap) = (slots.as_mut_ptr(), slots.len(), slots.capacity());
        // SAFETY: every MaybeUninit<T> is initialized per the caller
        // contract, and MaybeUninit<T> has T's layout.
        unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
    }
}

impl<T> SlotWriter<'_, T> {
    /// Stores item `i`'s result. Each index must be written at most
    /// once per job (shards are disjoint, so this holds by
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "slot index {i} out of bounds ({})", self.len);
        // SAFETY: in-bounds (checked above) and each index is written
        // by exactly one worker; overwriting a MaybeUninit leaks at
        // worst (no double-drop is possible).
        unsafe { self.ptr.add(i).write(MaybeUninit::new(value)) };
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Splits `0..n` into contiguous shards of at most `chunk` items.
pub(crate) fn shard_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut shards = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        shards.push(start..end);
        start = end;
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn shard_ranges_partition_the_input() {
        for n in [0usize, 1, 7, 64, 65] {
            for chunk in [1usize, 2, 7, 100] {
                let shards = shard_ranges(n, chunk);
                let mut covered = 0usize;
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.start, covered, "gap before shard {i}");
                    assert!(s.len() <= chunk);
                    assert!(!s.is_empty());
                    covered = s.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn run_shards_covers_every_shard_exactly_once() {
        let n = 257usize;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        Runtime::global().run_shards(4, shard_ranges(n, 3), &|range| {
            for i in range {
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn panics_propagate_after_the_job_drains() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runtime::global().run_shards(3, shard_ranges(64, 4), &|range| {
                if range.contains(&17) {
                    panic!("shard exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str payload)");
        assert!(message.contains("shard exploded"), "got: {message}");
        // The pool must remain usable after a panicked job.
        let sum = AtomicU64::new(0);
        Runtime::global().run_shards(3, shard_ranges(100, 8), &|range| {
            for i in range {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn nested_submission_runs_inline_without_deadlock() {
        let total = AtomicU64::new(0);
        Runtime::global().run_shards(4, shard_ranges(8, 1), &|outer| {
            for _ in outer {
                // A nested fan-out from inside a job must not block on
                // the (already busy) pool.
                Runtime::global().run_shards(4, shard_ranges(16, 2), &|inner| {
                    for i in inner {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 120);
    }

    #[test]
    fn expired_deadline_abandons_all_shards_without_running_any() {
        let ran = AtomicU64::new(0);
        let report = Runtime::global().run_shards_deadline(
            4,
            shard_ranges(100, 5),
            Some(Instant::now()),
            &|range| {
                ran.fetch_add(range.len() as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert!(report.expired);
        assert_eq!(report.completed_items, 0);
        assert_eq!(report.abandoned_items, 100);
    }

    #[test]
    fn distant_deadline_changes_nothing() {
        let ran = AtomicU64::new(0);
        let report = Runtime::global().run_shards_deadline(
            4,
            shard_ranges(64, 4),
            Some(Instant::now() + Duration::from_secs(3600)),
            &|range| {
                ran.fetch_add(range.len() as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert!(!report.expired);
        assert!(!report.stall_detected);
        assert_eq!(report.completed_items, 64);
        assert_eq!(report.abandoned_items, 0);
    }

    #[test]
    fn serial_path_honors_deadlines_too() {
        let ran = AtomicU64::new(0);
        let report = Runtime::global().run_shards_deadline(
            1,
            shard_ranges(40, 4),
            Some(Instant::now()),
            &|range| {
                ran.fetch_add(range.len() as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert!(report.expired);
        assert_eq!(report.abandoned_items, 40);
    }

    #[test]
    fn poisoned_job_is_quarantined_with_its_payload() {
        let marker = "quarantine-probe-7f3a";
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runtime::global().run_shards(3, shard_ranges(32, 4), &|range| {
                if range.contains(&9) {
                    panic!("{marker}");
                }
            });
        }));
        assert!(result.is_err(), "panic must still propagate");
        let log = quarantine_log();
        let record = log
            .iter()
            .rev()
            .find(|r| r.message.contains(marker))
            .expect("poisoned job must be quarantined");
        assert!(record.job_id > 0);
    }

    #[test]
    fn stalled_worker_past_deadline_is_detected_and_waited_out() {
        // Exactly one *pool* worker wedges well past the deadline (the
        // submitter's shard spins until the wedge is claimed, so the job
        // cannot drain early); the submitter must flag the stall but
        // still wait the worker out — the closure borrows this frame.
        let wedged = AtomicBool::new(false);
        let report = Runtime::global().run_shards_deadline(
            4,
            shard_ranges(8, 1),
            Some(Instant::now() + Duration::from_millis(50)),
            &|_range| {
                let on_pool = thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("moloc-worker"));
                if on_pool {
                    if !wedged.swap(true, Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(400));
                    }
                } else {
                    let start = Instant::now();
                    while !wedged.load(Ordering::SeqCst)
                        && start.elapsed() < Duration::from_secs(2)
                    {
                        thread::sleep(Duration::from_millis(1));
                    }
                }
            },
        );
        assert!(report.stall_detected, "wedged worker must be flagged");
        // Whatever was abandoned, nothing may be double-counted.
        assert!(report.completed_items + report.abandoned_items <= 8);
    }

    #[test]
    fn slotvec_roundtrip_preserves_values_and_drops() {
        let mut slots: SlotVec<String> = SlotVec::new(5);
        let writer = slots.writer();
        for i in 0..5 {
            writer.write(i, format!("v{i}"));
        }
        assert_eq!(writer.len(), 5);
        assert!(!writer.is_empty());
        // SAFETY: all 5 slots written above.
        let v = unsafe { slots.into_vec() };
        assert_eq!(v, vec!["v0", "v1", "v2", "v3", "v4"]);
    }
}
