//! Evaluation harness for the MoLoc reproduction.
//!
//! This crate rebuilds the paper's testbed and every experiment of
//! Sec. VI:
//!
//! * [`scenario`] — the simulated 40.8 m × 16 m office hall: 28
//!   reference locations (Fig. 5), 6 sparsely placed APs, partitions.
//! * [`pipeline`] — the end-to-end trace-driven protocol: site survey →
//!   crowdsourced motion database → WiFi-baseline and MoLoc
//!   localization over held-out traces.
//! * [`cache`] — the keyed scenario-artifact cache: experiments sharing
//!   a `(floorplan, AP layout, seed)` scenario reuse one built
//!   [`Setting`] + fingerprint index + motion kernel.
//! * [`metrics`] — localization errors, accuracy, error CDFs.
//! * [`convergence`] — erroneous-localizations-before-first-accurate
//!   statistics (Table I).
//! * [`experiments`] — one module per paper artifact: Fig. 4, Fig. 6,
//!   Fig. 7, Fig. 8, Table I, plus the ablations listed in DESIGN.md.
//! * [`observe`] — the canonical metric taxonomy emitted through
//!   `moloc-obs` (`repro --metrics FILE` writes the snapshot).
//! * [`parallel`] — order-preserving parallel maps over the persistent
//!   work-stealing [`runtime`] (`MOLOC_THREADS` controls the width;
//!   results are byte-identical to a serial run at every width and
//!   chunk size).
//! * [`runtime`] — the process-wide work-stealing worker pool:
//!   per-worker deques, chunked shards, lock-free slot collection.
//! * [`arena`] — per-worker pools of reusable localization scratch so
//!   steady-state evaluation does zero hot-path allocation.
//! * [`report`] — plain-text rendering of tables and CDF series in the
//!   shape the paper reports them.
//!
//! The `repro` binary regenerates everything:
//!
//! ```text
//! cargo run -p moloc-eval --bin repro --release -- --exp all
//! ```

pub mod arena;
pub mod cache;
pub mod convergence;
pub mod experiments;
pub mod metrics;
pub mod observe;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod runtime;
pub mod scenario;

pub use cache::{ScenarioCache, SettingArtifacts};
pub use pipeline::{EvalWorld, Setting};
pub use scenario::OfficeHall;
