//! `moloc-audit` — the differential verification gate (DESIGN.md §18).
//!
//! Drives every optimised path in the workspace against its naive
//! `moloc-verify` oracle on seeded inputs drawn from the evaluation
//! world, with the runtime invariant layer recording throughout:
//!
//! * `knn.scalar` / `knn.masked` / `knn.blocked` / `knn.mirror` /
//!   `knn.sharded` — every k-NN execution strategy vs the exhaustive
//!   sorted scan (ids exact, dissimilarities to 1e-9; the contracts
//!   document bit-identity, the slack merely decouples the gate from
//!   libm).
//! * `kernel.pair` / `kernel.stay` — the tabulated-CDF motion kernel
//!   vs the exact `erf` evaluation (documented accuracy 1e-6; gate at
//!   2e-6).
//! * `eq4.candidates` — the engine's inverse-dissimilarity candidate
//!   probabilities vs the Eq. 4 oracle (1e-12).
//! * `eq7.exact` / `eq7.kernel` — posterior fusion vs the Eq. 7
//!   oracle. The kernel arm inherits the per-pair 1e-6 and can have it
//!   amplified by normalization when the total mass is tiny, so it
//!   gates at 1e-3 — divergence here means a wrong *decision*, not a
//!   wrong ulp.
//! * `parallel.width` — the work-stealing evaluation runtime at worker
//!   widths 1 vs 4 (bit-identical estimates required).
//! * `live.rebuild` — incremental epoch publication vs a from-scratch
//!   rebuild of the same contribution history (content digests must
//!   collide).
//! * `session.recover` — kill/recover at several stream prefixes vs
//!   the uninterrupted run (estimates and final encoded state
//!   byte-identical).
//! * `frame.roundtrip` — the checkpoint wire format vs an independent
//!   reimplementation (byte-identical frames, symmetric rejection).
//!
//! Divergences and invariant violations are reported as structured
//! JSON; the process exits nonzero unless the report is clean.
//! `--self-test` plants a known divergence (a perturbed oracle input)
//! and is expected to exit nonzero — CI runs it negated to prove the
//! gate can actually fail.

use moloc_core::config::MoLocConfig;
use moloc_core::evaluate::{evaluate_candidates, evaluate_candidates_kernel};
use moloc_core::matching::build_kernel;
use moloc_eval::parallel::{par_run, set_worker_override};
use moloc_eval::pipeline::{analyze_trace_indexed, EvalWorld, Setting};
use moloc_faults::rng::{hash, unit};
use moloc_fingerprint::block::{
    set_block_override, set_mirror_override, BlockNeighbors, BlockScratch, QueryBlock,
};
use moloc_fingerprint::candidates::CandidateSet;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, ShardCandidate};
use moloc_fingerprint::knn::Neighbor;
use moloc_fingerprint::SquaredEuclidean;
use moloc_geometry::LocationId;
use moloc_live::{SnapshotPublisher, UpdateLog};
use moloc_motion::filter::SanitationConfig;
use moloc_motion::matrix::MotionDb;
use moloc_motion::rlm::Rlm;
use moloc_sensors::steps::StepDetector;
use moloc_session::{ScanEvent, SessionConfig, StreamingSession};
use moloc_verify::oracle;
use moloc_verify::{AuditReport, Divergence};

const USAGE: &str = "usage: moloc-audit [--seed N] [--out FILE] [--self-test]";
const N_APS: usize = 6;
/// Queries drawn from the test corpus per k-NN suite.
const N_QUERIES: usize = 48;

fn main() {
    let mut seed: u64 = 2013;
    let mut out_path: Option<String> = None;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => seed = v,
                _ => usage_exit("--seed needs an integer"),
            },
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => usage_exit("--out needs a path"),
            },
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_exit(&format!("unknown argument {other}")),
        }
    }
    if let Err(e) = moloc_eval::parallel::validate_env().and(moloc_session::validate_env()) {
        eprintln!("moloc-audit: {e}");
        std::process::exit(2);
    }

    // Record, don't panic: every divergence and violation lands in one
    // report instead of aborting the sweep at the first failure.
    moloc_verify::enable_recording();
    let _ = moloc_verify::take_violations();

    let mut report = AuditReport::new(seed);
    eprintln!("moloc-audit: building evaluation world (seed {seed})");
    let world = EvalWorld::small(seed);
    let setting = world.setting(N_APS);
    let config = MoLocConfig::paper();
    let queries = corpus_queries(&world, seed);

    knn_suites(&setting, &queries, seed, self_test, &mut report);
    kernel_suites(&setting.motion_db, &config, seed, &mut report);
    eq_suites(&setting, &queries, &config, seed, &mut report);
    parallel_suite(&world, &setting, &mut report);
    live_suite(&world, &setting, seed, &mut report);
    session_suite(&world, &setting, &mut report);
    frame_suite(seed, &mut report);

    report.invariant_violations = moloc_verify::take_violations();
    moloc_verify::set_enabled(false);

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match &out_path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("moloc-audit: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("moloc-audit: report written to {path}");
        }
        None => println!("{json}"),
    }
    let verdict = if report.clean() { "CLEAN" } else { "DIVERGED" };
    eprintln!(
        "moloc-audit: {verdict} — {} cases across {} suites, {} divergences, {} violations",
        report.total_cases(),
        report.suites.len(),
        report.divergences.len(),
        report.invariant_violations.len()
    );
    std::process::exit(i32::from(!report.clean()));
}

fn usage_exit(message: &str) -> ! {
    eprintln!("moloc-audit: {message}\n{USAGE}");
    std::process::exit(2);
}

// ---------------------------------------------------------------------
// Shared input material.
// ---------------------------------------------------------------------

/// Clean queries drawn round-robin from the test corpus scans, plus a
/// few seeded synthetic ones so coverage does not depend on corpus
/// size.
fn corpus_queries(world: &EvalWorld, seed: u64) -> Vec<Vec<f64>> {
    let mut queries = Vec::with_capacity(N_QUERIES);
    'outer: for trace in &world.corpus.test {
        for scan in &trace.scans {
            queries.push(scan[..N_APS].to_vec());
            if queries.len() == N_QUERIES - 4 {
                break 'outer;
            }
        }
    }
    for i in 0..4u64 {
        queries.push(
            (0..N_APS)
                .map(|d| -30.0 - 60.0 * unit(hash(seed, 0xA0, i, d as u64)))
                .collect(),
        );
    }
    queries
}

/// Deterministically masks ~30% of a query's APs with NaN.
fn masked_query(query: &[f64], seed: u64, case: u64) -> Vec<f64> {
    query
        .iter()
        .enumerate()
        .map(|(d, &v)| {
            if unit(hash(seed, 0xB0, case, d as u64)) < 0.3 {
                f64::NAN
            } else {
                v
            }
        })
        .collect()
}

fn pairs_of(neighbors: &[Neighbor]) -> Vec<(LocationId, f64)> {
    neighbors
        .iter()
        .map(|n| (n.location, n.dissimilarity))
        .collect()
}

fn fmt_pairs(pairs: &[(LocationId, f64)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(id, v)| format!("({}, {v:.12e})", id.get()))
        .collect();
    format!("[{}]", body.join(", "))
}

/// Compares an optimised neighbor list against the oracle's: location
/// ids must match exactly (the tie contract is part of the result),
/// dissimilarities to `tol`.
fn compare_pairs(
    suite: &str,
    case: String,
    expected: &[(LocationId, f64)],
    actual: &[(LocationId, f64)],
    tol: f64,
    divergences: &mut Vec<Divergence>,
) {
    let matches = expected.len() == actual.len()
        && expected
            .iter()
            .zip(actual)
            .all(|(&(ei, ev), &(ai, av))| ei == ai && (ev - av).abs() <= tol);
    if !matches {
        divergences.push(Divergence {
            suite: suite.to_string(),
            case,
            expected: fmt_pairs(expected),
            actual: fmt_pairs(actual),
        });
    }
}

// ---------------------------------------------------------------------
// k-NN suites: every execution strategy vs the exhaustive oracle.
// ---------------------------------------------------------------------

fn knn_suites(
    setting: &Setting,
    queries: &[Vec<f64>],
    seed: u64,
    self_test: bool,
    report: &mut AuditReport,
) {
    eprintln!("moloc-audit: k-NN suites ({} queries)", queries.len());
    let index = FingerprintIndex::build(&setting.fdb);
    let rows: Vec<(LocationId, Vec<f64>)> = setting
        .fdb
        .iter()
        .map(|(id, fp)| (id, fp.values().to_vec()))
        .collect();
    let k = MoLocConfig::paper().k;
    let mut scratch = KnnScratch::new();
    let mut out: Vec<Neighbor> = Vec::new();

    // Scalar path. In self-test mode the first case feeds the oracle a
    // perturbed query — a planted divergence the gate must catch.
    let mut divs = Vec::new();
    for (qi, query) in queries.iter().enumerate() {
        index.k_nearest_into::<SquaredEuclidean>(query, k, &mut scratch, &mut out);
        let oracle_query: Vec<f64> = if self_test && qi == 0 {
            let mut q = query.clone();
            q[0] += 1.0;
            q
        } else {
            query.clone()
        };
        let expected = oracle::k_nearest(
            rows.iter().map(|(id, r)| (*id, r.as_slice())),
            &oracle_query,
            k,
        );
        compare_pairs(
            "knn.scalar",
            format!("query {qi}"),
            &expected,
            &pairs_of(&out),
            1e-9,
            &mut divs,
        );
    }
    report.finish_suite("knn.scalar", queries.len() as u64, divs);

    // Masked path, including the nothing-observed degenerate case.
    let mut divs = Vec::new();
    let mut cases = 0u64;
    for (qi, query) in queries.iter().enumerate() {
        let masked = masked_query(query, seed, qi as u64);
        let observed = index.k_nearest_masked_into(&masked, k, &mut scratch, &mut out);
        let (expected, expected_observed) = oracle::k_nearest_masked(
            rows.iter().map(|(id, r)| (*id, r.as_slice())),
            &masked,
            k,
        );
        if observed != expected_observed {
            divs.push(Divergence {
                suite: "knn.masked".to_string(),
                case: format!("query {qi} observed count"),
                expected: expected_observed.to_string(),
                actual: observed.to_string(),
            });
        }
        compare_pairs(
            "knn.masked",
            format!("query {qi}"),
            &expected,
            &pairs_of(&out),
            1e-9,
            &mut divs,
        );
        cases += 1;
    }
    let blind = vec![f64::NAN; N_APS];
    let observed = index.k_nearest_masked_into(&blind, k, &mut scratch, &mut out);
    let (expected, _) =
        oracle::k_nearest_masked(rows.iter().map(|(id, r)| (*id, r.as_slice())), &blind, k);
    if observed != 0 {
        divs.push(Divergence {
            suite: "knn.masked".to_string(),
            case: "all-NaN query observed count".to_string(),
            expected: "0".to_string(),
            actual: observed.to_string(),
        });
    }
    compare_pairs(
        "knn.masked",
        "all-NaN query".to_string(),
        &expected,
        &pairs_of(&out),
        0.0,
        &mut divs,
    );
    cases += 1;
    report.finish_suite("knn.masked", cases, divs);

    // Blocked path (forced on), mixing clean and masked queries per
    // block — each lane must match the per-query oracle result.
    set_block_override(Some(true));
    let mut divs = Vec::new();
    let mut cases = 0u64;
    let mut block = QueryBlock::new(N_APS);
    let mut block_scratch = BlockScratch::new();
    let mut block_out = BlockNeighbors::new();
    for (bi, chunk) in queries.chunks(8).enumerate() {
        block.reset(N_APS);
        let mut lane_queries: Vec<Vec<f64>> = Vec::with_capacity(chunk.len());
        for (li, query) in chunk.iter().enumerate() {
            let lane = if li % 3 == 2 {
                masked_query(query, seed, (bi * 8 + li) as u64)
            } else {
                query.clone()
            };
            block.push(&lane);
            lane_queries.push(lane);
        }
        index.k_nearest_block_into::<SquaredEuclidean>(
            &mut block,
            k,
            &mut block_scratch,
            &mut block_out,
        );
        for (li, lane) in lane_queries.iter().enumerate() {
            let expected = if lane.iter().all(|v| v.is_finite()) {
                oracle::k_nearest(rows.iter().map(|(id, r)| (*id, r.as_slice())), lane, k)
            } else {
                oracle::k_nearest_masked(rows.iter().map(|(id, r)| (*id, r.as_slice())), lane, k).0
            };
            compare_pairs(
                "knn.blocked",
                format!("block {bi} lane {li}"),
                &expected,
                &pairs_of(block_out.query(li)),
                1e-9,
                &mut divs,
            );
            cases += 1;
        }
    }
    set_block_override(None);
    report.finish_suite("knn.blocked", cases, divs);

    // Mirror path (forced on): the f32 prefilter must be invisible —
    // the exact f64 rescore decides every retained rank.
    set_mirror_override(Some(true));
    let mut divs = Vec::new();
    for (qi, query) in queries.iter().enumerate() {
        index.k_nearest_mirror_into::<SquaredEuclidean>(query, k, &mut block_scratch, &mut out);
        let expected = oracle::k_nearest(rows.iter().map(|(id, r)| (*id, r.as_slice())), query, k);
        compare_pairs(
            "knn.mirror",
            format!("query {qi}"),
            &expected,
            &pairs_of(&out),
            1e-9,
            &mut divs,
        );
    }
    set_mirror_override(None);
    report.finish_suite("knn.mirror", queries.len() as u64, divs);

    // Sharded path: per-shard candidates merged across an uneven
    // 3-way partition must reproduce the serial selection.
    let mut divs = Vec::new();
    let n = index.len();
    let cuts = [0, n / 3, 2 * n / 3 + 1, n];
    for (qi, query) in queries.iter().enumerate() {
        let mut candidates: Vec<ShardCandidate> = Vec::new();
        let mut shard_out = Vec::new();
        for w in cuts.windows(2) {
            index.shard_candidates::<SquaredEuclidean>(
                query,
                k,
                w[0]..w[1],
                &mut scratch,
                &mut shard_out,
            );
            candidates.extend(shard_out.iter().copied());
        }
        index.merge_shard_candidates::<SquaredEuclidean>(k, &mut candidates, &mut out);
        let expected = oracle::k_nearest(rows.iter().map(|(id, r)| (*id, r.as_slice())), query, k);
        compare_pairs(
            "knn.sharded",
            format!("query {qi}"),
            &expected,
            &pairs_of(&out),
            1e-9,
            &mut divs,
        );
    }
    report.finish_suite("knn.sharded", queries.len() as u64, divs);
}

// ---------------------------------------------------------------------
// Motion-kernel suites: lookup tables vs the exact erf-based CDF.
// ---------------------------------------------------------------------

fn kernel_suites(db: &MotionDb, config: &MoLocConfig, seed: u64, report: &mut AuditReport) {
    eprintln!(
        "moloc-audit: motion-kernel suites ({} trained pairs)",
        db.pair_count()
    );
    let kernel = build_kernel(db, config);
    // The tabulated CDF is documented accurate to ~1.3e-7 per
    // evaluation; a window takes two, a pair probability four. 2e-6
    // keeps an order of margin without masking a wrong table.
    const TOL: f64 = 2e-6;

    let mut divs = Vec::new();
    let mut cases = 0u64;
    for (a, b, _) in db.iter() {
        for (from, to) in [(a, b), (b, a)] {
            let stats = db.get(from, to).expect("iterated pair exists");
            for s in 0..5u64 {
                let direction = 360.0 * unit(hash(seed, 0xC0, cases, s));
                let offset = 4.0 * unit(hash(seed, 0xC1, cases, s));
                let got = kernel.pair_probability(from, to, direction, offset);
                let want = oracle::pair_probability(
                    stats.direction.mean(),
                    stats.direction.std(),
                    stats.offset.mean(),
                    stats.offset.std(),
                    direction,
                    offset,
                    config.alpha_deg,
                    config.beta_m,
                );
                if (got - want).abs() > TOL {
                    divs.push(Divergence {
                        suite: "kernel.pair".to_string(),
                        case: format!(
                            "{}->{} d={direction:.3} o={offset:.3}",
                            from.get(),
                            to.get()
                        ),
                        expected: format!("{want:.12e}"),
                        actual: format!("{got:.12e}"),
                    });
                }
                cases += 1;
            }
        }
    }
    // Untrained pairs must hit the floor prior exactly.
    let untrained = (LocationId::new(1), LocationId::new(2));
    if db.get(untrained.0, untrained.1).is_none() {
        let got = kernel.pair_probability(untrained.0, untrained.1, 10.0, 1.0);
        if got != config.missing_pair_prob {
            divs.push(Divergence {
                suite: "kernel.pair".to_string(),
                case: "untrained pair".to_string(),
                expected: format!("{:.12e}", config.missing_pair_prob),
                actual: format!("{got:.12e}"),
            });
        }
        cases += 1;
    }
    report.finish_suite("kernel.pair", cases, divs);

    let mut divs = Vec::new();
    let mut cases = 0u64;
    for s in 0..32u64 {
        let offset = 5.0 * unit(hash(seed, 0xC2, s, 0));
        let got = kernel.stay_probability(offset);
        let want = oracle::stationary_probability(
            offset,
            config.alpha_deg,
            config.beta_m,
            config.stationary_offset_std_m,
        );
        if (got - want).abs() > TOL {
            divs.push(Divergence {
                suite: "kernel.stay".to_string(),
                case: format!("o={offset:.3}"),
                expected: format!("{want:.12e}"),
                actual: format!("{got:.12e}"),
            });
        }
        cases += 1;
    }
    report.finish_suite("kernel.stay", cases, divs);
}

// ---------------------------------------------------------------------
// Eq. 4 / Eq. 7 suites.
// ---------------------------------------------------------------------

fn eq_suites(
    setting: &Setting,
    queries: &[Vec<f64>],
    config: &MoLocConfig,
    seed: u64,
    report: &mut AuditReport,
) {
    eprintln!("moloc-audit: Eq. 4 / Eq. 7 suites");
    let index = FingerprintIndex::build(&setting.fdb);
    let kernel = build_kernel(&setting.motion_db, config);
    let mut scratch = KnnScratch::new();
    let mut out: Vec<Neighbor> = Vec::new();

    // Eq. 4: engine candidate probabilities vs the oracle, plus the
    // synthetic exact-match branch (a query equal to a stored row).
    let mut divs = Vec::new();
    let mut candidate_sets: Vec<CandidateSet> = Vec::new();
    for (qi, query) in queries.iter().enumerate() {
        index.k_nearest_into::<SquaredEuclidean>(query, config.k, &mut scratch, &mut out);
        let set = CandidateSet::from_neighbors(&out).expect("k >= 1 neighbors");
        let expected =
            oracle::candidate_probabilities(&pairs_of(&out)).expect("non-degenerate neighbors");
        compare_pairs(
            "eq4.candidates",
            format!("query {qi}"),
            &expected,
            &set.iter().collect::<Vec<_>>(),
            1e-12,
            &mut divs,
        );
        candidate_sets.push(set);
    }
    let mut cases = queries.len() as u64;
    if let Some((id, fp)) = setting.fdb.iter().next() {
        index.k_nearest_into::<SquaredEuclidean>(fp.values(), config.k, &mut scratch, &mut out);
        let set = CandidateSet::from_neighbors(&out).expect("k >= 1 neighbors");
        let expected =
            oracle::candidate_probabilities(&pairs_of(&out)).expect("non-degenerate neighbors");
        compare_pairs(
            "eq4.candidates",
            format!("exact-match query at {}", id.get()),
            &expected,
            &set.iter().collect::<Vec<_>>(),
            0.0,
            &mut divs,
        );
        cases += 1;
    }
    report.finish_suite("eq4.candidates", cases, divs);

    // Eq. 7 exact: database-path fusion vs the oracle with the exact
    // motion closure.
    let db = &setting.motion_db;
    let motion_oracle = |from: LocationId, to: LocationId, d: f64, o: f64| -> f64 {
        if from == to {
            return oracle::stationary_probability(
                o,
                config.alpha_deg,
                config.beta_m,
                config.stationary_offset_std_m,
            );
        }
        match db.get(from, to) {
            Some(stats) => oracle::pair_probability(
                stats.direction.mean(),
                stats.direction.std(),
                stats.offset.mean(),
                stats.offset.std(),
                d,
                o,
                config.alpha_deg,
                config.beta_m,
            ),
            None => config.missing_pair_prob,
        }
    };
    let mut divs_exact = Vec::new();
    let mut divs_kernel = Vec::new();
    let mut cases = 0u64;
    for w in candidate_sets.windows(2) {
        let (previous, current) = (&w[0], &w[1]);
        let direction = 360.0 * unit(hash(seed, 0xD0, cases, 0));
        let offset = 0.5 + 3.0 * unit(hash(seed, 0xD1, cases, 0));
        let fused = evaluate_candidates(db, previous, current, direction, offset, config);
        let expected = oracle::fuse_posterior(
            &current.iter().collect::<Vec<_>>(),
            &previous.iter().collect::<Vec<_>>(),
            |from, to| motion_oracle(from, to, direction, offset),
            config.degenerate_total_floor,
        );
        compare_pairs(
            "eq7.exact",
            format!("step {cases} d={direction:.3} o={offset:.3}"),
            &expected,
            &fused.iter().collect::<Vec<_>>(),
            1e-9,
            &mut divs_exact,
        );
        // Eq. 7 kernel vs exact: the 1e-6 per-pair kernel error can be
        // amplified by normalization when the total motion mass is
        // tiny, so this arm gates at the decision level (1e-3).
        let fused_kernel =
            evaluate_candidates_kernel(&kernel, previous, current, direction, offset, config);
        compare_pairs(
            "eq7.kernel",
            format!("step {cases} d={direction:.3} o={offset:.3}"),
            &fused.iter().collect::<Vec<_>>(),
            &fused_kernel.iter().collect::<Vec<_>>(),
            1e-3,
            &mut divs_kernel,
        );
        cases += 1;
    }
    report.finish_suite("eq7.exact", cases, divs_exact);
    report.finish_suite("eq7.kernel", cases, divs_kernel);
}

// ---------------------------------------------------------------------
// Work-stealing runtime: worker width must not change results.
// ---------------------------------------------------------------------

fn parallel_suite(world: &EvalWorld, setting: &Setting, report: &mut AuditReport) {
    eprintln!("moloc-audit: parallel width suite");
    let index = FingerprintIndex::build(&setting.fdb);
    let n = world.corpus.test.len().min(12);
    let run = |width: usize| -> Vec<Vec<u32>> {
        set_worker_override(Some(width));
        let result = par_run(n, |i| {
            let analysis = analyze_trace_indexed(
                &world.corpus.test[i],
                &setting.fdb,
                &index,
                &world.hall,
                &StepDetector::default(),
                setting.counting,
                setting.n_aps,
            );
            analysis.nn_estimates.iter().map(|l| l.get()).collect()
        });
        set_worker_override(None);
        result
    };
    let serial = run(1);
    let wide = run(4);
    let mut divs = Vec::new();
    for (i, (s, w)) in serial.iter().zip(&wide).enumerate() {
        if s != w {
            divs.push(Divergence {
                suite: "parallel.width".to_string(),
                case: format!("trace {i}"),
                expected: format!("{s:?}"),
                actual: format!("{w:?}"),
            });
        }
    }
    report.finish_suite("parallel.width", n as u64, divs);
}

// ---------------------------------------------------------------------
// Live updates: incremental publish vs from-scratch rebuild.
// ---------------------------------------------------------------------

fn live_suite(world: &EvalWorld, setting: &Setting, seed: u64, report: &mut AuditReport) {
    eprintln!("moloc-audit: live incremental-vs-rebuild suite");
    let map = world.hall.map.clone();
    let sanitation = SanitationConfig::paper();
    let base: Vec<(LocationId, Vec<f64>)> = setting
        .fdb
        .iter()
        .map(|(id, fp)| (id, fp.values().to_vec()))
        .collect();

    // The delta stream: per epoch, a couple of perturbed survey
    // samples and one RLM along a mapped pair.
    let delta_samples = |epoch: u64| -> Vec<(LocationId, Vec<f64>)> {
        (0..2u64)
            .map(|s| {
                let pick = hash(seed, 0xE0, epoch, s) as usize % base.len();
                let (id, values) = &base[pick];
                let jittered = values
                    .iter()
                    .enumerate()
                    .map(|(d, &v)| v + 2.0 * unit(hash(seed, 0xE1, epoch * 8 + s, d as u64)) - 1.0)
                    .collect();
                (*id, jittered)
            })
            .collect()
    };
    let delta_rlm = |epoch: u64| -> Rlm {
        let a = LocationId::new(1 + (hash(seed, 0xE2, epoch, 0) % 6) as u32);
        let b = LocationId::new(7 + (hash(seed, 0xE2, epoch, 1) % 6) as u32);
        let direction = map
            .direction_deg(a, b)
            .expect("both endpoints on the hall grid");
        let offset = map.offset_m(a, b) + unit(hash(seed, 0xE3, epoch, 0)) - 0.5;
        Rlm::new(a, b, direction, offset.max(0.1)).expect("valid rlm")
    };

    let mut log = UpdateLog::new(setting.n_aps, map.clone(), sanitation)
        .expect("valid sanitation");
    for (id, values) in &base {
        log.observe_survey_sample(*id, values).expect("ap count matches");
    }
    let publisher = SnapshotPublisher::new(log.build_snapshot(0).expect("seed snapshot"));
    log.mark_published();
    let mut reader = publisher.reader();

    let mut divs = Vec::new();
    let mut cases = 0u64;
    const EPOCHS: u64 = 4;
    for epoch in 1..=EPOCHS {
        for (id, values) in delta_samples(epoch) {
            log.observe_survey_sample(id, &values).expect("ap count matches");
        }
        log.observe_rlm(delta_rlm(epoch));
        let published = publisher.publish(&mut log).expect("publish succeeds");
        reader.refresh();
        let incremental = reader.snapshot().digest();

        // From-scratch arm: a fresh log fed the identical history.
        let mut rebuilt = UpdateLog::new(setting.n_aps, map.clone(), sanitation)
            .expect("valid sanitation");
        for (id, values) in &base {
            rebuilt.observe_survey_sample(*id, values).expect("ap count matches");
        }
        for e in 1..=epoch {
            for (id, values) in delta_samples(e) {
                rebuilt.observe_survey_sample(id, &values).expect("ap count matches");
            }
            rebuilt.observe_rlm(delta_rlm(e));
        }
        let rebuilt_digest = rebuilt
            .build_snapshot(epoch)
            .expect("rebuild snapshot")
            .digest();
        if incremental != rebuilt_digest || published.epoch != epoch {
            divs.push(Divergence {
                suite: "live.rebuild".to_string(),
                case: format!("epoch {epoch}"),
                expected: format!("digest {rebuilt_digest:#018x} at epoch {epoch}"),
                actual: format!(
                    "digest {incremental:#018x} at epoch {}",
                    published.epoch
                ),
            });
        }
        cases += 1;
    }
    report.finish_suite("live.rebuild", cases, divs);
}

// ---------------------------------------------------------------------
// Session recovery: kill/recover vs the uninterrupted run.
// ---------------------------------------------------------------------

fn session_suite(world: &EvalWorld, setting: &Setting, report: &mut AuditReport) {
    eprintln!("moloc-audit: session kill/recover suite");
    let index = FingerprintIndex::build(&setting.fdb);
    let config = MoLocConfig::paper();
    let kernel = build_kernel(&setting.motion_db, &config);
    let session_config = SessionConfig {
        reorder_capacity: 8,
        checkpoint_interval: 2,
        fsync: false,
    };
    let detector = StepDetector::default();
    let trace = &world.corpus.test[0];
    let analysis = analyze_trace_indexed(
        trace,
        &setting.fdb,
        &index,
        &world.hall,
        &detector,
        setting.counting,
        setting.n_aps,
    );
    let events: Vec<ScanEvent> = trace
        .scans
        .iter()
        .enumerate()
        .map(|(i, scan)| ScanEvent {
            event_id: i as u64,
            seq: i as u64,
            scan: scan[..setting.n_aps].to_vec(),
            motion: if i == 0 {
                None
            } else {
                analysis.measurements[i - 1]
            },
        })
        .collect();

    // Uninterrupted reference.
    let mut reference = Vec::new();
    let reference_state = {
        let mut session = StreamingSession::new(&index, &kernel, config, session_config);
        for event in &events {
            session
                .ingest(event.clone(), &mut reference)
                .expect("reference ingest");
        }
        session.finish(&mut reference).expect("reference finish");
        session.state().encode().expect("state encodes")
    };

    let mut divs = Vec::new();
    let mut cases = 0u64;
    let kills = [1, events.len() / 3, events.len() / 2, events.len() - 1];
    for &kill in &kills {
        let kill = kill.max(1);
        let path = std::env::temp_dir().join(format!(
            "moloc_audit_{}_kill_{kill}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut doomed =
                StreamingSession::with_log(&index, &kernel, config, session_config, &path)
                    .expect("open log");
            let mut sink = Vec::new();
            for event in &events[..kill] {
                doomed.ingest(event.clone(), &mut sink).expect("doomed ingest");
            }
            // Dropped without finish: a SIGKILL between syscalls.
        }
        let recovered = StreamingSession::recover(
            &index,
            &kernel,
            config,
            session_config,
            &path,
        )
        .expect("recover opens the log");
        let mut session = recovered.session;
        let replay_from = usize::try_from(session.ingested()).expect("fits");
        let already = usize::try_from(session.delivered()).expect("fits");
        let mut replayed = Vec::new();
        for event in &events[replay_from..] {
            session
                .ingest(event.clone(), &mut replayed)
                .expect("replay ingest");
        }
        session.finish(&mut replayed).expect("replay finish");
        let state = session.state().encode().expect("state encodes");
        let estimates_match = replayed
            .iter()
            .map(|e| (e.seq, e.location, e.flags))
            .eq(reference[already..]
                .iter()
                .map(|e| (e.seq, e.location, e.flags)));
        if !estimates_match || state != reference_state {
            divs.push(Divergence {
                suite: "session.recover".to_string(),
                case: format!("kill at {kill}"),
                expected: format!(
                    "{} reference estimates from {already}, state {} bytes",
                    reference.len() - already,
                    reference_state.len()
                ),
                actual: format!(
                    "{} replayed estimates (match: {estimates_match}), state {} bytes",
                    replayed.len(),
                    state.len()
                ),
            });
        }
        let _ = std::fs::remove_file(&path);
        cases += 1;
    }
    report.finish_suite("session.recover", cases, divs);
}

// ---------------------------------------------------------------------
// Checkpoint framing: wire format vs the independent oracle.
// ---------------------------------------------------------------------

fn frame_suite(seed: u64, report: &mut AuditReport) {
    eprintln!("moloc-audit: checkpoint framing suite");
    let mut divs = Vec::new();
    let mut cases = 0u64;
    for case in 0..16u64 {
        let len = (hash(seed, 0xF0, case, 0) % 96) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|i| (hash(seed, 0xF1, case, i as u64) & 0xFF) as u8)
            .collect();
        let framed = moloc_session::checkpoint::frame_record(&payload);
        let oracle_framed = oracle::frame_record(&payload);
        if framed != oracle_framed {
            divs.push(Divergence {
                suite: "frame.roundtrip".to_string(),
                case: format!("case {case}: frame bytes"),
                expected: format!("{} oracle bytes", oracle_framed.len()),
                actual: format!("{} session bytes", framed.len()),
            });
        }
        // The oracle parser must accept the session's frame verbatim...
        match oracle::parse_record(&framed) {
            Some((_, parsed, consumed)) if parsed == payload && consumed == framed.len() => {}
            other => divs.push(Divergence {
                suite: "frame.roundtrip".to_string(),
                case: format!("case {case}: oracle parse"),
                expected: "round-tripped payload".to_string(),
                actual: format!("{other:?}"),
            }),
        }
        // ...and both sides must reject the same single-byte flip.
        let flip = (hash(seed, 0xF2, case, 0) % framed.len() as u64) as usize;
        let mut bad = framed.clone();
        bad[flip] ^= 0x01;
        let session_accepts = {
            let (payloads, scan) = moloc_session::checkpoint::scan_records(&bad);
            scan.corruption.is_none() && payloads.len() == 1
        };
        let oracle_accepts = oracle::parse_record(&bad).is_some();
        if session_accepts || oracle_accepts {
            divs.push(Divergence {
                suite: "frame.roundtrip".to_string(),
                case: format!("case {case}: flip at byte {flip}"),
                expected: "rejected by both parsers".to_string(),
                actual: format!(
                    "session_accepts={session_accepts} oracle_accepts={oracle_accepts}"
                ),
            });
        }
        cases += 1;
    }
    report.finish_suite("frame.roundtrip", cases, divs);
}
