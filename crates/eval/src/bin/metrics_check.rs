//! Metrics-artifact gate: validates a snapshot written by
//! `repro --metrics FILE` against the canonical taxonomy in
//! [`moloc_eval::observe`].
//!
//! ```text
//! metrics_check FILE
//! ```
//!
//! Checks that the document carries the `moloc.metrics.v1` schema tag,
//! that every preregistered counter/gauge/histogram name is present
//! with the right value shape, and that each histogram is internally
//! consistent (bucket counts sum to the total, bucket bounds strictly
//! ascending, min ≤ max whenever anything was recorded). Exit status:
//! 0 clean, 1 invalid artifact, 2 on usage or parse errors.

use moloc_eval::observe;
use serde::Value;

/// Looks up `name` in an object `Value`.
fn get<'v>(value: &'v Value, name: &str) -> Option<&'v Value> {
    match value {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

fn check_histogram(name: &str, hist: &Value, problems: &mut Vec<String>) {
    let (Some(count), Some(sum), Some(min), Some(max)) = (
        get(hist, "count").and_then(as_u64),
        get(hist, "sum").and_then(as_f64),
        get(hist, "min").and_then(as_f64),
        get(hist, "max").and_then(as_f64),
    ) else {
        problems.push(format!("{name}: missing or mistyped summary fields"));
        return;
    };
    let Some(Value::Array(buckets)) = get(hist, "buckets") else {
        problems.push(format!("{name}: missing bucket array"));
        return;
    };
    // Zero-count buckets are elided, so an untouched histogram has an
    // empty list; the sum check below still forces buckets to account
    // for every recorded sample.
    let mut bucket_total = 0u64;
    let mut last_le = f64::NEG_INFINITY;
    for bucket in buckets {
        let (Some(le), Some(n)) = (
            get(bucket, "le").and_then(as_f64),
            get(bucket, "count").and_then(as_u64),
        ) else {
            problems.push(format!("{name}: malformed bucket"));
            return;
        };
        if le <= last_le {
            problems.push(format!(
                "{name}: bucket bounds not strictly ascending ({last_le} then {le})"
            ));
            return;
        }
        last_le = le;
        bucket_total += n;
    }
    if bucket_total != count {
        problems.push(format!(
            "{name}: bucket counts sum to {bucket_total}, total is {count}"
        ));
    }
    if count > 0 {
        if !(min.is_finite() && max.is_finite() && min <= max) {
            problems.push(format!("{name}: inconsistent extrema min {min} max {max}"));
        }
        if !sum.is_finite() {
            problems.push(format!("{name}: non-finite sum {sum}"));
        }
    }
}

fn check(doc: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    match get(doc, "schema") {
        Some(Value::Str(s)) if s == "moloc.metrics.v1" => {}
        other => problems.push(format!("unexpected schema tag: {other:?}")),
    }
    let Some(counters) = get(doc, "counters") else {
        problems.push("missing counters section".to_string());
        return problems;
    };
    let Some(gauges) = get(doc, "gauges") else {
        problems.push("missing gauges section".to_string());
        return problems;
    };
    let Some(histograms) = get(doc, "histograms") else {
        problems.push("missing histograms section".to_string());
        return problems;
    };
    for name in observe::COUNTERS {
        match get(counters, name) {
            Some(v) if as_u64(v).is_some() => {}
            Some(_) => problems.push(format!("counter {name} is not an unsigned integer")),
            None => problems.push(format!("missing counter: {name}")),
        }
    }
    for name in observe::GAUGES {
        match get(gauges, name) {
            Some(v) if as_u64(v).is_some() => {}
            Some(_) => problems.push(format!("gauge {name} is not an unsigned integer")),
            None => problems.push(format!("missing gauge: {name}")),
        }
    }
    for name in observe::HISTOGRAMS {
        match get(histograms, name) {
            Some(hist) => check_histogram(name, hist, &mut problems),
            None => problems.push(format!("missing histogram: {name}")),
        }
    }
    problems
}

fn section_len(doc: &Value, name: &str) -> usize {
    match get(doc, name) {
        Some(Value::Object(fields)) => fields.len(),
        _ => 0,
    }
}

fn main() {
    if let Err(e) = moloc_eval::parallel::validate_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: metrics_check FILE");
        std::process::exit(0);
    }
    if paths.len() != 1 {
        eprintln!("error: expected exactly one snapshot file argument");
        std::process::exit(2);
    }
    let path = paths.remove(0);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: parse {path}: {e:?}");
            std::process::exit(2);
        }
    };

    let problems = check(&doc);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("invalid: {p}");
        }
        eprintln!("{} problem(s) in {path}", problems.len());
        std::process::exit(1);
    }
    println!(
        "{path}: schema moloc.metrics.v1, {} counters, {} gauges, {} histograms — ok",
        section_len(&doc, "counters"),
        section_len(&doc, "gauges"),
        section_len(&doc, "histograms"),
    );
}
