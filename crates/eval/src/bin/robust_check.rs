//! Robustness-regression gate: compares two `ROBUST_*.json` files
//! emitted by the `repro --exp robustness` sweep and fails when any
//! sweep point shared by both files got meaningfully worse.
//!
//! ```text
//! robust_check [--old ROBUST_pr3.json] [--new FILE] [--tolerance 1.20]
//! ```
//!
//! A point regresses when its median error exceeds
//! `old * tolerance + 0.25 m` (the absolute slack keeps zero-median
//! points gateable) or its accuracy drops by more than 5 points. Exit
//! status: 0 clean, 1 regressed, 2 on usage or parse errors. Points
//! present in only one file are listed but never gate.

use moloc_eval::experiments::robustness::Robustness;

const ACCURACY_SLACK: f64 = 0.05;
const MEDIAN_SLACK_M: f64 = 0.25;

struct Args {
    old: String,
    new: String,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        old: "ROBUST_pr3.json".to_string(),
        new: "ROBUST_pr3.new.json".to_string(),
        tolerance: 1.20,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--old" => args.old = value("--old")?,
            "--new" => args.new = value("--new")?,
            "--tolerance" => {
                let v = value("--tolerance")?;
                args.tolerance = v.parse().map_err(|_| format!("invalid tolerance: {v}"))?;
            }
            "--help" | "-h" => {
                println!("usage: robust_check [--old FILE] [--new FILE] [--tolerance RATIO]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !(args.tolerance.is_finite() && args.tolerance >= 1.0) {
        return Err(format!("tolerance must be >= 1.0, got {}", args.tolerance));
    }
    Ok(args)
}

fn load(path: &str) -> Result<Robustness, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e:?}"))
}

fn main() {
    if let Err(e) = moloc_eval::parallel::validate_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let (old, new) = match (load(&args.old), load(&args.new)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for e in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            std::process::exit(2);
        }
    };
    println!(
        "comparing {} (seed {}) -> {} (seed {}), tolerance {:.2}x (+{MEDIAN_SLACK_M} m), \
         accuracy slack {ACCURACY_SLACK:.2}",
        args.old, old.seed, args.new, new.seed, args.tolerance,
    );

    let mut regressions = 0usize;
    let mut shared = 0usize;
    for np in &new.points {
        let Some(op) = old
            .points
            .iter()
            .find(|p| p.axis == np.axis && p.intensity == np.intensity)
        else {
            println!(
                "  NEW       {:<16} @ {:<5} median {:.2} m, accuracy {:.0}%",
                np.axis,
                np.intensity,
                np.median_error_m,
                np.accuracy * 100.0
            );
            continue;
        };
        shared += 1;
        if !(np.median_error_m.is_finite() && np.accuracy.is_finite() && np.passes > 0) {
            eprintln!("error: malformed point {} @ {}", np.axis, np.intensity);
            std::process::exit(2);
        }
        let median_bound = op.median_error_m * args.tolerance + MEDIAN_SLACK_M;
        let median_bad = np.median_error_m > median_bound;
        let accuracy_bad = np.accuracy < op.accuracy - ACCURACY_SLACK;
        let status = if median_bad || accuracy_bad {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<9} {:<16} @ {:<5} median {:.2} -> {:.2} m (bound {:.2}), \
             accuracy {:.0}% -> {:.0}%",
            status,
            np.axis,
            np.intensity,
            op.median_error_m,
            np.median_error_m,
            median_bound,
            op.accuracy * 100.0,
            np.accuracy * 100.0,
        );
    }
    for op in &old.points {
        if !new
            .points
            .iter()
            .any(|p| p.axis == op.axis && p.intensity == op.intensity)
        {
            println!("  RETIRED   {:<16} @ {:<5}", op.axis, op.intensity);
        }
    }

    if shared == 0 {
        eprintln!("error: the two files share no sweep points");
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!("{regressions} of {shared} shared sweep points regressed");
        std::process::exit(1);
    }
    println!("all {shared} shared sweep points within tolerance");
}
