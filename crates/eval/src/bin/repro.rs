//! Regenerates every table and figure of the MoLoc paper.
//!
//! ```text
//! repro [--exp all|fig4|fig6|fig7|fig8|table1|ablations|baselines|seeds|robustness|chaos|drift]
//!       [--seed N] [--fast] [--robust-out FILE] [--chaos-out FILE] [--drift-out FILE]
//!       [--metrics FILE]
//! ```
//!
//! `--fast` runs the reduced corpus (for smoke tests); the default runs
//! the paper-scale 184-trace corpus. The robustness sweep always runs
//! on the reduced corpus (its artifact gates CI, so it must stay
//! CI-speed and seed-stable); `--robust-out` writes its JSON artifact.
//! `--metrics` enables the `moloc-obs` recorder for the run and writes
//! the resulting [`MetricsSnapshot`] JSON (schema `moloc.metrics.v1`)
//! to FILE; without it the recorder stays disabled and the run is
//! bit-identical to builds without instrumentation.
//!
//! [`MetricsSnapshot`]: moloc_obs::MetricsSnapshot

use moloc_eval::cache::ScenarioCache;
use moloc_eval::experiments::{
    ablations, baselines, chaos, drift, fig4, fig6, fig7, fig8, robustness, seeds, table1,
};
use moloc_eval::pipeline::EvalWorld;

#[derive(Debug)]
struct Args {
    exp: String,
    seed: u64,
    fast: bool,
    robust_out: Option<String>,
    chaos_out: Option<String>,
    drift_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        exp: "all".to_string(),
        seed: 2013,
        fast: false,
        robust_out: None,
        chaos_out: None,
        drift_out: None,
        metrics_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--exp" => {
                args.exp = iter
                    .next()
                    .ok_or_else(|| "--exp requires a value".to_string())?;
            }
            "--seed" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--seed requires a value".to_string())?;
                args.seed = v.parse().map_err(|_| format!("invalid seed: {v}"))?;
            }
            "--fast" => args.fast = true,
            "--robust-out" => {
                args.robust_out = Some(
                    iter.next()
                        .ok_or_else(|| "--robust-out requires a value".to_string())?,
                );
            }
            "--chaos-out" => {
                args.chaos_out = Some(
                    iter.next()
                        .ok_or_else(|| "--chaos-out requires a value".to_string())?,
                );
            }
            "--drift-out" => {
                args.drift_out = Some(
                    iter.next()
                        .ok_or_else(|| "--drift-out requires a value".to_string())?,
                );
            }
            "--metrics" => {
                args.metrics_out = Some(
                    iter.next()
                        .ok_or_else(|| "--metrics requires a value".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp all|fig4|fig6|fig7|fig8|table1|ablations|baselines|seeds|robustness|chaos|drift] [--seed N] [--fast] [--robust-out FILE] [--chaos-out FILE] [--drift-out FILE] [--metrics FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // Surface a typo'd MOLOC_* variable as a typed, actionable error
    // before any pool spins up or any session opens a log — never a
    // silent fallback, never a mid-run panic from a cached resolver.
    if let Err(e) = moloc_eval::parallel::validate_env().and(moloc_session::validate_env()) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }

    if args.metrics_out.is_some() {
        // Declare the full taxonomy first so every canonical name shows
        // up in the artifact (zeroed if the chosen experiment never
        // touches it), then turn the recorder on for the whole run.
        moloc_eval::observe::preregister();
        moloc_obs::enable();
    }

    run(&args);

    if let Some(path) = &args.metrics_out {
        let json = moloc_obs::snapshot().to_json();
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote metrics snapshot to {path}");
    }
}

fn run(args: &Args) {
    let wants = |name: &str| args.exp == "all" || args.exp == name;

    if wants("fig4") {
        println!("{}", fig4::render(&fig4::run(args.seed)));
    }

    if args.exp == "seeds" {
        let sweep = seeds::run(&[
            args.seed,
            args.seed + 1,
            args.seed + 2,
            args.seed + 3,
            args.seed + 4,
        ]);
        println!("{}", seeds::render(&sweep));
        return;
    }

    if wants("robustness") {
        // Always the reduced corpus: the sweep's JSON artifact is a CI
        // regression baseline and must stay fast and seed-stable.
        eprintln!(
            "building reduced world for the robustness sweep (seed {})...",
            args.seed
        );
        let small = EvalWorld::small(args.seed);
        let sweep = robustness::run(&small, args.seed);
        println!("{}", robustness::render(&sweep));
        if let Some(path) = &args.robust_out {
            let json = serde_json::to_string_pretty(&sweep).expect("sweep serializes");
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("error: write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
    }

    if wants("chaos") {
        // Reduced corpus, like the robustness sweep: the chaos artifact
        // gates CI, so it must stay fast and seed-stable.
        eprintln!(
            "building reduced world for the chaos suite (seed {})...",
            args.seed
        );
        let small = EvalWorld::small(args.seed);
        let suite = chaos::run(&small, args.seed);
        println!("{}", chaos::render(&suite));
        if let Some(path) = &args.chaos_out {
            let json = serde_json::to_string_pretty(&suite).expect("chaos serializes");
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("error: write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
    }

    if wants("drift") {
        // Reduced corpus, like the robustness and chaos sweeps: the
        // drift artifact is a seed-stable regression reference and
        // every epoch re-evaluates the full test corpus.
        eprintln!(
            "building reduced world for the drift sweep (seed {})...",
            args.seed
        );
        let small = EvalWorld::small(args.seed);
        let sweep = drift::run(&small, args.seed);
        println!("{}", drift::render(&sweep));
        if let Some(path) = &args.drift_out {
            let json = serde_json::to_string_pretty(&sweep).expect("drift serializes");
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("error: write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
    }

    let needs_world = ["fig6", "fig7", "fig8", "table1", "ablations", "baselines"]
        .iter()
        .any(|e| wants(e));
    if !needs_world {
        return;
    }

    eprintln!(
        "building world (seed {}, {})...",
        args.seed,
        if args.fast {
            "fast corpus"
        } else {
            "paper-scale corpus"
        }
    );
    let world = if args.fast {
        EvalWorld::small(args.seed)
    } else {
        EvalWorld::paper(args.seed)
    };
    // Every experiment below shares this scenario; the cache hands each
    // of them the same built settings, fingerprint indexes, and motion
    // kernels instead of rebuilding per experiment.
    let cache = ScenarioCache::new(&world);

    if wants("fig6") {
        let artifacts = cache.artifacts(6);
        println!("{}", fig6::render(&fig6::run(&world, &artifacts.setting)));
        println!(
            "motion-db construction: {:?}\n",
            artifacts.setting.build_report
        );
    }

    let needs_fig7 = ["fig7", "fig8", "table1"].iter().any(|e| wants(e));
    let f7 = needs_fig7.then(|| fig7::run_cached(&cache));

    if wants("fig7") {
        println!("{}", fig7::render(f7.as_ref().expect("computed above")));
    }
    if wants("fig8") {
        println!(
            "{}",
            fig8::render(&fig8::run(f7.as_ref().expect("computed above")))
        );
    }
    if wants("table1") {
        println!(
            "{}",
            table1::render(&table1::run(f7.as_ref().expect("computed above")))
        );
    }

    if wants("seeds") {
        let sweep = seeds::run(&[
            args.seed,
            args.seed + 1,
            args.seed + 2,
            args.seed + 3,
            args.seed + 4,
        ]);
        println!("{}", seeds::render(&sweep));
    }

    if wants("baselines") {
        let artifacts = cache.artifacts(6);
        println!(
            "{}",
            baselines::render(&baselines::run(&world, &artifacts.setting))
        );
    }

    if wants("ablations") {
        println!(
            "{}",
            ablations::render_csc_vs_dsc(&ablations::csc_vs_dsc(&world))
        );
        println!(
            "{}",
            ablations::render_sanitation(&ablations::sanitation(&cache, 6))
        );
        println!(
            "{}",
            ablations::render_k_sweep(&ablations::k_sweep(&cache, 6, &[1, 2, 3, 4, 6, 8]))
        );
        println!(
            "{}",
            ablations::render_window_sweep(&ablations::window_sweep(
                &cache,
                6,
                &[5.0, 10.0, 20.0, 45.0, 90.0],
                &[0.25, 0.5, 1.0, 2.0, 4.0],
            ))
        );
        println!(
            "{}",
            ablations::render_map_db(&ablations::map_db(&cache, 6))
        );
        println!(
            "{}",
            ablations::render_heading_fusion(&ablations::heading_fusion(&world, args.seed))
        );
        let calib = ablations::heading_calibration_errors(&cache, 6);
        println!(
            "# Heading calibration |error| over {} traces: median {:.1}°, max {:.1}°\n",
            calib.len(),
            calib.median().unwrap_or(f64::NAN),
            calib.max().unwrap_or(f64::NAN),
        );
    }
}
