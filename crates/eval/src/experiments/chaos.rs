//! Chaos experiment: the crash-safe streaming session layer under
//! injected stream and lifecycle faults.
//!
//! Four claims are exercised, each mapped to a hard invariant rather
//! than a statistical trend:
//!
//! 1. **Stream/batch equivalence** — a zero-fault in-order stream
//!    through [`StreamingSession`] produces estimates bit-identical to
//!    driving the `BatchLocalizer` recursion directly.
//! 2. **Kill-and-recover determinism** — for every fault mix and kill
//!    point, killing the session mid-stream, recovering from the
//!    checkpoint log, and replaying the arrival suffix reproduces the
//!    uninterrupted run's estimates and final state bit-for-bit.
//! 3. **Corruption is loud** — a checkpoint log hit by
//!    [`CheckpointCorruption`] is always *detected*; recovery falls
//!    back to the previous verified record and replay still converges
//!    to the uninterrupted state. A corrupted record is never silently
//!    loaded.
//! 4. **Watchdogs fire** — stalled evaluation workers are detected,
//!    expired deadlines abandon (never half-run) the remaining shards,
//!    and a poisoned job lands in the quarantine registry with its
//!    panic payload.
//!
//! Any violation panics with the [`FaultPlanSpec::describe`] banner —
//! the exact JSON plan plus the seed — so every red run reproduces
//! verbatim. Results serialize to `ROBUST_pr8.json` via
//! `repro --exp chaos --chaos-out FILE`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::parallel::{par_shards_deadline, par_shards_deadline_with_workers, quarantine_log};
use crate::pipeline::{analyze_trace_indexed, EvalWorld, Setting};
use crate::report;
use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_faults::spec::FaultPlanSpec;
use moloc_faults::{CheckpointCorruption, ScanDuplicate, ScanLoss, ScanReorder, WorkerStall};
use moloc_fingerprint::index::FingerprintIndex;
use moloc_motion::kernel::MotionKernel;
use moloc_sensors::steps::StepDetector;
use moloc_session::{Estimate, ReorderStats, ScanEvent, SessionConfig, StreamingSession};
use serde::{Deserialize, Serialize};

/// Traces driven through the kill matrix per case (the zero-fault
/// equivalence check runs over the full test corpus).
const KILL_TRACES: usize = 4;

/// One fault mix driven through the kill-and-recover matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCase {
    /// Case label.
    pub name: String,
    /// The exact injector configuration (replayable via
    /// [`FaultPlanSpec::from_json`]).
    pub spec: FaultPlanSpec,
    /// Traces streamed.
    pub traces: usize,
    /// Total arrival events across traces (after loss/duplication).
    pub arrivals: usize,
    /// Events released to the tracker.
    pub delivered: u64,
    /// Wire duplicates dropped by the reorder buffer.
    pub duplicates_dropped: u64,
    /// Arrivals behind the watermark, dropped.
    pub late_dropped: u64,
    /// Sequence holes skipped on window overflow.
    pub gaps_skipped: u64,
    /// Kill points exercised across traces.
    pub kill_points: usize,
    /// Recoveries that actually resumed from a verified checkpoint.
    pub recoveries_resumed: usize,
    /// FNV-1a digest over every trace's estimate stream.
    pub digest: String,
    /// Every kill point reproduced the uninterrupted run bit-for-bit.
    pub recovered_bit_identical: bool,
}

/// Runtime-watchdog outcomes under [`WorkerStall`] injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogOutcome {
    /// Deadline-bearing jobs submitted.
    pub jobs: usize,
    /// Jobs whose deadline fired with shards still queued.
    pub expired_jobs: usize,
    /// Jobs where a pool worker was flagged stalled past the grace
    /// period (stays 0 on single-worker hosts — the serial path has no
    /// pool workers to watch).
    pub stalls_detected: usize,
    /// Items abandoned un-run by expired deadlines.
    pub abandoned_items: usize,
    /// The deliberately poisoned job landed in the quarantine registry
    /// with its panic payload.
    pub quarantined: bool,
}

/// The full chaos artifact (serialized as `ROBUST_pr8.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chaos {
    /// World + injector seed.
    pub seed: u64,
    /// AP count of the evaluated setting.
    pub n_aps: usize,
    /// Claim 1: zero-fault in-order streaming ≡ batch recursion.
    pub zero_fault_matches_batch: bool,
    /// Claim 3: the corrupted checkpoint log was detected (never
    /// silently loaded).
    pub corruption_detected: bool,
    /// Claim 3: recovery past the corrupted record still reproduced
    /// the uninterrupted final state.
    pub corruption_recovered_bit_identical: bool,
    /// Claim 2, per fault mix.
    pub cases: Vec<ChaosCase>,
    /// Claim 4.
    pub watchdog: WatchdogOutcome,
}

/// FNV-1a over a byte stream (the workspace's checksum idiom).
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn digest_estimates(h: &mut u64, estimates: &[Estimate]) {
    for e in estimates {
        fnv1a(h, &e.seq.to_le_bytes());
        fnv1a(h, &u64::from(e.location.get()).to_le_bytes());
        fnv1a(h, &[e.flags.bits()]);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Panics with the replay banner on a violated invariant.
fn check(cond: bool, spec: &FaultPlanSpec, seed: u64, msg: &str) {
    assert!(cond, "chaos invariant violated: {msg}\nseed {seed}\n{}", spec.describe());
}

/// The shared per-run context: built once, borrowed everywhere.
struct Ctx<'a> {
    index: &'a FingerprintIndex,
    kernel: &'a MotionKernel,
    config: MoLocConfig,
    session: SessionConfig,
}

/// The in-order event stream of one test trace: seq = pass index, the
/// scan truncated to the setting's AP count, and the inter-pass motion
/// measurement exactly as the batch pipeline feeds it.
fn event_stream(world: &EvalWorld, setting: &Setting, index: &FingerprintIndex, trace_index: usize) -> Vec<ScanEvent> {
    let trace = &world.corpus.test[trace_index];
    let analysis = analyze_trace_indexed(
        trace,
        &setting.fdb,
        index,
        &world.hall,
        &StepDetector::default(),
        setting.counting,
        setting.n_aps,
    );
    trace
        .scans
        .iter()
        .enumerate()
        .map(|(i, scan)| ScanEvent {
            event_id: i as u64,
            seq: i as u64,
            scan: scan[..setting.n_aps].to_vec(),
            motion: if i == 0 {
                None
            } else {
                analysis.measurements[i - 1]
            },
        })
        .collect()
}

/// Applies the wire-level faults of `spec` to an in-order stream:
/// loss, then duplication, then arrival-order permutation.
fn arrival_stream(events: &[ScanEvent], trace: u64, spec: &FaultPlanSpec) -> Vec<ScanEvent> {
    let mut wire: Vec<ScanEvent> = Vec::with_capacity(events.len());
    for event in events {
        if spec.scan_loss.is_some_and(|l| l.dropped(trace, event.seq)) {
            continue;
        }
        let copies = spec
            .scan_duplicate
            .map_or(0, |d| d.extra_copies(trace, event.seq));
        for _ in 0..=copies {
            wire.push(event.clone());
        }
    }
    match spec.scan_reorder {
        Some(r) => r
            .arrival_order(trace, wire.len())
            .into_iter()
            .map(|i| wire[i].clone())
            .collect(),
        None => wire,
    }
}

/// Streams `arrivals` through a fresh (logless) session to completion.
fn stream_all(
    ctx: &Ctx<'_>,
    arrivals: &[ScanEvent],
    spec: &FaultPlanSpec,
    seed: u64,
) -> (Vec<Estimate>, Vec<u8>, ReorderStats) {
    let mut session = StreamingSession::new(ctx.index, ctx.kernel, ctx.config, ctx.session);
    let mut out = Vec::new();
    for event in arrivals {
        session
            .ingest(event.clone(), &mut out)
            .unwrap_or_else(|e| panic!("uninterrupted ingest failed: {e}\nseed {seed}\n{}", spec.describe()));
    }
    session
        .finish(&mut out)
        .unwrap_or_else(|e| panic!("uninterrupted finish failed: {e}\nseed {seed}\n{}", spec.describe()));
    (
        out,
        session.state().encode().expect("state encodes"),
        session.reorder_stats(),
    )
}

/// A scratch checkpoint-log path, cleared of any leftover.
fn scratch_log(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "moloc_chaos_{}_{tag}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Kills a logged session after `kill` arrivals, recovers, replays the
/// suffix, and verifies both the replayed estimates and the final
/// state against the uninterrupted run. Returns whether recovery
/// resumed from a checkpoint (vs. a from-scratch replay).
#[allow(clippy::too_many_arguments)]
fn kill_and_recover(
    ctx: &Ctx<'_>,
    arrivals: &[ScanEvent],
    kill: usize,
    reference: &[Estimate],
    reference_state: &[u8],
    spec: &FaultPlanSpec,
    seed: u64,
    tag: &str,
) -> bool {
    let path = scratch_log(tag);
    {
        // The doomed process: ingest up to the kill point, then drop
        // without `finish` — everything past the last checkpoint
        // append is lost, exactly like a SIGKILL between syscalls.
        let mut doomed =
            StreamingSession::with_log(ctx.index, ctx.kernel, ctx.config, ctx.session, &path)
                .unwrap_or_else(|e| panic!("open log: {e}\nseed {seed}\n{}", spec.describe()));
        let mut sink = Vec::new();
        for event in &arrivals[..kill] {
            doomed
                .ingest(event.clone(), &mut sink)
                .unwrap_or_else(|e| panic!("doomed ingest: {e}\nseed {seed}\n{}", spec.describe()));
        }
    }
    let recovered =
        StreamingSession::recover(ctx.index, ctx.kernel, ctx.config, ctx.session, &path)
            .unwrap_or_else(|e| panic!("recover: {e}\nseed {seed}\n{}", spec.describe()));
    check(
        recovered.report.corruption.is_none(),
        spec,
        seed,
        "clean kill must not report corruption",
    );
    let mut session = recovered.session;
    let resume = session.ingested() as usize;
    check(resume <= kill, spec, seed, "replay cursor ran ahead of the kill point");
    let replay_from = session.delivered() as usize;
    let mut out = Vec::new();
    for event in &arrivals[resume..] {
        session
            .ingest(event.clone(), &mut out)
            .unwrap_or_else(|e| panic!("replay ingest: {e}\nseed {seed}\n{}", spec.describe()));
    }
    session
        .finish(&mut out)
        .unwrap_or_else(|e| panic!("replay finish: {e}\nseed {seed}\n{}", spec.describe()));
    check(
        out[..] == reference[replay_from..],
        spec,
        seed,
        "replayed estimates diverged from the uninterrupted run",
    );
    check(
        session.state().encode().expect("state encodes") == reference_state,
        spec,
        seed,
        "recovered final state diverged from the uninterrupted run",
    );
    let _ = std::fs::remove_file(&path);
    recovered.resumed
}

/// Claim 1: zero-fault in-order streaming ≡ the batch recursion.
fn zero_fault_equivalence(ctx: &Ctx<'_>, streams: &[Vec<ScanEvent>], seed: u64) -> bool {
    let spec = FaultPlanSpec::default();
    for events in streams {
        let mut engine = BatchLocalizer::new_with_index(ctx.index, ctx.kernel, ctx.config);
        let batch: Vec<Estimate> = events
            .iter()
            .map(|e| {
                let location = engine
                    .observe_slice(&e.scan, e.motion)
                    .expect("clean query matches database");
                Estimate {
                    seq: e.seq,
                    location,
                    flags: engine.last_flags(),
                }
            })
            .collect();
        let (streamed, _, stats) = stream_all(ctx, events, &spec, seed);
        check(
            streamed == batch,
            &spec,
            seed,
            "zero-fault streaming diverged from the batch recursion",
        );
        check(
            stats.duplicates_dropped == 0 && stats.late_dropped == 0 && stats.gaps_skipped == 0,
            &spec,
            seed,
            "zero-fault stream exercised a drop path",
        );
    }
    true
}

/// Claim 3: a corrupted checkpoint log is detected, and recovery past
/// it still converges. Returns `(detected, bit_identical)`.
fn corruption_is_loud(
    ctx: &Ctx<'_>,
    events: &[ScanEvent],
    seed: u64,
) -> (bool, bool) {
    let injector = CheckpointCorruption { rate: 1.0, seed };
    let spec = FaultPlanSpec {
        checkpoint_corruption: Some(injector),
        ..FaultPlanSpec::default()
    };
    let (reference, reference_state, _) = stream_all(ctx, events, &spec, seed);
    let path = scratch_log("corruption");
    {
        let mut session =
            StreamingSession::with_log(ctx.index, ctx.kernel, ctx.config, ctx.session, &path)
                .unwrap_or_else(|e| panic!("open log: {e}\nseed {seed}\n{}", spec.describe()));
        let mut sink = Vec::new();
        for event in events {
            session
                .ingest(event.clone(), &mut sink)
                .unwrap_or_else(|e| panic!("ingest: {e}\nseed {seed}\n{}", spec.describe()));
        }
        session
            .finish(&mut sink)
            .unwrap_or_else(|e| panic!("finish: {e}\nseed {seed}\n{}", spec.describe()));
    }
    // Hit the log's final record: flip one injector-chosen bit inside
    // the last 16 bytes (payload tail or checksum — both are covered
    // by the record checksum, so either must be detected).
    let mut bytes = std::fs::read(&path).expect("log readable");
    check(bytes.len() > 16, &spec, seed, "log too short to corrupt");
    let tail = bytes.len() - 16;
    let flipped = injector.corrupt(0, 0, &mut bytes[tail..]);
    check(flipped, &spec, seed, "rate-1.0 injector must flip a bit");
    std::fs::write(&path, &bytes).expect("log writable");

    let recovered =
        StreamingSession::recover(ctx.index, ctx.kernel, ctx.config, ctx.session, &path)
            .unwrap_or_else(|e| panic!("recover: {e}\nseed {seed}\n{}", spec.describe()));
    let detected = recovered.report.corruption.is_some();
    check(detected, &spec, seed, "corrupted checkpoint log loaded silently");
    let mut session = recovered.session;
    let resume = session.ingested() as usize;
    check(
        resume < events.len() || !recovered.resumed,
        &spec,
        seed,
        "recovery claims the corrupted final record's cursor",
    );
    let replay_from = session.delivered() as usize;
    let mut out = Vec::new();
    for event in &events[resume..] {
        session
            .ingest(event.clone(), &mut out)
            .unwrap_or_else(|e| panic!("replay ingest: {e}\nseed {seed}\n{}", spec.describe()));
    }
    session
        .finish(&mut out)
        .unwrap_or_else(|e| panic!("replay finish: {e}\nseed {seed}\n{}", spec.describe()));
    let identical = session.state().encode().expect("state encodes") == reference_state
        && out[..] == reference[replay_from..];
    check(identical, &spec, seed, "recovery past corruption diverged");
    let _ = std::fs::remove_file(&path);
    (detected, identical)
}

/// Claim 4: deadlines, stall flags, and quarantine under
/// [`WorkerStall`] injection.
fn watchdog_outcomes(seed: u64) -> WatchdogOutcome {
    let mut expired_jobs = 0;
    let mut stalls_detected = 0;
    let mut abandoned_items = 0;
    let mut jobs = 0;

    // Job 0 is the deterministic anchor, dispatched 4-wide explicitly
    // so the pooled watchdog path runs even on single-core hosts: every
    // shard a *pool* worker picks up wedges well past the deadline plus
    // the stall grace period (flagged, not merely late), while the
    // submitter's shards are slow enough that the 32-shard job cannot
    // drain before the 20 ms deadline (expiry and abandonment are
    // guaranteed on every host).
    jobs += 1;
    let report = par_shards_deadline_with_workers(
        4,
        32,
        1,
        Some(Instant::now() + Duration::from_millis(20)),
        |_range| {
            let on_pool = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("moloc-worker"));
            std::thread::sleep(Duration::from_millis(if on_pool { 250 } else { 5 }));
        },
    );
    assert!(
        report.expired && report.abandoned_items > 0,
        "the anchor job must expire its deadline (seed {seed})"
    );
    assert!(
        report.stall_detected,
        "the wedged pool workers must be flagged stalled (seed {seed})"
    );
    assert_eq!(
        report.completed_items + report.abandoned_items,
        32,
        "watchdog accounting lost items (seed {seed})"
    );
    expired_jobs += usize::from(report.expired);
    stalls_detected += usize::from(report.stall_detected);
    abandoned_items += report.abandoned_items;

    // Jobs 1-2 stall probabilistically through the seeded injector.
    let plans = [
        WorkerStall { rate: 0.3, stall_ms: 60, seed },
        WorkerStall { rate: 0.3, stall_ms: 60, seed: seed ^ 1 },
    ];
    for (job, plan) in plans.iter().enumerate() {
        jobs += 1;
        let report = par_shards_deadline_with_workers(
            4,
            32,
            1,
            Some(Instant::now() + Duration::from_millis(20)),
            |range| {
                for shard in range {
                    if let Some(stall) = plan.stall(job as u64, shard as u64) {
                        std::thread::sleep(stall);
                    }
                }
            },
        );
        expired_jobs += usize::from(report.expired);
        stalls_detected += usize::from(report.stall_detected);
        abandoned_items += report.abandoned_items;
        assert_eq!(
            report.completed_items + report.abandoned_items,
            32,
            "watchdog accounting lost items (job {job}, seed {seed})"
        );
    }

    let marker = format!("chaos-poison-{seed}");
    // The poison is deliberate: silence the default hook so the run's
    // output stays clean, then restore it.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let poisoned = catch_unwind(AssertUnwindSafe(|| {
        par_shards_deadline(8, 1, None, |range| {
            if range.contains(&3) {
                panic!("{}", marker.clone());
            }
        });
    }))
    .is_err();
    std::panic::set_hook(hook);
    let quarantined = poisoned
        && quarantine_log()
            .iter()
            .any(|record| record.message.contains(&marker));
    assert!(
        quarantined,
        "poisoned job missing from the quarantine registry (seed {seed})"
    );
    WatchdogOutcome {
        jobs,
        expired_jobs,
        stalls_detected,
        abandoned_items,
        quarantined,
    }
}

/// Runs one fault mix through the kill matrix.
fn run_case(
    ctx: &Ctx<'_>,
    streams: &[Vec<ScanEvent>],
    name: &str,
    spec: FaultPlanSpec,
    seed: u64,
) -> ChaosCase {
    let mut arrivals_total = 0;
    let mut stats_total = ReorderStats::default();
    let mut digest = FNV_OFFSET;
    let mut kill_points = 0;
    let mut recoveries_resumed = 0;
    // `kill_and_recover` panics on any divergence, so reaching the
    // artifact at all means every kill point was bit-identical.
    let bit_identical = true;
    for (trace, events) in streams.iter().take(KILL_TRACES).enumerate() {
        let arrivals = arrival_stream(events, trace as u64, &spec);
        arrivals_total += arrivals.len();
        let (reference, reference_state, stats) = stream_all(ctx, &arrivals, &spec, seed);
        stats_total.delivered += stats.delivered;
        stats_total.duplicates_dropped += stats.duplicates_dropped;
        stats_total.late_dropped += stats.late_dropped;
        stats_total.gaps_skipped += stats.gaps_skipped;
        digest_estimates(&mut digest, &reference);
        // Halfway and near the end: late enough that at least one
        // checkpoint usually exists (resumed recovery), while the
        // from-scratch replay path is still exercised by short traces.
        for kill in [arrivals.len() / 2, arrivals.len().saturating_sub(2)] {
            let kill = kill.max(1).min(arrivals.len());
            kill_points += 1;
            let resumed = kill_and_recover(
                ctx,
                &arrivals,
                kill,
                &reference,
                &reference_state,
                &spec,
                seed,
                &format!("{name}_{trace}_{kill}"),
            );
            recoveries_resumed += usize::from(resumed);
        }
    }
    ChaosCase {
        name: name.to_string(),
        spec,
        traces: streams.len().min(KILL_TRACES),
        arrivals: arrivals_total,
        delivered: stats_total.delivered,
        duplicates_dropped: stats_total.duplicates_dropped,
        late_dropped: stats_total.late_dropped,
        gaps_skipped: stats_total.gaps_skipped,
        kill_points,
        recoveries_resumed,
        digest: format!("{digest:016x}"),
        recovered_bit_identical: bit_identical,
    }
}

/// Runs the full chaos suite at the paper's 6-AP setting.
pub fn run(world: &EvalWorld, seed: u64) -> Chaos {
    let n_aps = 6;
    let setting = world.setting(n_aps);
    let config = MoLocConfig::paper();
    let index = FingerprintIndex::build(&setting.fdb);
    let kernel = build_kernel(&setting.motion_db, &config);
    let ctx = Ctx {
        index: &index,
        kernel: &kernel,
        config,
        session: SessionConfig {
            reorder_capacity: 8,
            checkpoint_interval: 2,
            fsync: false,
        },
    };

    let streams: Vec<Vec<ScanEvent>> = (0..world.corpus.test.len())
        .map(|t| event_stream(world, &setting, &index, t))
        .collect();

    let zero_fault_matches_batch = zero_fault_equivalence(&ctx, &streams, seed);

    let cases = vec![
        run_case(
            &ctx,
            &streams,
            "reorder",
            FaultPlanSpec {
                scan_reorder: Some(ScanReorder {
                    rate: 0.35,
                    window: 4,
                    seed,
                }),
                ..FaultPlanSpec::default()
            },
            seed,
        ),
        run_case(
            &ctx,
            &streams,
            "reorder_dup_loss",
            FaultPlanSpec {
                scan_reorder: Some(ScanReorder {
                    rate: 0.35,
                    window: 4,
                    seed,
                }),
                scan_duplicate: Some(ScanDuplicate {
                    rate: 0.2,
                    seed: seed ^ 0x0044_5550,
                }),
                scan_loss: Some(ScanLoss {
                    rate: 0.1,
                    seed: seed ^ 0x004C_4F53,
                }),
                ..FaultPlanSpec::default()
            },
            seed,
        ),
        run_case(
            &ctx,
            &streams,
            "burst",
            FaultPlanSpec {
                scan_reorder: Some(ScanReorder {
                    rate: 0.6,
                    window: 8,
                    seed: seed ^ 0x0042_5253,
                }),
                scan_duplicate: Some(ScanDuplicate {
                    rate: 0.3,
                    seed: seed ^ 0x0044_5551,
                }),
                scan_loss: Some(ScanLoss {
                    rate: 0.25,
                    seed: seed ^ 0x004C_4F54,
                }),
                ..FaultPlanSpec::default()
            },
            seed,
        ),
    ];

    let (corruption_detected, corruption_recovered_bit_identical) =
        corruption_is_loud(&ctx, &streams[0], seed);

    let watchdog = watchdog_outcomes(seed);

    Chaos {
        seed,
        n_aps,
        zero_fault_matches_batch,
        corruption_detected,
        corruption_recovered_bit_identical,
        cases,
        watchdog,
    }
}

/// Renders the chaos results as markdown.
pub fn render(c: &Chaos) -> String {
    let mut out = format!(
        "# Chaos: crash-safe streaming under stream faults ({} APs, seed {})\n\n",
        c.n_aps, c.seed
    );
    out.push_str(&format!(
        "- zero-fault stream ≡ batch: {}\n- checkpoint corruption detected: {} \
         (recovery bit-identical: {})\n- watchdog: {}/{} jobs expired, {} stalls flagged, \
         {} items abandoned, quarantine capture: {}\n\n",
        c.zero_fault_matches_batch,
        c.corruption_detected,
        c.corruption_recovered_bit_identical,
        c.watchdog.expired_jobs,
        c.watchdog.jobs,
        c.watchdog.stalls_detected,
        c.watchdog.abandoned_items,
        c.watchdog.quarantined,
    ));
    let rows: Vec<Vec<String>> = c
        .cases
        .iter()
        .map(|case| {
            vec![
                case.name.clone(),
                case.spec.active().join("+"),
                format!("{}", case.arrivals),
                format!("{}", case.delivered),
                format!("{}", case.duplicates_dropped),
                format!("{}", case.late_dropped),
                format!("{}", case.gaps_skipped),
                format!("{}/{}", case.recoveries_resumed, case.kill_points),
                if case.recovered_bit_identical {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                },
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "Case",
            "Faults",
            "Arrivals",
            "Delivered",
            "Dups",
            "Late",
            "Gaps",
            "Resumed",
            "Bit-identical",
        ],
        &rows,
    ));
    out.push('\n');
    out
}
