//! Experiment runners, one per paper artifact.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig4`] | Fig. 4 — acceleration signature of 10 steps |
//! | [`fig6`] | Fig. 6 — motion-database direction/offset error CDFs |
//! | [`fig7`] | Fig. 7 — overall error CDFs, MoLoc vs WiFi, 4/5/6 APs |
//! | [`fig8`] | Fig. 8 — error CDFs at large-error (twin) locations |
//! | [`table1`] | Table I — convergence statistics |
//! | [`ablations`] | the design-choice ablations listed in DESIGN.md |
//! | [`baselines`] | extension: MoLoc vs Horus vs HMM vs particle filter vs WiFi NN |
//! | [`seeds`] | extension: seed-sensitivity sweep of the headline comparison |
//! | [`robustness`] | extension: fault-injection sweeps and the degradation ladder |
//! | [`chaos`] | extension: crash-safe streaming under stream faults, kill matrices, watchdogs |
//! | [`drift`] | extension: static vs dynamic database under live crowdsourced updates |

pub mod ablations;
pub mod baselines;
pub mod chaos;
pub mod drift;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod robustness;
pub mod seeds;
pub mod table1;
