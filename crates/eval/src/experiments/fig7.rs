//! Fig. 7: overall localization accuracy, MoLoc vs WiFi, at 4/5/6 APs.
//!
//! The paper's headline result: MoLoc reaches 75/82/86 % accuracy where
//! plain WiFi fingerprinting reaches 31/36/43 %, and MoLoc's maximum
//! error drops by ≈ 4 m.

use crate::cache::ScenarioCache;
use crate::metrics::{error_ecdf, flatten, summarize, LocalizationSummary};
use crate::pipeline::{
    localize_moloc, localize_moloc_with, localize_wifi, EvalWorld, PassOutcome, Setting,
};
use crate::report;
use moloc_core::config::MoLocConfig;
use moloc_stats::ecdf::Ecdf;

/// One method's results at one AP count.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Summary statistics.
    pub summary: LocalizationSummary,
    /// The error CDF.
    pub ecdf: Ecdf,
    /// Raw per-trace outcomes (consumed by Fig. 8 and Table I).
    pub outcomes: Vec<Vec<PassOutcome>>,
}

fn method_result(outcomes: Vec<Vec<PassOutcome>>) -> MethodResult {
    let flat = flatten(&outcomes);
    MethodResult {
        summary: summarize(&flat),
        ecdf: error_ecdf(&flat),
        outcomes,
    }
}

/// Both methods at one AP count.
#[derive(Debug, Clone, PartialEq)]
pub struct ApSettingResult {
    /// Number of APs (4, 5, or 6).
    pub n_aps: usize,
    /// The WiFi fingerprinting baseline.
    pub wifi: MethodResult,
    /// MoLoc.
    pub moloc: MethodResult,
}

/// The full Fig. 7 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// Results per AP count, ascending.
    pub settings: Vec<ApSettingResult>,
}

/// Runs one AP setting with an explicit MoLoc configuration.
pub fn run_setting(world: &EvalWorld, setting: &Setting, config: MoLocConfig) -> ApSettingResult {
    ApSettingResult {
        n_aps: setting.n_aps,
        wifi: method_result(localize_wifi(world, setting)),
        moloc: method_result(localize_moloc(world, setting, config)),
    }
}

/// Runs the full experiment at the paper's 4/5/6-AP settings.
///
/// AP counts fan out on the [`crate::parallel`] worker pool (nested
/// inside, each `localize_*` call fans its traces out on the same
/// pool).
pub fn run(world: &EvalWorld) -> Fig7 {
    run_cached(&ScenarioCache::new(world))
}

/// Runs the full experiment against a [`ScenarioCache`]: the per-AP
/// settings, fingerprint indexes, and motion kernels are fetched from
/// (or built into) the cache, so a `repro` run that also produces
/// Fig. 6, Fig. 8, or Table I builds each artifact exactly once.
pub fn run_cached(cache: &ScenarioCache<'_>) -> Fig7 {
    let world = cache.world();
    let config = MoLocConfig::paper();
    // Warm all three settings concurrently before the per-AP fan-out:
    // the expensive builds overlap instead of serializing behind the
    // first AP count's localization work.
    cache.prewarm(&[4, 5, 6]);
    let settings = crate::parallel::par_map(&[4, 5, 6], |&n| {
        let artifacts = cache.artifacts(n);
        let kernel = cache.kernel(n, &config);
        ApSettingResult {
            n_aps: artifacts.setting.n_aps,
            wifi: method_result(localize_wifi(world, &artifacts.setting)),
            moloc: method_result(localize_moloc_with(
                world,
                &artifacts.setting,
                config,
                &artifacts.index,
                &kernel,
            )),
        }
    });
    Fig7 { settings }
}

/// Renders the per-AP comparisons.
pub fn render(fig: &Fig7) -> String {
    let mut out = String::from("# Fig. 7: overall localization performance, MoLoc vs WiFi\n\n");
    let rows: Vec<Vec<String>> = fig
        .settings
        .iter()
        .flat_map(|s| {
            [
                vec![
                    format!("{}-AP WiFi", s.n_aps),
                    format!("{:.0}%", s.wifi.summary.accuracy * 100.0),
                    format!("{:.2}", s.wifi.summary.mean_error_m),
                    format!("{:.2}", s.wifi.summary.max_error_m),
                ],
                vec![
                    format!("{}-AP MoLoc", s.n_aps),
                    format!("{:.0}%", s.moloc.summary.accuracy * 100.0),
                    format!("{:.2}", s.moloc.summary.mean_error_m),
                    format!("{:.2}", s.moloc.summary.max_error_m),
                ],
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["Setting", "Accuracy", "Mean err (m)", "Max err (m)"],
        &rows,
    ));
    out.push('\n');
    for s in &fig.settings {
        out.push_str(&report::cdf_comparison(
            &format!("Fig. 7 {}-AP error CDF", s.n_aps),
            &[("MoLoc", &s.moloc.ecdf), ("WiFi", &s.wifi.ecdf)],
            16,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moloc_beats_wifi_on_small_world() {
        let world = EvalWorld::small(3);
        let setting = world.setting(6);
        let result = run_setting(&world, &setting, MoLocConfig::paper());
        assert!(
            result.moloc.summary.accuracy > result.wifi.summary.accuracy,
            "MoLoc {:.2} should beat WiFi {:.2}",
            result.moloc.summary.accuracy,
            result.wifi.summary.accuracy
        );
    }

    #[test]
    fn outcomes_cover_all_test_passes() {
        let world = EvalWorld::small(3);
        let setting = world.setting(5);
        let result = run_setting(&world, &setting, MoLocConfig::paper());
        let expected: usize = world.corpus.test.iter().map(|t| t.pass_count()).sum();
        assert_eq!(result.wifi.summary.passes, expected);
        assert_eq!(result.moloc.summary.passes, expected);
    }

    #[test]
    fn cached_run_matches_uncached_setting_run() {
        let world = EvalWorld::small(5);
        let cache = ScenarioCache::new(&world);
        let fig = run_cached(&cache);
        assert_eq!(fig.settings.len(), 3);
        // One setting and one kernel built per AP count, nothing more.
        assert_eq!(cache.setting_builds(), 3);
        assert_eq!(cache.kernel_builds(), 3);
        // The cached path reproduces the standalone path exactly
        // (PartialEq covers every outcome, summary, and CDF point).
        let six = fig.settings.iter().find(|s| s.n_aps == 6).unwrap();
        let direct = run_setting(&world, &world.setting(6), MoLocConfig::paper());
        assert_eq!(*six, direct);
    }

    #[test]
    fn render_contains_all_settings() {
        let world = EvalWorld::small(4);
        let setting = world.setting(6);
        let fig = Fig7 {
            settings: vec![run_setting(&world, &setting, MoLocConfig::paper())],
        };
        let text = render(&fig);
        assert!(text.contains("6-AP WiFi"));
        assert!(text.contains("6-AP MoLoc"));
        assert!(text.contains("error CDF"));
    }
}
