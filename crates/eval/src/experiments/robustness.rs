//! Robustness experiment: localization quality under injected faults.
//!
//! Sweeps three fault axes — AP dropout rate, RLM corruption fraction,
//! and sensor-gap length — and reports median/mean error, accuracy, and
//! how often each rung of the degradation ladder fired. The zero
//! intensity of every axis runs the injectors at exact no-op settings,
//! so those points double as a bit-identity check against the clean
//! pipeline. Results serialize to `ROBUST_pr3.json` and gate CI via the
//! `robust_check` binary.

use crate::metrics::{flatten, summarize};
use crate::parallel::par_run;
use crate::pipeline::{analyze_trace_indexed, EvalWorld, PassOutcome, Setting};
use crate::report;
use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::error::DegradationFlags;
use moloc_core::matching::build_kernel;
use moloc_faults::plan::{apply_to_trace, FaultPlan};
use moloc_faults::{ApDropout, RlmCorruption, SensorGap};
use moloc_fingerprint::index::FingerprintIndex;
use moloc_sensors::steps::StepDetector;
use serde::{Deserialize, Serialize};

/// How often each degradation rung fired, over all scored passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationCounts {
    /// Total scored passes.
    pub passes: usize,
    /// Passes localized through the masked (missing-AP) metric.
    pub masked: usize,
    /// Passes where every AP was missing (uniform fingerprint prior).
    pub no_observed: usize,
    /// Passes that fell back from fusion to the fingerprint-only prior.
    pub motion_fallback: usize,
    /// Passes that reset the candidate distribution and history.
    pub candidate_reset: usize,
}

impl DegradationCounts {
    fn record(&mut self, flags: DegradationFlags) {
        self.passes += 1;
        if flags.contains(DegradationFlags::MASKED_QUERY) {
            self.masked += 1;
        }
        if flags.contains(DegradationFlags::NO_OBSERVED_APS) {
            self.no_observed += 1;
        }
        if flags.contains(DegradationFlags::MOTION_FALLBACK) {
            self.motion_fallback += 1;
        }
        if flags.contains(DegradationFlags::CANDIDATE_RESET) {
            self.candidate_reset += 1;
        }
    }

    fn merge(&mut self, other: &DegradationCounts) {
        self.passes += other.passes;
        self.masked += other.masked;
        self.no_observed += other.no_observed;
        self.motion_fallback += other.motion_fallback;
        self.candidate_reset += other.candidate_reset;
    }

    fn share(count: usize, passes: usize) -> f64 {
        if passes == 0 {
            0.0
        } else {
            count as f64 / passes as f64
        }
    }
}

/// Runs MoLoc over the test traces with a fault plan applied to every
/// pipeline input: the fingerprint database, the motion database, and
/// each test trace's scans and sensor streams.
///
/// Every step asserts the invariant the degradation layer guarantees —
/// a finite, normalized posterior — so any fault combination that
/// produced NaN or unnormalized mass fails loudly here instead of
/// skewing the sweep.
pub fn localize_faulted(
    world: &EvalWorld,
    setting: &Setting,
    config: MoLocConfig,
    plan: &dyn FaultPlan,
) -> (Vec<Vec<PassOutcome>>, DegradationCounts) {
    let fdb = plan.apply_fingerprint_db(setting.fdb.clone());
    let mut motion_db = setting.motion_db.clone();
    plan.apply_motion_db(&mut motion_db);
    let index = FingerprintIndex::build(&fdb);
    let kernel = build_kernel(&motion_db, &config);
    let detector = StepDetector::default();

    let per_trace = par_run(world.corpus.test.len(), |trace_index| {
        let mut trace = world.corpus.test[trace_index].clone();
        apply_to_trace(plan, trace_index as u64, &mut trace);
        let analysis = analyze_trace_indexed(
            &trace,
            &fdb,
            &index,
            &world.hall,
            &detector,
            setting.counting,
            setting.n_aps,
        );
        let mut engine = BatchLocalizer::new_with_index(&index, &kernel, config);
        let mut counts = DegradationCounts::default();
        let outcomes: Vec<PassOutcome> = trace
            .passes
            .iter()
            .zip(&trace.scans)
            .enumerate()
            .map(|(pass_index, (pass, scan))| {
                let motion = if pass_index == 0 {
                    None
                } else {
                    analysis.measurements[pass_index - 1]
                };
                let estimate = engine
                    .observe_slice(&scan[..setting.n_aps], motion)
                    .expect("query length matches database");
                counts.record(engine.last_flags());
                let posterior = engine.posterior();
                let total: f64 = posterior.iter().map(|(_, p)| p).sum();
                assert!(
                    posterior.iter().all(|(_, p)| p.is_finite() && *p >= 0.0)
                        && (total - 1.0).abs() < 1e-9,
                    "posterior not normalized under {} (trace {trace_index}, pass \
                     {pass_index}): total {total}",
                    plan.name(),
                );
                PassOutcome {
                    trace_index,
                    pass_index,
                    truth: pass.location,
                    estimate,
                    error_m: world.hall.grid.distance(pass.location, estimate),
                }
            })
            .collect();
        (outcomes, counts)
    });

    let mut counts = DegradationCounts::default();
    let mut outcomes = Vec::with_capacity(per_trace.len());
    for (trace_outcomes, trace_counts) in per_trace {
        counts.merge(&trace_counts);
        outcomes.push(trace_outcomes);
    }
    (outcomes, counts)
}

/// One point of a fault-intensity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Which fault axis was swept (`ap_dropout`, `rlm_corruption`,
    /// `sensor_gap`).
    pub axis: String,
    /// Axis-specific intensity: dropout rate, corruption fraction, or
    /// gap length in seconds.
    pub intensity: f64,
    /// Scored passes.
    pub passes: usize,
    /// Exact-hit fraction.
    pub accuracy: f64,
    /// Median localization error in meters.
    pub median_error_m: f64,
    /// Mean localization error in meters.
    pub mean_error_m: f64,
    /// Maximum localization error in meters.
    pub max_error_m: f64,
    /// Fraction of passes that used the masked metric.
    pub masked_share: f64,
    /// Fraction of passes that fell back to fingerprint-only.
    pub motion_fallback_share: f64,
    /// Fraction of passes that reset the candidate distribution.
    pub candidate_reset_share: f64,
}

/// The full robustness sweep (serialized as `ROBUST_pr3.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Robustness {
    /// World seed.
    pub seed: u64,
    /// AP count of the evaluated setting.
    pub n_aps: usize,
    /// Sweep points, grouped by axis in sweep order.
    pub points: Vec<RobustnessPoint>,
}

fn point(
    axis: &str,
    intensity: f64,
    outcomes: &[Vec<PassOutcome>],
    counts: &DegradationCounts,
) -> RobustnessPoint {
    let summary = summarize(&flatten(outcomes));
    RobustnessPoint {
        axis: axis.to_string(),
        intensity,
        passes: summary.passes,
        accuracy: summary.accuracy,
        median_error_m: summary.median_error_m,
        mean_error_m: summary.mean_error_m,
        max_error_m: summary.max_error_m,
        masked_share: DegradationCounts::share(counts.masked, counts.passes),
        motion_fallback_share: DegradationCounts::share(counts.motion_fallback, counts.passes),
        candidate_reset_share: DegradationCounts::share(counts.candidate_reset, counts.passes),
    }
}

/// Runs the three-axis sweep at the paper's 6-AP setting.
///
/// `seed` keys the fault injectors (offset per axis so the axes draw
/// independent randomness); the world itself is the caller's.
pub fn run(world: &EvalWorld, seed: u64) -> Robustness {
    let n_aps = 6;
    let setting = world.setting(n_aps);
    let config = MoLocConfig::paper();
    let mut points = Vec::new();

    for &rate in &[0.0, 0.1, 0.25, 0.5] {
        let plan = ApDropout { rate, seed };
        let (outcomes, counts) = localize_faulted(world, &setting, config, &plan);
        points.push(point("ap_dropout", rate, &outcomes, &counts));
    }
    for &fraction in &[0.0, 0.25, 0.5, 0.9] {
        let plan = RlmCorruption {
            fraction,
            seed: seed ^ 0x0052_4C4D,
        };
        let (outcomes, counts) = localize_faulted(world, &setting, config, &plan);
        points.push(point("rlm_corruption", fraction, &outcomes, &counts));
    }
    for &gap_s in &[0.0, 1.0, 3.0, 6.0] {
        let plan = SensorGap {
            gaps_per_trace: 2,
            gap_s,
            seed: seed ^ 0x0047_4150,
        };
        let (outcomes, counts) = localize_faulted(world, &setting, config, &plan);
        points.push(point("sensor_gap", gap_s, &outcomes, &counts));
    }

    Robustness {
        seed,
        n_aps,
        points,
    }
}

/// Renders the sweep as a markdown table.
pub fn render(r: &Robustness) -> String {
    let mut out = format!(
        "# Robustness: fault-intensity sweeps ({} APs, seed {})\n\n",
        r.n_aps, r.seed
    );
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.axis.clone(),
                format!("{:.2}", p.intensity),
                format!("{:.0}%", p.accuracy * 100.0),
                format!("{:.2}", p.median_error_m),
                format!("{:.2}", p.mean_error_m),
                format!("{:.0}%", p.masked_share * 100.0),
                format!("{:.0}%", p.motion_fallback_share * 100.0),
                format!("{:.0}%", p.candidate_reset_share * 100.0),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "Fault axis",
            "Intensity",
            "Accuracy",
            "Median err (m)",
            "Mean err (m)",
            "Masked",
            "FP-only",
            "Reset",
        ],
        &rows,
    ));
    out.push('\n');
    out
}
