//! Extension experiment: MoLoc against the wider baseline field.
//!
//! The paper compares against plain WiFi fingerprinting only; its
//! related-work section mentions Horus-style probabilistic
//! fingerprinting and accelerometer-assisted HMMs. This experiment runs
//! all four on identical data:
//!
//! * **WiFi NN** — Eq. 2 (the paper's baseline);
//! * **Horus** — per-AP Gaussian maximum likelihood (fingerprint-only);
//! * **HMM (Viterbi)** — offline decoding with the same motion
//!   evidence MoLoc uses, over the full state space;
//! * **MoLoc** — the paper's online tracker.
//!
//! Besides accuracy, it reports wall time per 1000 localizations — the
//! computational-overhead argument of Sec. V made measurable.

use crate::metrics::{flatten, summarize};
use crate::parallel::par_run;
use crate::pipeline::{
    analyze_trace, localize_moloc, localize_wifi, EvalWorld, PassOutcome, Setting,
};
use crate::report;
use moloc_core::config::MoLocConfig;
use moloc_core::particle::{ParticleConfig, ParticleLocalizer};
use moloc_core::viterbi::ViterbiLocalizer;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::horus::HorusLocalizer;
use moloc_sensors::steps::StepDetector;
use std::time::Instant;

/// One method's row.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Method name.
    pub name: &'static str,
    /// Exact-location accuracy.
    pub accuracy: f64,
    /// Mean error, meters.
    pub mean_error_m: f64,
    /// Max error, meters.
    pub max_error_m: f64,
    /// Wall time per 1000 localizations, milliseconds.
    pub ms_per_1000: f64,
}

/// The comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// AP count used.
    pub n_aps: usize,
    /// Rows in presentation order.
    pub rows: Vec<BaselineRow>,
}

fn row(name: &'static str, outcomes: &[Vec<PassOutcome>], elapsed_s: f64) -> BaselineRow {
    let flat = flatten(outcomes);
    let summary = summarize(&flat);
    BaselineRow {
        name,
        accuracy: summary.accuracy,
        mean_error_m: summary.mean_error_m,
        max_error_m: summary.max_error_m,
        ms_per_1000: elapsed_s * 1000.0 * 1000.0 / flat.len() as f64,
    }
}

/// Runs all four methods over the world's test traces.
pub fn run(world: &EvalWorld, setting: &Setting) -> BaselineComparison {
    let n = setting.n_aps;

    // WiFi NN.
    let t = Instant::now();
    let wifi = localize_wifi(world, setting);
    let wifi_s = t.elapsed().as_secs_f64();

    // Horus, trained on the same survey split.
    let horus_model = HorusLocalizer::train(world.survey.locations().iter().map(|loc| {
        (
            loc.location,
            loc.fingerprint
                .iter()
                .map(|scan| Fingerprint::new(scan.iter().take(n).map(|d| d.value()).collect()))
                .collect::<Vec<_>>(),
        )
    }))
    .expect("survey covers every location");
    let t = Instant::now();
    let horus: Vec<Vec<PassOutcome>> = par_run(world.corpus.test.len(), |trace_index| {
        let trace = &world.corpus.test[trace_index];
        trace
            .passes
            .iter()
            .zip(&trace.scans)
            .enumerate()
            .map(|(pass_index, (pass, scan))| {
                let estimate = horus_model
                    .localize(&Fingerprint::new(scan[..n].to_vec()))
                    .expect("query length matches");
                PassOutcome {
                    trace_index,
                    pass_index,
                    truth: pass.location,
                    estimate,
                    error_m: world.hall.grid.distance(pass.location, estimate),
                }
            })
            .collect()
    });
    let horus_s = t.elapsed().as_secs_f64();

    // HMM (Viterbi) with MoLoc's motion evidence.
    let detector = StepDetector::default();
    let viterbi = ViterbiLocalizer::new(&setting.fdb, &setting.motion_db, MoLocConfig::paper());
    let t = Instant::now();
    let hmm: Vec<Vec<PassOutcome>> = par_run(world.corpus.test.len(), |trace_index| {
        let trace = &world.corpus.test[trace_index];
        let analysis = analyze_trace(
            trace,
            &setting.fdb,
            &world.hall,
            &detector,
            setting.counting,
            n,
        );
        let queries: Vec<_> = trace
            .scans
            .iter()
            .enumerate()
            .map(|(i, scan)| {
                let motion = if i == 0 {
                    None
                } else {
                    analysis.measurements[i - 1]
                };
                (Fingerprint::new(scan[..n].to_vec()), motion)
            })
            .collect();
        let path = viterbi.localize_trace(&queries).expect("valid trace");
        trace
            .passes
            .iter()
            .zip(path)
            .enumerate()
            .map(|(pass_index, (pass, estimate))| PassOutcome {
                trace_index,
                pass_index,
                truth: pass.location,
                estimate,
                error_m: world.hall.grid.distance(pass.location, estimate),
            })
            .collect()
    });
    let hmm_s = t.elapsed().as_secs_f64();

    // Particle filter: continuous-position SMC with the same inputs.
    let t = Instant::now();
    let pf_outcomes: Vec<Vec<PassOutcome>> = par_run(world.corpus.test.len(), |trace_index| {
        let trace = &world.corpus.test[trace_index];
        let analysis = analyze_trace(
            trace,
            &setting.fdb,
            &world.hall,
            &detector,
            setting.counting,
            n,
        );
        // Each trace's filter derives its RNG from its own index, so
        // the parallel fan-out reproduces the serial outcomes.
        let config = ParticleConfig {
            seed: trace_index as u64,
            ..ParticleConfig::default()
        };
        let mut pf = ParticleLocalizer::new(&setting.fdb, &world.hall.grid, config);
        trace
            .passes
            .iter()
            .zip(&trace.scans)
            .enumerate()
            .map(|(pass_index, (pass, scan))| {
                let motion = if pass_index == 0 {
                    None
                } else {
                    analysis.measurements[pass_index - 1]
                };
                let estimate = pf.observe(&Fingerprint::new(scan[..n].to_vec()), motion);
                PassOutcome {
                    trace_index,
                    pass_index,
                    truth: pass.location,
                    estimate,
                    error_m: world.hall.grid.distance(pass.location, estimate),
                }
            })
            .collect()
    });
    let pf_s = t.elapsed().as_secs_f64();

    // MoLoc.
    let t = Instant::now();
    let moloc = localize_moloc(world, setting, MoLocConfig::paper());
    let moloc_s = t.elapsed().as_secs_f64();

    BaselineComparison {
        n_aps: n,
        rows: vec![
            row("WiFi NN", &wifi, wifi_s),
            row("Horus", &horus, horus_s),
            row("HMM (Viterbi)", &hmm, hmm_s),
            row("Particle filter", &pf_outcomes, pf_s),
            row("MoLoc", &moloc, moloc_s),
        ],
    }
}

/// Renders the comparison table.
pub fn render(result: &BaselineComparison) -> String {
    let mut out = format!(
        "# Extension: baseline comparison at {} APs (test traces)\n",
        result.n_aps
    );
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.0}%", r.accuracy * 100.0),
                format!("{:.2}", r.mean_error_m),
                format!("{:.2}", r.max_error_m),
                format!("{:.2}", r.ms_per_1000),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "Method",
            "Accuracy",
            "Mean err (m)",
            "Max err (m)",
            "ms/1000 fixes",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_methods_report_and_motion_methods_lead() {
        let world = EvalWorld::small(31);
        let setting = world.setting(6);
        let result = run(&world, &setting);
        assert_eq!(result.rows.len(), 5);
        let get = |name: &str| {
            result
                .rows
                .iter()
                .find(|r| r.name == name)
                .expect("method present")
        };
        let wifi = get("WiFi NN");
        let moloc = get("MoLoc");
        let hmm = get("HMM (Viterbi)");
        assert!(
            moloc.accuracy > wifi.accuracy,
            "MoLoc {:.2} vs WiFi {:.2}",
            moloc.accuracy,
            wifi.accuracy
        );
        // The HMM decodes over the full state space; with a sparse
        // motion database it can trail the fingerprint baselines (one
        // of the paper's arguments against it), so only sanity-check
        // its output here.
        assert!((0.0..=1.0).contains(&hmm.accuracy));
        // All errors are grid-bounded.
        for r in &result.rows {
            assert!(r.max_error_m <= 40.0);
            assert!(r.ms_per_1000 >= 0.0);
        }
        let text = render(&result);
        assert!(text.contains("Horus"));
    }
}
