//! Drift experiment (DESIGN.md §17): a statically-deployed database
//! versus one that follows live crowdsourced updates.
//!
//! The deployment story behind the paper's Sec. IV-B: the operator
//! seeds the system with a *thin* site survey (a fraction of the full
//! 60-samples-per-location budget) plus the RLMs harvested from the
//! first few training walks, then keeps folding in the remaining
//! contributions as users walk — one published epoch per delta batch.
//! Two arms localize the same test corpus:
//!
//! * **static** — pinned to the epoch-0 seed database forever;
//! * **dynamic** — served from each published epoch in turn.
//!
//! Every published epoch is also checked against a from-scratch
//! rebuild over the merged delta sequence: the content digests must be
//! **bit-identical** (the `moloc-live` determinism contract), so the
//! sweep doubles as an end-to-end equivalence audit on real pipeline
//! data. Results serialize to `drift.json` via `repro --drift-out`.

use crate::metrics::{flatten, summarize};
use crate::parallel::par_run;
use crate::pipeline::{
    analyze_trace_indexed, localize_moloc, CountingMethod, EvalWorld, Setting,
};
use crate::report;
use moloc_core::config::MoLocConfig;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::index::FingerprintIndex;
use moloc_geometry::LocationId;
use moloc_live::{DbSnapshot, SnapshotPublisher, UpdateLog};
use moloc_motion::filter::SanitationConfig;
use moloc_motion::rlm::Rlm;
use moloc_sensors::steps::StepDetector;
use serde::{Deserialize, Serialize};

/// Survey samples per location in the epoch-0 seed database (the full
/// survey carries 60).
const INITIAL_SAMPLES: usize = 12;

/// Published delta batches after the seed.
const EPOCHS: usize = 3;

/// One evaluated arm: the test corpus localized against one database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftArm {
    /// Database epoch this arm served from (0 = the static seed).
    pub epoch: u64,
    /// Crowdsourced deltas folded into this epoch's publish (0 for the
    /// seed).
    pub deltas_folded: u64,
    /// Content digest of the served snapshot.
    pub digest: u64,
    /// Content digest of a from-scratch rebuild over the merged delta
    /// sequence — must equal `digest` (asserted during the run).
    pub rebuild_digest: u64,
    /// Scored passes.
    pub passes: usize,
    /// Exact-hit fraction.
    pub accuracy: f64,
    /// Median localization error in meters.
    pub median_error_m: f64,
    /// Mean localization error in meters.
    pub mean_error_m: f64,
}

/// The full drift sweep (serialized as `drift.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Drift {
    /// World seed.
    pub seed: u64,
    /// AP count of the evaluated setting.
    pub n_aps: usize,
    /// Survey samples per location in the seed database.
    pub initial_samples_per_location: usize,
    /// The static arm (epoch 0), evaluated once.
    pub static_arm: DriftArm,
    /// The dynamic arm, re-evaluated at every published epoch.
    pub dynamic_arms: Vec<DriftArm>,
}

/// One crowdsourced contribution, replayable into any [`UpdateLog`].
#[derive(Debug, Clone)]
enum Delta {
    Survey(LocationId, Vec<f64>),
    Rlm(Rlm),
}

fn apply(log: &mut UpdateLog, delta: &Delta) {
    match delta {
        Delta::Survey(id, values) => log
            .observe_survey_sample(*id, values)
            .expect("survey samples match the AP count"),
        Delta::Rlm(rlm) => {
            log.observe_rlm(*rlm);
        }
    }
}

/// RLMs harvested from the training walks exactly as
/// [`EvalWorld::setting_with`] harvests them, but against the *seed*
/// database — crowdsourced measurements come from the estimator that
/// is actually deployed. Returned per trace, in trace order.
fn harvest_rlms(
    world: &EvalWorld,
    fdb: &FingerprintDb,
    index: &FingerprintIndex,
    n_aps: usize,
) -> Vec<Vec<Rlm>> {
    let detector = StepDetector::default();
    par_run(world.corpus.train.len(), |i| {
        let trace = &world.corpus.train[i];
        let analysis = analyze_trace_indexed(
            trace,
            fdb,
            index,
            &world.hall,
            &detector,
            CountingMethod::Continuous,
            n_aps,
        );
        analysis
            .intervals
            .iter()
            .zip(&analysis.measurements)
            .filter_map(|(interval, measurement)| {
                let m = measurement.as_ref()?;
                let from = analysis.nn_estimates[interval.from_index];
                let to = analysis.nn_estimates[interval.to_index];
                if from == to {
                    return None;
                }
                Rlm::new(from, to, m.direction_deg, m.offset_m).ok()
            })
            .collect()
    })
}

/// A [`Setting`] view over a published snapshot, so the standard
/// evaluation pipeline serves it unchanged.
fn setting_view(snapshot: &DbSnapshot, n_aps: usize) -> Setting {
    Setting {
        n_aps,
        fdb: (*snapshot.fdb).clone(),
        motion_db: (*snapshot.motion_db).clone(),
        build_report: snapshot.motion_report,
        counting: CountingMethod::Continuous,
    }
}

fn evaluate(
    world: &EvalWorld,
    snapshot: &DbSnapshot,
    n_aps: usize,
    deltas_folded: u64,
    rebuild_digest: u64,
) -> DriftArm {
    let setting = setting_view(snapshot, n_aps);
    let outcomes = localize_moloc(world, &setting, MoLocConfig::paper());
    let summary = summarize(&flatten(&outcomes));
    DriftArm {
        epoch: snapshot.epoch,
        deltas_folded,
        digest: snapshot.digest(),
        rebuild_digest,
        passes: summary.passes,
        accuracy: summary.accuracy,
        median_error_m: summary.median_error_m,
        mean_error_m: summary.mean_error_m,
    }
}

fn fresh_log(world: &EvalWorld, n_aps: usize) -> UpdateLog {
    UpdateLog::new(n_aps, world.hall.map.clone(), SanitationConfig::paper())
        .expect("paper sanitation is valid")
}

/// Runs the drift sweep at the paper's 6-AP setting.
pub fn run(world: &EvalWorld, seed: u64) -> Drift {
    let n_aps = 6;

    // Partition the survey: the first INITIAL_SAMPLES per location
    // seed epoch 0, the rest split into EPOCHS contiguous batches.
    let mut seed_deltas: Vec<Delta> = Vec::new();
    let mut batches: Vec<Vec<Delta>> = vec![Vec::new(); EPOCHS];
    for loc in world.survey.locations() {
        for (i, scan) in loc.fingerprint.iter().enumerate() {
            let values: Vec<f64> = scan.iter().take(n_aps).map(|d| d.value()).collect();
            let delta = Delta::Survey(loc.location, values);
            if i < INITIAL_SAMPLES {
                seed_deltas.push(delta);
            } else {
                let batch = (i - INITIAL_SAMPLES) * EPOCHS
                    / (loc.fingerprint.len() - INITIAL_SAMPLES).max(1);
                batches[batch.min(EPOCHS - 1)].push(delta);
            }
        }
    }

    // Seed log and epoch-0 snapshot (survey only so far — the RLM
    // harvest needs the seed fingerprint database first).
    let mut log = fresh_log(world, n_aps);
    for delta in &seed_deltas {
        apply(&mut log, delta);
    }
    let survey_only = log
        .build_snapshot(0)
        .expect("seed survey covers every location");

    // Harvest RLMs with the seed estimator; the first share seeds
    // epoch 0, the rest drip in one trace group per batch.
    let per_trace = harvest_rlms(world, &survey_only.fdb, &survey_only.index, n_aps);
    let groups = EPOCHS + 1;
    for (i, trace_rlms) in per_trace.iter().enumerate() {
        let deltas = trace_rlms.iter().map(|r| Delta::Rlm(*r));
        if i % groups == 0 {
            seed_deltas.extend(deltas);
        } else {
            batches[i % groups - 1].extend(deltas);
        }
    }
    let mut log = fresh_log(world, n_aps);
    let mut merged = seed_deltas.clone();
    for delta in &merged {
        apply(&mut log, delta);
    }
    let publisher = SnapshotPublisher::new(
        log.build_snapshot(0).expect("seed snapshot builds"),
    );
    log.mark_published();

    let epoch0 = publisher.snapshot();
    let static_arm = evaluate(world, &epoch0, n_aps, 0, epoch0.digest());

    // Publish one epoch per batch; audit each against a from-scratch
    // rebuild and evaluate the dynamic arm on it.
    let mut dynamic_arms = Vec::with_capacity(EPOCHS);
    for batch in &batches {
        for delta in batch {
            apply(&mut log, delta);
            merged.push(delta.clone());
        }
        let published = publisher.publish(&mut log).expect("publish succeeds");
        assert!(published.published, "every batch carries deltas");

        let mut rebuild = fresh_log(world, n_aps);
        for delta in &merged {
            apply(&mut rebuild, delta);
        }
        let rebuild_digest = rebuild
            .build_snapshot(0)
            .expect("rebuild succeeds")
            .digest();
        let snapshot = publisher.snapshot();
        assert_eq!(
            snapshot.digest(),
            rebuild_digest,
            "epoch {} diverged from the from-scratch rebuild",
            published.epoch,
        );
        dynamic_arms.push(evaluate(
            world,
            &snapshot,
            n_aps,
            published.deltas_folded,
            rebuild_digest,
        ));
    }

    Drift {
        seed,
        n_aps,
        initial_samples_per_location: INITIAL_SAMPLES,
        static_arm,
        dynamic_arms,
    }
}

/// Renders the sweep as a markdown table.
pub fn render(d: &Drift) -> String {
    let mut out = format!(
        "# Drift: static vs dynamic database ({} APs, seed {}, {} seed samples/location)\n\n",
        d.n_aps, d.seed, d.initial_samples_per_location
    );
    let row = |arm: &DriftArm, label: &str| {
        vec![
            label.to_string(),
            arm.epoch.to_string(),
            arm.deltas_folded.to_string(),
            format!("{:.0}%", arm.accuracy * 100.0),
            format!("{:.2}", arm.median_error_m),
            format!("{:.2}", arm.mean_error_m),
            if arm.digest == arm.rebuild_digest {
                "ok".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]
    };
    let mut rows = vec![row(&d.static_arm, "static")];
    for arm in &d.dynamic_arms {
        rows.push(row(arm, "dynamic"));
    }
    out.push_str(&report::table(
        &[
            "Arm",
            "Epoch",
            "Deltas",
            "Accuracy",
            "Median err (m)",
            "Mean err (m)",
            "Rebuild digest",
        ],
        &rows,
    ));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_sweep_publishes_audited_epochs() {
        let world = EvalWorld::small(7);
        let drift = run(&world, 7);
        assert_eq!(drift.static_arm.epoch, 0);
        assert_eq!(drift.dynamic_arms.len(), EPOCHS);
        for (i, arm) in drift.dynamic_arms.iter().enumerate() {
            assert_eq!(arm.epoch, i as u64 + 1);
            assert!(arm.deltas_folded > 0);
            assert_eq!(arm.digest, arm.rebuild_digest);
            assert_eq!(arm.passes, drift.static_arm.passes);
        }
        // Round-trips through the artifact schema.
        let json = serde_json::to_string(&drift).expect("serializes");
        let back: Drift = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, drift);
    }
}
