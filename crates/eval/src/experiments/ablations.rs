//! Ablations of MoLoc's design choices (DESIGN.md §4).
//!
//! * [`csc_vs_dsc`] — the paper's Continuous Step Counting vs the
//!   discrete baseline (Sec. IV-B1's motivation).
//! * [`sanitation`] — data sanitation on vs off (Sec. IV-B2).
//! * [`k_sweep`] — candidate-set size.
//! * [`window_sweep`] — discretization windows α and β (Sec. VI-B2).
//! * [`map_db`] — crowdsourced vs map-derived motion database
//!   (Sec. IV-A's consistency principle).

use crate::cache::ScenarioCache;
use crate::experiments::fig6;
use crate::metrics::{flatten, summarize};
use crate::parallel::par_map;
use crate::pipeline::{analyze_trace, localize_moloc_with, CountingMethod, EvalWorld};
use crate::report;
use moloc_core::config::MoLocConfig;
use moloc_motion::filter::SanitationConfig;
use moloc_motion::map_based::{from_coordinates, MapBasedConfig};
use moloc_sensors::steps::StepDetector;
use moloc_sensors::stride::offset_m;
use moloc_stats::ecdf::Ecdf;

/// Offset-estimation errors of the two step-counting methods.
#[derive(Debug, Clone, PartialEq)]
pub struct CscVsDsc {
    /// |estimated − true| walked distance with CSC, meters.
    pub csc_errors: Ecdf,
    /// Same with DSC.
    pub dsc_errors: Ecdf,
}

/// Compares CSC and DSC offset errors over every training interval.
/// Traces fan out on the [`crate::parallel`] worker pool; per-trace
/// error vectors merge back in trace order.
pub fn csc_vs_dsc(world: &EvalWorld) -> CscVsDsc {
    let detector = StepDetector::default();
    let per_trace = par_map(&world.corpus.train, |trace| {
        let step_length = trace.user.step_length_m();
        let intervals = moloc_mobility::intervals::measure_intervals(trace, &detector);
        let (mut csc, mut dsc) = (Vec::new(), Vec::new());
        for interval in &intervals {
            let truth = world.hall.grid.distance(
                trace.passes[interval.from_index].location,
                trace.passes[interval.to_index].location,
            );
            csc.push((offset_m(interval.steps_csc, step_length) - truth).abs());
            dsc.push((offset_m(interval.steps_dsc, step_length) - truth).abs());
        }
        (csc, dsc)
    });
    let (mut csc, mut dsc) = (Vec::new(), Vec::new());
    for (c, d) in per_trace {
        csc.extend(c);
        dsc.extend(d);
    }
    CscVsDsc {
        csc_errors: Ecdf::from_samples(csc),
        dsc_errors: Ecdf::from_samples(dsc),
    }
}

/// Renders the CSC/DSC comparison.
pub fn render_csc_vs_dsc(result: &CscVsDsc) -> String {
    let mut out =
        String::from("# Ablation: Continuous vs Discrete Step Counting (offset error, m)\n");
    out.push_str(&report::cdf_comparison(
        "offset estimation error",
        &[("CSC", &result.csc_errors), ("DSC", &result.dsc_errors)],
        12,
    ));
    out.push_str(&format!(
        "mean: CSC {:.3} m, DSC {:.3} m\n",
        result.csc_errors.mean().unwrap_or(0.0),
        result.dsc_errors.mean().unwrap_or(0.0),
    ));
    out
}

/// One arm of the sanitation ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitationArm {
    /// Arm label.
    pub label: String,
    /// Motion-database validity (Fig. 6 metrics).
    pub validity: fig6::Fig6,
    /// MoLoc overall accuracy with this database.
    pub accuracy: f64,
    /// MoLoc mean error with this database.
    pub mean_error_m: f64,
}

/// Sanitation on vs off.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitationAblation {
    /// With the paper's two-level sanitation.
    pub with_sanitation: SanitationArm,
    /// With all filtering disabled.
    pub without_sanitation: SanitationArm,
}

fn sanitation_arm(
    cache: &ScenarioCache<'_>,
    n_aps: usize,
    config: SanitationConfig,
    label: &str,
) -> SanitationArm {
    let world = cache.world();
    let moloc_config = MoLocConfig::paper();
    let artifacts = cache.artifacts_with(n_aps, config, CountingMethod::Continuous);
    let kernel = cache.kernel_with(n_aps, config, CountingMethod::Continuous, &moloc_config);
    let outcomes = localize_moloc_with(
        world,
        &artifacts.setting,
        moloc_config,
        &artifacts.index,
        &kernel,
    );
    let flat = flatten(&outcomes);
    let summary = summarize(&flat);
    SanitationArm {
        label: label.to_string(),
        validity: fig6::run(world, &artifacts.setting),
        accuracy: summary.accuracy,
        mean_error_m: summary.mean_error_m,
    }
}

/// Runs the sanitation ablation at `n_aps` APs. The sanitized arm's
/// setting is shared with any other experiment on `cache` using the
/// paper configuration.
pub fn sanitation(cache: &ScenarioCache<'_>, n_aps: usize) -> SanitationAblation {
    SanitationAblation {
        with_sanitation: sanitation_arm(cache, n_aps, SanitationConfig::paper(), "sanitized"),
        without_sanitation: sanitation_arm(cache, n_aps, SanitationConfig::disabled(), "raw"),
    }
}

/// Renders the sanitation ablation.
pub fn render_sanitation(result: &SanitationAblation) -> String {
    let mut out = String::from("# Ablation: motion-database sanitation on vs off\n");
    let row = |arm: &SanitationArm| {
        vec![
            arm.label.clone(),
            format!("{}", arm.validity.pairs),
            format!(
                "{:.1}°",
                arm.validity.direction_errors.median().unwrap_or(f64::NAN)
            ),
            format!(
                "{:.2} m",
                arm.validity.offset_errors.median().unwrap_or(f64::NAN)
            ),
            format!("{:.0}%", arm.accuracy * 100.0),
            format!("{:.2} m", arm.mean_error_m),
        ]
    };
    out.push_str(&report::table(
        &[
            "Arm",
            "Pairs",
            "Med dir err",
            "Med off err",
            "MoLoc acc",
            "MoLoc mean err",
        ],
        &[
            row(&result.with_sanitation),
            row(&result.without_sanitation),
        ],
    ));
    out
}

/// Accuracy as a function of the candidate-set size `k`. The `k`
/// values fan out on the [`crate::parallel`] worker pool; since `k`
/// does not enter the kernel tables, every arm shares *one* cached
/// setting, index, and kernel.
pub fn k_sweep(cache: &ScenarioCache<'_>, n_aps: usize, ks: &[usize]) -> Vec<(usize, f64)> {
    let world = cache.world();
    let artifacts = cache.artifacts(n_aps);
    let kernel = cache.kernel(n_aps, &MoLocConfig::paper());
    // One k per shard: each arm localizes the full test corpus, so the
    // finest granularity load-balances best.
    crate::parallel::par_map_chunked(ks, 1, |&k| {
        let config = MoLocConfig {
            k,
            ..MoLocConfig::paper()
        };
        let outcomes =
            localize_moloc_with(world, &artifacts.setting, config, &artifacts.index, &kernel);
        (k, summarize(&flatten(&outcomes)).accuracy)
    })
}

/// Renders the k sweep.
pub fn render_k_sweep(result: &[(usize, f64)]) -> String {
    let mut out = String::from("# Ablation: candidate-set size k\n");
    let rows: Vec<Vec<String>> = result
        .iter()
        .map(|&(k, acc)| vec![k.to_string(), format!("{:.0}%", acc * 100.0)])
        .collect();
    out.push_str(&report::table(&["k", "MoLoc accuracy"], &rows));
    out
}

/// Accuracy across discretization windows: `alphas` at β = 1 m and
/// `betas` at α = 20°.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSweep {
    /// `(α, accuracy)` at β = 1 m.
    pub alpha: Vec<(f64, f64)>,
    /// `(β, accuracy)` at α = 20°.
    pub beta: Vec<(f64, f64)>,
}

/// Runs the window sweep. Each window setting fans out on the
/// [`crate::parallel`] worker pool; all arms share one cached setting
/// and index, while each distinct `(α, β)` gets its own cached kernel.
pub fn window_sweep(
    cache: &ScenarioCache<'_>,
    n_aps: usize,
    alphas: &[f64],
    betas: &[f64],
) -> WindowSweep {
    let world = cache.world();
    let artifacts = cache.artifacts(n_aps);
    let accuracy = |config: MoLocConfig| {
        let kernel = cache.kernel(n_aps, &config);
        summarize(&flatten(&localize_moloc_with(
            world,
            &artifacts.setting,
            config,
            &artifacts.index,
            &kernel,
        )))
        .accuracy
    };
    WindowSweep {
        alpha: par_map(alphas, |&a| {
            (
                a,
                accuracy(MoLocConfig {
                    alpha_deg: a,
                    ..MoLocConfig::paper()
                }),
            )
        }),
        beta: par_map(betas, |&b| {
            (
                b,
                accuracy(MoLocConfig {
                    beta_m: b,
                    ..MoLocConfig::paper()
                }),
            )
        }),
    }
}

/// Renders the window sweep.
pub fn render_window_sweep(result: &WindowSweep) -> String {
    let mut out = String::from("# Ablation: discretization windows\n");
    let rows: Vec<Vec<String>> = result
        .alpha
        .iter()
        .map(|&(a, acc)| vec![format!("α = {a}°"), format!("{:.0}%", acc * 100.0)])
        .chain(
            result
                .beta
                .iter()
                .map(|&(b, acc)| vec![format!("β = {b} m"), format!("{:.0}%", acc * 100.0)]),
        )
        .collect();
    out.push_str(&report::table(&["Window", "MoLoc accuracy"], &rows));
    out
}

/// Crowdsourced vs map-derived motion database.
#[derive(Debug, Clone, PartialEq)]
pub struct MapDbAblation {
    /// Accuracy with the crowdsourced database.
    pub crowdsourced_accuracy: f64,
    /// Accuracy with the coordinates-only database.
    pub map_based_accuracy: f64,
    /// Pairs in each database.
    pub crowdsourced_pairs: usize,
    /// Pairs in the map-based database (includes wall-separated pairs).
    pub map_based_pairs: usize,
}

/// Runs the motion-database-source ablation. The crowdsourced arm
/// comes from the cache; the map-based arm swaps the motion database
/// (and thus needs a fresh kernel) but reuses the cached fingerprint
/// index, which depends only on the survey.
pub fn map_db(cache: &ScenarioCache<'_>, n_aps: usize) -> MapDbAblation {
    let world = cache.world();
    let config = MoLocConfig::paper();
    let crowdsourced = cache.artifacts(n_aps);
    let crowd_kernel = cache.kernel(n_aps, &config);
    let crowd_outcomes = localize_moloc_with(
        world,
        &crowdsourced.setting,
        config,
        &crowdsourced.index,
        &crowd_kernel,
    );

    let mut map_setting = crowdsourced.setting.clone();
    map_setting.motion_db = from_coordinates(&world.hall.grid, MapBasedConfig::default());
    let map_kernel = moloc_core::matching::build_kernel(&map_setting.motion_db, &config);
    let map_outcomes = localize_moloc_with(
        world,
        &map_setting,
        config,
        &crowdsourced.index,
        &map_kernel,
    );

    MapDbAblation {
        crowdsourced_accuracy: summarize(&flatten(&crowd_outcomes)).accuracy,
        map_based_accuracy: summarize(&flatten(&map_outcomes)).accuracy,
        crowdsourced_pairs: crowdsourced.setting.motion_db.pair_count(),
        map_based_pairs: map_setting.motion_db.pair_count(),
    }
}

/// Renders the map-db ablation.
pub fn render_map_db(result: &MapDbAblation) -> String {
    let mut out = String::from("# Ablation: crowdsourced vs map-derived motion database\n");
    out.push_str(&report::table(
        &["Source", "Pairs", "MoLoc accuracy"],
        &[
            vec![
                "crowdsourced".into(),
                result.crowdsourced_pairs.to_string(),
                format!("{:.0}%", result.crowdsourced_accuracy * 100.0),
            ],
            vec![
                "map-based".into(),
                result.map_based_pairs.to_string(),
                format!("{:.0}%", result.map_based_accuracy * 100.0),
            ],
        ],
    ));
    out
}

/// Heading calibration quality over the corpus — how well the Zee-style
/// procedure recovers each trace's true placement offset.
pub fn heading_calibration_errors(cache: &ScenarioCache<'_>, n_aps: usize) -> Ecdf {
    let world = cache.world();
    let artifacts = cache.artifacts(n_aps);
    let setting = &artifacts.setting;
    let detector = StepDetector::default();
    let traces: Vec<_> = world.corpus.iter().collect();
    par_map(&traces, |trace| {
        let analysis = analyze_trace(
            trace,
            &setting.fdb,
            &world.hall,
            &detector,
            CountingMethod::Continuous,
            n_aps,
        );
        let truth = trace.user.placement_offset_deg + trace.user.compass_bias_deg;
        moloc_stats::circular::abs_diff_deg(analysis.heading_offset_deg, truth)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csc_is_at_least_as_good_as_dsc() {
        let world = EvalWorld::small(21);
        let result = csc_vs_dsc(&world);
        assert!(
            result.csc_errors.mean().unwrap() <= result.dsc_errors.mean().unwrap() + 0.02,
            "CSC {:.3} vs DSC {:.3}",
            result.csc_errors.mean().unwrap(),
            result.dsc_errors.mean().unwrap()
        );
        let text = render_csc_vs_dsc(&result);
        assert!(text.contains("CSC"));
    }

    #[test]
    fn k_sweep_reports_each_k() {
        let world = EvalWorld::small(22);
        let cache = ScenarioCache::new(&world);
        let result = k_sweep(&cache, 6, &[1, 4]);
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].0, 1);
        // Both arms shared one setting and one kernel.
        assert_eq!(cache.setting_builds(), 1);
        assert_eq!(cache.kernel_builds(), 1);
        // k = 1 degenerates to fingerprinting (no alternatives), so a
        // larger k should not hurt much.
        let text = render_k_sweep(&result);
        assert!(text.contains("MoLoc accuracy"));
    }

    #[test]
    fn heading_calibration_is_tight() {
        let world = EvalWorld::small(23);
        let cache = ScenarioCache::new(&world);
        let errors = heading_calibration_errors(&cache, 6);
        assert!(!errors.is_empty());
        assert!(
            errors.median().unwrap() < 12.0,
            "median calibration error {}°",
            errors.median().unwrap()
        );
    }

    #[test]
    fn map_db_reports_both_arms() {
        let world = EvalWorld::small(24);
        let cache = ScenarioCache::new(&world);
        let result = map_db(&cache, 6);
        assert!(result.map_based_pairs > 0);
        assert!(result.crowdsourced_pairs > 0);
        let text = render_map_db(&result);
        assert!(text.contains("crowdsourced"));
    }
}

/// Direction errors of two heading pipelines under a hostile compass.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadingFusionAblation {
    /// Per-interval |direction error| with the compass-only pipeline
    /// (the paper's implementation), degrees.
    pub compass_errors: Ecdf,
    /// Same with Kalman compass–gyro fusion (the paper's future-work
    /// extension), degrees.
    pub fused_errors: Ecdf,
}

/// Compares compass-only vs gyro-fused per-interval directions on
/// traces rendered with a *hostile* compass (σ = 25°). Placement
/// offsets are assumed calibrated (both pipelines get the true offset)
/// so the comparison isolates the noise-suppression benefit.
pub fn heading_fusion(world: &EvalWorld, seed: u64) -> HeadingFusionAblation {
    use moloc_mobility::render::TraceRenderer;
    use moloc_mobility::trajectory::Trajectory;
    use moloc_mobility::walk::random_walk;
    use moloc_sensors::fusion::HeadingFusion;
    use moloc_sensors::heading::motion_direction_deg;
    use moloc_stats::circular::abs_diff_deg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut users = moloc_mobility::user::paper_users();
    for u in &mut users {
        u.compass_noise_deg = 25.0;
    }
    let renderer = TraceRenderer::default();
    // Users fan out on the worker pool; each derives its own RNG from
    // (seed, index), so the parallel result matches the serial one.
    let per_user = crate::parallel::par_run(users.len(), |i| {
        let user = &users[i];
        let mut rng = StdRng::seed_from_u64(moloc_stats::sampling::derive_seed(seed, i as u64));
        let path = random_walk(&world.hall.graph, 16, &mut rng);
        let trajectory =
            Trajectory::from_path(&path, &world.hall.grid, user).expect("walks are non-trivial");
        let trace = renderer.render(&trajectory, user, &world.hall.env, &mut rng);
        let offset = user.placement_offset_deg + user.compass_bias_deg;

        // Fused heading over the whole trace.
        let initial = trace.compass.values().first().copied().unwrap_or(0.0);
        let fused =
            HeadingFusion::new(initial, 4.0, 25.0 * 25.0).fuse_series(&trace.gyro, &trace.compass);

        let (mut compass_errors, mut fused_errors) = (Vec::new(), Vec::new());
        for w in trace.passes.windows(2) {
            let truth = w[0]
                .position
                .bearing_deg_to_checked(w[1].position)
                .expect("distinct passes");
            let compass_slice = trace.compass.slice_time(w[0].time, w[1].time);
            let fused_slice = fused.slice_time(w[0].time, w[1].time);
            if let Some(d) = motion_direction_deg(&compass_slice, offset) {
                compass_errors.push(abs_diff_deg(d, truth));
            }
            if let Some(d) = motion_direction_deg(&fused_slice, offset) {
                fused_errors.push(abs_diff_deg(d, truth));
            }
        }
        (compass_errors, fused_errors)
    });
    let (mut compass_errors, mut fused_errors) = (Vec::new(), Vec::new());
    for (c, f) in per_user {
        compass_errors.extend(c);
        fused_errors.extend(f);
    }
    HeadingFusionAblation {
        compass_errors: Ecdf::from_samples(compass_errors),
        fused_errors: Ecdf::from_samples(fused_errors),
    }
}

/// Renders the heading-fusion ablation.
pub fn render_heading_fusion(result: &HeadingFusionAblation) -> String {
    let mut out = String::from(
        "# Ablation: compass-only vs Kalman gyro fusion (hostile compass, direction error)\n",
    );
    out.push_str(&report::cdf_comparison(
        "per-interval direction error (degrees)",
        &[
            ("fused", &result.fused_errors),
            ("compass", &result.compass_errors),
        ],
        10,
    ));
    out.push_str(&format!(
        "median: fused {:.1}°, compass-only {:.1}°\n",
        result.fused_errors.median().unwrap_or(f64::NAN),
        result.compass_errors.median().unwrap_or(f64::NAN),
    ));
    out
}

#[cfg(test)]
mod fusion_tests {
    use super::*;

    #[test]
    fn fusion_reduces_direction_error_under_hostile_compass() {
        let world = EvalWorld::small(41);
        let result = heading_fusion(&world, 41);
        assert!(!result.compass_errors.is_empty());
        assert!(
            result.fused_errors.median().unwrap() <= result.compass_errors.median().unwrap() + 1.0,
            "fused {:.1}° vs compass {:.1}°",
            result.fused_errors.median().unwrap(),
            result.compass_errors.median().unwrap()
        );
        let text = render_heading_fusion(&result);
        assert!(text.contains("fused"));
    }
}
