//! Fig. 8: performance at the large-error (fingerprint-twin) locations.
//!
//! The paper extracts the locations where WiFi fingerprinting has
//! errors over 6 m (the twin pairs like 2↔15, 10↔27, 13↔26 of its
//! deployment) and shows MoLoc's CDF at just those locations: average
//! and maximum errors drop by ≈ 6.8 m and ≈ 4 m.

use crate::experiments::fig7::{ApSettingResult, Fig7};
use crate::metrics::{error_ecdf, summarize, LocalizationSummary};
use crate::pipeline::PassOutcome;
use crate::report;
use moloc_geometry::LocationId;
use moloc_stats::ecdf::Ecdf;
use std::collections::{BTreeMap, BTreeSet};

/// The large-error threshold of the paper, meters.
pub const LARGE_ERROR_THRESHOLD_M: f64 = 6.0;

/// Minimum fraction of a location's WiFi estimates that must exceed the
/// threshold for the location to count as ambiguous.
pub const AMBIGUITY_RATE: f64 = 0.15;

/// One AP setting's Fig. 8 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Setting {
    /// Number of APs.
    pub n_aps: usize,
    /// The locations identified as ambiguous under WiFi.
    pub ambiguous_locations: Vec<LocationId>,
    /// WiFi summary restricted to those locations.
    pub wifi: LocalizationSummary,
    /// MoLoc summary restricted to those locations.
    pub moloc: LocalizationSummary,
    /// WiFi error CDF at those locations.
    pub wifi_ecdf: Ecdf,
    /// MoLoc error CDF at those locations.
    pub moloc_ecdf: Ecdf,
}

/// The full Fig. 8 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8 {
    /// Per AP count, ascending.
    pub settings: Vec<Fig8Setting>,
}

/// Identifies ambiguous locations: those where at least
/// [`AMBIGUITY_RATE`] of WiFi estimates err beyond
/// [`LARGE_ERROR_THRESHOLD_M`].
pub fn ambiguous_locations(wifi_outcomes: &[Vec<PassOutcome>]) -> Vec<LocationId> {
    let mut totals: BTreeMap<LocationId, (usize, usize)> = BTreeMap::new();
    for o in wifi_outcomes.iter().flatten() {
        let entry = totals.entry(o.truth).or_default();
        entry.0 += 1;
        if o.error_m > LARGE_ERROR_THRESHOLD_M {
            entry.1 += 1;
        }
    }
    totals
        .into_iter()
        .filter(|&(_, (total, large))| total > 0 && large as f64 / total as f64 >= AMBIGUITY_RATE)
        .map(|(id, _)| id)
        .collect()
}

fn restrict(outcomes: &[Vec<PassOutcome>], locations: &BTreeSet<LocationId>) -> Vec<PassOutcome> {
    outcomes
        .iter()
        .flatten()
        .filter(|o| locations.contains(&o.truth))
        .copied()
        .collect()
}

/// Derives Fig. 8 from already-computed Fig. 7 outcomes.
pub fn run(fig7: &Fig7) -> Fig8 {
    let settings = fig7.settings.iter().filter_map(run_setting).collect();
    Fig8 { settings }
}

/// Derives one AP setting; `None` when no location qualifies (a world
/// with no twins).
pub fn run_setting(setting: &ApSettingResult) -> Option<Fig8Setting> {
    let ambiguous = ambiguous_locations(&setting.wifi.outcomes);
    if ambiguous.is_empty() {
        return None;
    }
    let set: BTreeSet<LocationId> = ambiguous.iter().copied().collect();
    let wifi = restrict(&setting.wifi.outcomes, &set);
    let moloc = restrict(&setting.moloc.outcomes, &set);
    if wifi.is_empty() || moloc.is_empty() {
        return None;
    }
    Some(Fig8Setting {
        n_aps: setting.n_aps,
        ambiguous_locations: ambiguous,
        wifi: summarize(&wifi),
        moloc: summarize(&moloc),
        wifi_ecdf: error_ecdf(&wifi),
        moloc_ecdf: error_ecdf(&moloc),
    })
}

/// Renders the per-AP comparisons.
pub fn render(fig: &Fig8) -> String {
    let mut out = String::from("# Fig. 8: performance at locations where WiFi errs beyond 6 m\n\n");
    if fig.settings.is_empty() {
        out.push_str("(no ambiguous locations found)\n");
        return out;
    }
    for s in &fig.settings {
        let locs: Vec<String> = s
            .ambiguous_locations
            .iter()
            .map(ToString::to_string)
            .collect();
        out.push_str(&format!(
            "## {}-AP: ambiguous locations: {}\n",
            s.n_aps,
            locs.join(", ")
        ));
        out.push_str(&report::table(
            &["Method", "Accuracy", "Mean err (m)", "Max err (m)"],
            &[
                vec![
                    "WiFi".into(),
                    format!("{:.0}%", s.wifi.accuracy * 100.0),
                    format!("{:.2}", s.wifi.mean_error_m),
                    format!("{:.2}", s.wifi.max_error_m),
                ],
                vec![
                    "MoLoc".into(),
                    format!("{:.0}%", s.moloc.accuracy * 100.0),
                    format!("{:.2}", s.moloc.mean_error_m),
                    format!("{:.2}", s.moloc.max_error_m),
                ],
            ],
        ));
        out.push_str(&report::cdf_comparison(
            &format!("Fig. 8 {}-AP error CDF (ambiguous locations)", s.n_aps),
            &[("MoLoc", &s.moloc_ecdf), ("WiFi", &s.wifi_ecdf)],
            14,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig7;
    use crate::pipeline::EvalWorld;
    use moloc_core::config::MoLocConfig;

    fn fig7_small() -> Fig7 {
        let world = EvalWorld::small(5);
        let setting = world.setting(4); // fewest APs → most ambiguity
        Fig7 {
            settings: vec![fig7::run_setting(&world, &setting, MoLocConfig::paper())],
        }
    }

    #[test]
    fn finds_ambiguous_locations_and_improves_there() {
        let f7 = fig7_small();
        let f8 = run(&f7);
        // The 4-AP mirror-symmetric hall must exhibit twins.
        assert!(!f8.settings.is_empty(), "no ambiguous locations at 4 APs");
        let s = &f8.settings[0];
        assert!(!s.ambiguous_locations.is_empty());
        assert!(
            s.moloc.mean_error_m < s.wifi.mean_error_m,
            "MoLoc {:.2} m should beat WiFi {:.2} m at twins",
            s.moloc.mean_error_m,
            s.wifi.mean_error_m
        );
    }

    #[test]
    fn ambiguous_location_detection_respects_rate() {
        use moloc_geometry::LocationId;
        let big_error = |truth: u32| PassOutcome {
            trace_index: 0,
            pass_index: 0,
            truth: LocationId::new(truth),
            estimate: LocationId::new(truth + 1),
            error_m: 12.0,
        };
        let small_error = |truth: u32| PassOutcome {
            trace_index: 0,
            pass_index: 0,
            truth: LocationId::new(truth),
            estimate: LocationId::new(truth),
            error_m: 0.0,
        };
        // L1: 50% large errors → ambiguous; L2: 5% → not.
        let mut outcomes = vec![big_error(1), small_error(1)];
        outcomes.extend(std::iter::repeat_n(small_error(2), 19));
        outcomes.push(big_error(2));
        let ambiguous = ambiguous_locations(&[outcomes]);
        assert_eq!(ambiguous, vec![LocationId::new(1)]);
    }

    #[test]
    fn render_lists_locations() {
        let f8 = run(&fig7_small());
        let text = render(&f8);
        assert!(text.contains("ambiguous locations"));
    }
}
