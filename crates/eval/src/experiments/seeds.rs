//! Seed-sensitivity sweep (robustness extension).
//!
//! The paper reports one deployment; a simulation can ask how stable
//! the headline comparison is across worlds. This experiment rebuilds
//! the hall + corpus under several master seeds and reports the spread
//! of WiFi and MoLoc accuracies at 6 APs. It uses the reduced corpus —
//! the goal is variance across worlds, not absolute values.

use crate::metrics::{flatten, summarize};
use crate::pipeline::{localize_moloc, localize_wifi, EvalWorld};
use crate::report;
use moloc_core::config::MoLocConfig;
use moloc_stats::online::Welford;

/// One seed's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedOutcome {
    /// The master seed.
    pub seed: u64,
    /// WiFi accuracy.
    pub wifi_accuracy: f64,
    /// MoLoc accuracy.
    pub moloc_accuracy: f64,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedSweep {
    /// Per-seed outcomes.
    pub outcomes: Vec<SeedOutcome>,
}

impl SeedSweep {
    /// Mean and sample standard deviation of the WiFi accuracies.
    pub fn wifi_stats(&self) -> (f64, f64) {
        let acc: Welford = self.outcomes.iter().map(|o| o.wifi_accuracy).collect();
        (acc.mean(), acc.sample_std())
    }

    /// Mean and sample standard deviation of the MoLoc accuracies.
    pub fn moloc_stats(&self) -> (f64, f64) {
        let acc: Welford = self.outcomes.iter().map(|o| o.moloc_accuracy).collect();
        (acc.mean(), acc.sample_std())
    }

    /// Fraction of seeds where MoLoc beat WiFi.
    pub fn win_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.moloc_accuracy > o.wifi_accuracy)
            .count() as f64
            / self.outcomes.len() as f64
    }
}

/// Runs the sweep over `seeds` at 6 APs on the reduced corpus.
///
/// Seeds fan out on the [`crate::parallel`] worker pool: each world is
/// a pure function of its seed, so the sweep is order-preserving and
/// deterministic.
pub fn run(seeds: &[u64]) -> SeedSweep {
    // One seed per shard: each item builds and evaluates an entire
    // world, so the finest granularity load-balances best.
    let outcomes = crate::parallel::par_map_chunked(seeds, 1, |&seed| {
        let world = EvalWorld::small(seed);
        let setting = world.setting(6);
        let wifi = summarize(&flatten(&localize_wifi(&world, &setting)));
        let moloc = summarize(&flatten(&localize_moloc(
            &world,
            &setting,
            MoLocConfig::paper(),
        )));
        SeedOutcome {
            seed,
            wifi_accuracy: wifi.accuracy,
            moloc_accuracy: moloc.accuracy,
        }
    });
    SeedSweep { outcomes }
}

/// Renders the sweep.
pub fn render(sweep: &SeedSweep) -> String {
    let mut out = String::from("# Extension: seed-sensitivity sweep (6 APs, reduced corpus)\n");
    let rows: Vec<Vec<String>> = sweep
        .outcomes
        .iter()
        .map(|o| {
            vec![
                o.seed.to_string(),
                format!("{:.0}%", o.wifi_accuracy * 100.0),
                format!("{:.0}%", o.moloc_accuracy * 100.0),
            ]
        })
        .collect();
    out.push_str(&report::table(&["Seed", "WiFi", "MoLoc"], &rows));
    let (wm, ws) = sweep.wifi_stats();
    let (mm, ms) = sweep.moloc_stats();
    out.push_str(&format!(
        "WiFi  {:.1}% ± {:.1}%   MoLoc {:.1}% ± {:.1}%   MoLoc wins {:.0}% of worlds\n",
        wm * 100.0,
        ws * 100.0,
        mm * 100.0,
        ms * 100.0,
        sweep.win_rate() * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_moloc_wins_most_worlds() {
        let sweep = run(&[3, 101, 202]);
        assert_eq!(sweep.outcomes.len(), 3);
        assert!(
            sweep.win_rate() >= 2.0 / 3.0,
            "MoLoc won only {:.0}% of worlds",
            sweep.win_rate() * 100.0
        );
        let (mm, _) = sweep.moloc_stats();
        let (wm, _) = sweep.wifi_stats();
        assert!(mm > wm, "mean MoLoc {mm:.2} vs WiFi {wm:.2}");
        let text = render(&sweep);
        assert!(text.contains("MoLoc wins"));
    }
}
