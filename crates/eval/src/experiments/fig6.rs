//! Fig. 6: validity of the crowdsourced motion database.
//!
//! The paper compares the motion database's per-pair means against
//! map-derived ground truth: direction errors (Fig. 6a: median 3°, max
//! 15°) and offset errors (Fig. 6b: median 0.13 m, max 0.46 m).

use crate::pipeline::{EvalWorld, Setting};
use crate::report;
use moloc_stats::circular::abs_diff_deg;
use moloc_stats::ecdf::Ecdf;

/// The regenerated Fig. 6 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// Per-pair direction errors, degrees (Fig. 6a).
    pub direction_errors: Ecdf,
    /// Per-pair offset errors, meters (Fig. 6b).
    pub offset_errors: Ecdf,
    /// Number of trained pairs examined.
    pub pairs: usize,
}

/// Runs the experiment against an already-built setting (6 APs in the
/// paper).
pub fn run(world: &EvalWorld, setting: &Setting) -> Fig6 {
    let mut direction_errors = Vec::new();
    let mut offset_errors = Vec::new();
    for (a, b, stats) in setting.motion_db.iter() {
        let Some(map_dir) = world.hall.map.direction_deg(a, b) else {
            continue;
        };
        direction_errors.push(abs_diff_deg(stats.direction.mean(), map_dir));
        offset_errors.push((stats.offset.mean() - world.hall.map.offset_m(a, b)).abs());
    }
    let pairs = direction_errors.len();
    Fig6 {
        direction_errors: Ecdf::from_samples(direction_errors),
        offset_errors: Ecdf::from_samples(offset_errors),
        pairs,
    }
}

/// Renders both CDFs.
pub fn render(fig: &Fig6) -> String {
    let mut out = format!("# Fig. 6: motion-database validity ({} pairs)\n", fig.pairs);
    out.push_str(&report::cdf_table(
        "Fig. 6(a) direction errors (degrees)",
        &fig.direction_errors,
        17,
    ));
    out.push('\n');
    out.push_str(&report::cdf_table(
        "Fig. 6(b) offset errors (meters)",
        &fig.offset_errors,
        11,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_motion_db_is_valid() {
        let world = EvalWorld::small(11);
        let setting = world.setting(6);
        let fig = run(&world, &setting);
        assert!(fig.pairs > 0, "no pairs trained");
        // Shape targets, relaxed for the small corpus: directions well
        // under the 20° coarse bound, offsets under one step length.
        assert!(
            fig.direction_errors.median().unwrap() < 10.0,
            "median direction error {}",
            fig.direction_errors.median().unwrap()
        );
        assert!(
            fig.offset_errors.median().unwrap() < 0.8,
            "median offset error {}",
            fig.offset_errors.median().unwrap()
        );
    }

    #[test]
    fn render_mentions_both_panels() {
        let world = EvalWorld::small(11);
        let setting = world.setting(6);
        let text = render(&run(&world, &setting));
        assert!(text.contains("Fig. 6(a)"));
        assert!(text.contains("Fig. 6(b)"));
    }
}
