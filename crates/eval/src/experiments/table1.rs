//! Table I: convergence to accurate localization.
//!
//! Over traces with erroneous initial estimates, the paper reports the
//! mean number of erroneous localizations (EL) before the first
//! accurate one, and the accuracy / mean error / max error afterwards —
//! for WiFi and MoLoc at 4/5/6 APs.

use crate::convergence::{convergence_stats, ConvergenceStats};
use crate::experiments::fig7::Fig7;
use crate::report;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// e.g. "4-AP WiFi".
    pub setting: String,
    /// The statistics, `None` when no trace had a wrong initial
    /// estimate (tiny corpora).
    pub stats: Option<ConvergenceStats>,
}

/// The full table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in the paper's order (per AP count: WiFi then MoLoc).
    pub rows: Vec<Table1Row>,
}

/// Derives Table I from Fig. 7's outcomes.
pub fn run(fig7: &Fig7) -> Table1 {
    let mut rows = Vec::new();
    for s in &fig7.settings {
        rows.push(Table1Row {
            setting: format!("{}-AP WiFi", s.n_aps),
            stats: convergence_stats(&s.wifi.outcomes),
        });
        rows.push(Table1Row {
            setting: format!("{}-AP MoLoc", s.n_aps),
            stats: convergence_stats(&s.moloc.outcomes),
        });
    }
    Table1 { rows }
}

/// Renders the table in the paper's column order.
pub fn render(table: &Table1) -> String {
    let mut out = String::from(
        "# Table I: convergence of accurate localization (traces with wrong initial estimate)\n",
    );
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| match &row.stats {
            Some(s) => vec![
                row.setting.clone(),
                format!("{:.2}", s.mean_el),
                format!("{:.0}%", s.post_accuracy * 100.0),
                format!("{:.2}", s.post_mean_error_m),
                format!("{:.2}", s.post_max_error_m),
            ],
            None => vec![
                row.setting.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
        })
        .collect();
    out.push_str(&report::table(
        &["Setting", "EL", "Accuracy", "Mean error", "Maximum error"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig7;
    use crate::pipeline::EvalWorld;
    use moloc_core::config::MoLocConfig;

    #[test]
    fn table_has_two_rows_per_setting() {
        let world = EvalWorld::small(6);
        let setting = world.setting(6);
        let f7 = Fig7 {
            settings: vec![fig7::run_setting(&world, &setting, MoLocConfig::paper())],
        };
        let t = run(&f7);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0].setting.contains("WiFi"));
        assert!(t.rows[1].setting.contains("MoLoc"));
        let text = render(&t);
        assert!(text.contains("Table I"));
        assert!(text.contains("EL"));
    }

    #[test]
    fn moloc_converges_at_least_as_fast_when_measurable() {
        let world = EvalWorld::small(8);
        let setting = world.setting(4);
        let f7 = Fig7 {
            settings: vec![fig7::run_setting(&world, &setting, MoLocConfig::paper())],
        };
        let t = run(&f7);
        if let (Some(wifi), Some(moloc)) = (&t.rows[0].stats, &t.rows[1].stats) {
            // MoLoc's post-convergence accuracy should not be worse.
            assert!(
                moloc.post_accuracy >= wifi.post_accuracy - 0.05,
                "MoLoc {:.2} vs WiFi {:.2}",
                moloc.post_accuracy,
                wifi.post_accuracy
            );
        }
    }
}
