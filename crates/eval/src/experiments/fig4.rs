//! Fig. 4: acceleration signature of 10 steps.
//!
//! The paper plots 10 seconds of accelerometer magnitude while a user
//! walks 10 steps, marking each detected step with a cross. This
//! experiment regenerates the series and the detected step marks.

use moloc_mobility::user::paper_users;
use moloc_sensors::steps::{StepDetector, StepEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The regenerated Fig. 4 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// `(time, magnitude)` samples at 10 Hz.
    pub series: Vec<(f64, f64)>,
    /// Detected steps (the paper's crosses).
    pub steps: Vec<StepEvent>,
    /// The true number of synthesized steps (10).
    pub true_steps: usize,
}

/// Runs the experiment: user 2 walks 10 steps at a 1 s stride cycle so
/// the plot spans the paper's 10-second window.
pub fn run(seed: u64) -> Fig4 {
    let user = paper_users()[1];
    let mut rng = StdRng::seed_from_u64(seed);
    let series = user.gait().synthesize_walk(10, 1.0, 10.0, &mut rng);
    let steps = StepDetector::default().detect(&series);
    Fig4 {
        series: series.iter().collect(),
        steps,
        true_steps: 10,
    }
}

/// Renders the series with step marks.
pub fn render(fig: &Fig4) -> String {
    let mut out = String::from("# Fig. 4: acceleration signature of 10 steps\n");
    out.push_str(&format!(
        "# detected {} steps of {} synthesized\n",
        fig.steps.len(),
        fig.true_steps
    ));
    out.push_str("#  time   accel  step\n");
    for &(t, v) in &fig.series {
        let mark = if fig.steps.iter().any(|s| (s.time - t).abs() < 0.051) {
            " x"
        } else {
            ""
        };
        out.push_str(&format!("{t:7.2}  {v:6.2}{mark}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_about_ten_steps() {
        let fig = run(42);
        assert!(
            (fig.steps.len() as i64 - 10).abs() <= 1,
            "{} steps",
            fig.steps.len()
        );
        assert_eq!(fig.series.len(), 100); // 10 s at 10 Hz
    }

    #[test]
    fn magnitudes_span_fig4_range() {
        let fig = run(1);
        let max = fig.series.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
        let min = fig.series.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
        // Paper Fig. 4's y-axis spans roughly 4–16 m/s².
        assert!(max > 11.0 && max < 17.0, "max {max}");
        assert!(min > 4.0 && min < 8.5, "min {min}");
    }

    #[test]
    fn render_marks_steps() {
        let fig = run(7);
        let text = render(&fig);
        let marks = text.matches(" x").count();
        assert_eq!(marks, fig.steps.len());
        assert!(text.contains("# Fig. 4"));
    }
}
