//! Plain-text rendering of experiment results.
//!
//! The paper reports CDF figures and one statistics table; these helpers
//! print the same series and rows so `repro` output can be compared
//! against the paper side by side (EXPERIMENTS.md records both).

use moloc_stats::ecdf::Ecdf;

/// Renders a CDF as `x  F(x)` rows with `points` samples — the series
/// behind the paper's CDF figures.
pub fn cdf_table(label: &str, ecdf: &Ecdf, points: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("# CDF: {label} (n = {})\n", ecdf.len()));
    if ecdf.is_empty() {
        out.push_str("(empty)\n");
        return out;
    }
    out.push_str(&format!(
        "# median = {:.3}, mean = {:.3}, max = {:.3}\n",
        ecdf.median().expect("non-empty"),
        ecdf.mean().expect("non-empty"),
        ecdf.max().expect("non-empty"),
    ));
    for (x, f) in ecdf.series(points, true) {
        out.push_str(&format!("{x:8.3}  {f:6.3}\n"));
    }
    out
}

/// Renders two CDFs side by side on a shared grid (MoLoc vs WiFi, as in
/// Figs. 7 and 8).
pub fn cdf_comparison(label: &str, series: &[(&str, &Ecdf)], points: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("# CDF comparison: {label}\n"));
    let hi = series
        .iter()
        .filter_map(|(_, e)| e.max())
        .fold(0.0f64, f64::max);
    out.push_str("#    x");
    for (name, _) in series {
        out.push_str(&format!("  {name:>8}"));
    }
    out.push('\n');
    if points == 0 || hi <= 0.0 {
        return out;
    }
    for i in 0..points {
        let x = hi * i as f64 / (points - 1).max(1) as f64;
        out.push_str(&format!("{x:6.2}"));
        for (_, e) in series {
            out.push_str(&format!("  {:8.3}", e.fraction_at_or_below(x)));
        }
        out.push('\n');
    }
    out
}

/// Renders a table with a header row and aligned columns.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&format!(
        "{}\n",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    ));
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_table_contains_summary_and_rows() {
        let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        let t = cdf_table("errors", &e, 5);
        assert!(t.contains("n = 4"));
        assert!(t.contains("median = 2.000"));
        assert_eq!(t.lines().count(), 2 + 5);
    }

    #[test]
    fn cdf_table_handles_empty() {
        let t = cdf_table("none", &Ecdf::default(), 5);
        assert!(t.contains("(empty)"));
    }

    #[test]
    fn comparison_has_one_column_per_series() {
        let a = Ecdf::from_samples(vec![0.0, 1.0, 2.0]);
        let b = Ecdf::from_samples(vec![0.0, 4.0, 8.0]);
        let t = cdf_comparison("fig", &[("MoLoc", &a), ("WiFi", &b)], 4);
        assert!(t.contains("MoLoc"));
        assert!(t.contains("WiFi"));
        // Header + column header + 4 data rows.
        assert_eq!(t.lines().count(), 6);
        // Last row: both CDFs at the global max reach 1.
        let last = t.lines().last().unwrap();
        assert!(last.contains("1.000"));
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["Setting", "Accuracy"],
            &[
                vec!["4-AP WiFi".into(), "0.34".into()],
                vec!["4-AP MoLoc".into(), "0.89".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Setting"));
        assert!(lines[1].starts_with('-'));
    }
}
