//! A scoped-thread worker pool for the evaluation fan-outs.
//!
//! Every experiment in this crate is embarrassingly parallel at some
//! granularity — per test trace, per seed, per parameter setting — and
//! every unit of work is a pure function of shared read-only state
//! (the [`crate::pipeline::EvalWorld`], databases, kernels). This
//! module provides the one primitive they all share: [`par_map`], an
//! order-preserving parallel map built on [`std::thread::scope`], with
//! no external dependencies.
//!
//! # Determinism
//!
//! Workers pull indices from an atomic counter, so *which* thread runs
//! a given item is scheduling-dependent — but results are collected by
//! index and returned in input order, and each work item derives its
//! randomness (if any) from its own index/seed, never from a shared
//! RNG. The output of a parallel run is therefore byte-identical to
//! the serial run; `determinism.rs` in the test suite locks this in.
//!
//! # Thread count
//!
//! [`thread_count`] honors the `MOLOC_THREADS` environment variable
//! (any value ≥ 1; `1` forces serial execution in the calling thread),
//! clamped to [`MAX_OVERSUBSCRIPTION`]× the available parallelism, and
//! falls back to [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Upper bound on requested threads, as a multiple of the machine's
/// available parallelism. Mild oversubscription can help when traces
/// have very uneven cost, but an unbounded `MOLOC_THREADS` (a stray
/// `MOLOC_THREADS=1000000`) would try to spawn that many OS threads
/// and abort the process on stack exhaustion long before doing work.
pub const MAX_OVERSUBSCRIPTION: usize = 4;

/// Number of worker threads the evaluation pool uses.
///
/// Resolution order:
/// 1. `MOLOC_THREADS` environment variable, if it parses to an integer
///    ≥ 1 (invalid values are ignored, not fatal), clamped to
///    [`MAX_OVERSUBSCRIPTION`]× the available parallelism;
/// 2. [`std::thread::available_parallelism`];
/// 3. 1 (serial) if the platform cannot report parallelism.
///
/// The resolved count is published as the `eval.parallel.threads`
/// gauge when metrics collection is enabled.
pub fn thread_count() -> usize {
    let available = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let resolved = resolve_thread_count(
        std::env::var("MOLOC_THREADS").ok().as_deref(),
        available,
    );
    moloc_obs::gauge_set("eval.parallel.threads", resolved as u64);
    resolved
}

/// The pure resolution rule behind [`thread_count`]: `raw` is the
/// `MOLOC_THREADS` value (if set), `available` the machine parallelism.
fn resolve_thread_count(raw: Option<&str>, available: usize) -> usize {
    let available = available.max(1);
    let ceiling = available.saturating_mul(MAX_OVERSUBSCRIPTION);
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(ceiling),
        _ => available,
    }
}

/// Applies `f` to `0..n` on the worker pool and returns the results in
/// index order.
///
/// `f` runs concurrently on up to [`thread_count`] threads (capped at
/// `n`); with one thread — or `n <= 1` — it runs inline in the caller
/// with no thread spawned at all. Results are identical to
/// `(0..n).map(f).collect()` whenever `f` is a pure function of its
/// index.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (remaining work is
/// abandoned, as with any panicking iterator).
pub fn par_run<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = thread_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    // Workers pull the next index from a shared counter (cheap dynamic
    // load balancing — trace lengths vary), buffer results locally, and
    // merge under the mutex once at the end.
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                // Per-worker load balance: how many items this worker
                // pulled before the queue drained. Purely advisory —
                // results are merged by index regardless.
                moloc_obs::record("eval.parallel.items_per_worker", local.len() as f64);
                collected
                    .lock()
                    .expect("a worker panicked while holding the results lock")
                    .extend(local);
            });
        }
    });

    let mut pairs = collected.into_inner().expect("workers joined");
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Order-preserving parallel map over a slice: `par_map(items, f)` is
/// `items.iter().map(f).collect()` spread over the worker pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_run(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_run_preserves_index_order() {
        let out = par_run(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..100).map(|i| i * 3 + 1).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        let parallel = par_map(&items, |x| x.wrapping_mul(0x9E37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_run(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_run(1, |i| i + 7), vec![7]);
        assert_eq!(par_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Simulate varying item cost: heavier work for low indices so
        // late items finish first on other threads.
        let out = par_run(64, |i| {
            let spins = if i < 8 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn resolve_honors_sane_env_values() {
        assert_eq!(resolve_thread_count(Some("1"), 8), 1);
        assert_eq!(resolve_thread_count(Some(" 6 "), 8), 6);
        assert_eq!(resolve_thread_count(Some("32"), 8), 32);
    }

    #[test]
    fn resolve_clamps_absurd_requests() {
        // MOLOC_THREADS=1000000 used to be taken literally and spawn a
        // million scoped threads; now it caps at 4x the parallelism.
        assert_eq!(resolve_thread_count(Some("1000000"), 8), 32);
        assert_eq!(
            resolve_thread_count(Some(&usize::MAX.to_string()), 2),
            8
        );
    }

    #[test]
    fn resolve_falls_back_on_invalid_or_missing_input() {
        assert_eq!(resolve_thread_count(None, 8), 8);
        assert_eq!(resolve_thread_count(Some("zero"), 8), 8);
        assert_eq!(resolve_thread_count(Some("0"), 8), 8);
        assert_eq!(resolve_thread_count(Some(""), 8), 8);
        // A platform that cannot report parallelism still yields 1.
        assert_eq!(resolve_thread_count(None, 0), 1);
        assert_eq!(resolve_thread_count(Some("3"), 0), 3);
    }
}
