//! The parallel fan-out primitives of the evaluation crate, backed by
//! the persistent work-stealing [`crate::runtime`].
//!
//! Every experiment in this crate is embarrassingly parallel at some
//! granularity — per test trace, per seed, per parameter setting — and
//! every unit of work is a pure function of shared read-only state
//! (the [`crate::pipeline::EvalWorld`], databases, kernels). This
//! module provides the primitives they all share: [`par_run`] /
//! [`par_map`], order-preserving parallel maps, plus the chunked and
//! raw-shard variants the pipeline's arena plumbing builds on — all
//! with no external dependencies.
//!
//! # Determinism
//!
//! Work is distributed as chunked shards over per-worker deques and may
//! be stolen by any worker — but results are collected into pre-sized
//! disjoint slots keyed by input index and read back in input order,
//! and each work item derives its randomness (if any) from its own
//! index/seed, never from a shared RNG. The output of a parallel run is
//! therefore byte-identical to the serial run at every worker count and
//! chunk size; `determinism.rs` in the test suite locks this in.
//!
//! # Thread count
//!
//! [`thread_count`] honors the `MOLOC_THREADS` environment variable
//! (any value ≥ 1; `1` forces serial execution in the calling thread),
//! clamped to [`MAX_OVERSUBSCRIPTION`]× the available parallelism, and
//! falls back to [`std::thread::available_parallelism`]. The variable
//! is parsed **once per process**, at first use — the resolved width is
//! cached, so per-call scheduling never touches the environment. Bench
//! harnesses that need to vary the width inside one process use
//! [`set_worker_override`] instead of mutating the environment.
//!
//! # Chunking
//!
//! Items are batched into contiguous shards before hitting the deques;
//! the default shard size targets four shards per worker (good load
//! balance for uneven traces without per-item scheduling cost) and can
//! be pinned process-wide with the `MOLOC_CHUNK` environment variable
//! (parsed once, like `MOLOC_THREADS`) or per call via
//! [`par_run_chunked`].

use crate::runtime::{shard_ranges, Runtime, SlotVec};
use moloc_core::error::MolocError;
use moloc_fingerprint::block::{BlockNeighbors, BlockScratch, QueryBlock};
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, MetricKernel, ShardCandidate};
use moloc_fingerprint::knn::Neighbor;
use std::cell::RefCell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

pub use crate::runtime::{
    clear_quarantine, quarantine_log, JobReport, QuarantineRecord, SlotWriter, MAX_POOL_WORKERS,
};

/// Upper bound on requested threads, as a multiple of the machine's
/// available parallelism. Mild oversubscription can help when traces
/// have very uneven cost, but an unbounded `MOLOC_THREADS` (a stray
/// `MOLOC_THREADS=1000000`) would try to spawn that many OS threads
/// and abort the process on stack exhaustion long before doing work.
pub const MAX_OVERSUBSCRIPTION: usize = 4;

/// Index count below which a sharded/parallel k-NN scan cannot pay for
/// its scheduling: smaller indexes always use the serial scan. The
/// threshold matches the "large synthetic survey" regime (the paper's
/// 28-location hall never shards).
pub const SHARDED_KNN_MIN_LOCATIONS: usize = 512;

/// Default minimum rows×queries work product for a parallel k-NN
/// dispatch. PR 6's per-row sharding regressed on mid-size indexes
/// (`knn/sharded_scan_2048_w4` shipped below 1.0×): a single
/// 2048-row query is far too little work to amortize a pool dispatch
/// plus the per-shard merge, so anything under this product now takes
/// the serial (mirror-accelerated) scan. Override with the
/// `MOLOC_KNN_SHARD_MIN` environment variable (parsed once, like
/// `MOLOC_THREADS`) or per process via [`set_shard_min_override`].
pub const KNN_SHARD_MIN_WORK: usize = 32_768;

/// Number of worker threads the evaluation pool uses.
///
/// Resolution order:
/// 1. [`set_worker_override`], when armed (bench harnesses only);
/// 2. `MOLOC_THREADS` environment variable — must parse to an integer
///    ≥ 1, clamped to [`MAX_OVERSUBSCRIPTION`]× the available
///    parallelism;
/// 3. [`std::thread::available_parallelism`];
/// 4. 1 (serial) if the platform cannot report parallelism.
///
/// Steps 2–4 run **once per process**; later calls return the cached
/// width. The resolved count is published as the
/// `eval.parallel.threads` gauge while metrics collection is enabled
/// (the gauge write is skipped entirely while the recorder is off).
///
/// # Panics
///
/// Panics (fail-fast) when `MOLOC_THREADS` is set but malformed —
/// garbage no longer degrades silently to the machine default. Entry
/// points call [`validate_env`] first, which surfaces the same defect
/// as a typed [`MolocError::InvalidConfig`] before any pool spins up.
pub fn thread_count() -> usize {
    let resolved = match worker_override() {
        Some(n) => n,
        None => cached_thread_count(),
    };
    if moloc_obs::is_enabled() {
        moloc_obs::gauge_set("eval.parallel.threads", resolved as u64);
    }
    resolved
}

/// The `MOLOC_THREADS` resolution, performed once and cached.
/// Malformed values fail fast (see [`thread_count`]).
fn cached_thread_count() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let available = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        match resolve_thread_count(std::env::var("MOLOC_THREADS").ok().as_deref(), available) {
            Ok(n) => n,
            Err(e) => panic!("{e}"),
        }
    })
}

/// The pure resolution rule behind [`thread_count`]: `raw` is the
/// `MOLOC_THREADS` value (if set), `available` the machine parallelism.
/// Unset keeps the machine default; a set-but-malformed value (garbage,
/// empty, zero) is a typed error naming the knob and echoing the raw
/// string — never a silent fallback.
fn resolve_thread_count(raw: Option<&str>, available: usize) -> Result<usize, MolocError> {
    let available = available.max(1);
    let ceiling = available.saturating_mul(MAX_OVERSUBSCRIPTION);
    match moloc_core::env::parse_positive_usize("MOLOC_THREADS", raw)? {
        Some(n) => Ok(n.min(ceiling)),
        None => Ok(available),
    }
}

/// The process-wide shard-size pin from `MOLOC_CHUNK`, parsed once.
/// `None` (unset) lets each call compute its own default; malformed
/// values fail fast like `MOLOC_THREADS`.
fn chunk_override() -> Option<usize> {
    static CACHED: OnceLock<Option<usize>> = OnceLock::new();
    *CACHED.get_or_init(
        || match resolve_chunk(std::env::var("MOLOC_CHUNK").ok().as_deref()) {
            Ok(pin) => pin,
            Err(e) => panic!("{e}"),
        },
    )
}

/// The pure resolution rule behind the `MOLOC_CHUNK` pin: a shard size
/// must be a positive integer; anything else set is a typed error.
fn resolve_chunk(raw: Option<&str>) -> Result<Option<usize>, MolocError> {
    moloc_core::env::parse_positive_usize("MOLOC_CHUNK", raw)
}

/// Bench-harness worker-count override: `0` means "not armed".
///
/// The scaling benchmarks measure the same workload at 1/2/4/8 workers
/// inside one process, where mutating `MOLOC_THREADS` would be both
/// unsafe (env mutation under live threads) and ineffective (the
/// variable is parsed once). The override is process-global and
/// **advisory**: outputs are worker-count invariant by design, so a
/// concurrent reader at worst runs with the other's width.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Arms (`Some(n)`) or disarms (`None`) the process-global worker-count
/// override consulted by [`thread_count`]. Intended for bench harnesses
/// and determinism tests; production code sizes the pool from
/// `MOLOC_THREADS` once.
pub fn set_worker_override(workers: Option<usize>) {
    WORKER_OVERRIDE.store(
        workers.unwrap_or(0).min(MAX_POOL_WORKERS),
        Ordering::Relaxed,
    );
}

/// The armed override, if any.
fn worker_override() -> Option<usize> {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Shard-min override: `usize::MAX` means "not armed" (0 is a valid
/// override — it forces sharding for any work product).
static SHARD_MIN_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Arms (`Some(n)`) or disarms (`None`) the process-global minimum
/// work product consulted by [`par_k_nearest`] and
/// [`par_k_nearest_block`]. Intended for bench harnesses and tests
/// that must exercise the sharded path on indexes below the
/// [`KNN_SHARD_MIN_WORK`] default; results are dispatch-invariant, so
/// the override only moves the serial/parallel crossover.
pub fn set_shard_min_override(min_work: Option<usize>) {
    SHARD_MIN_OVERRIDE.store(min_work.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// The minimum rows×queries product for a parallel k-NN dispatch:
/// override, then `MOLOC_KNN_SHARD_MIN` (parsed once), then
/// [`KNN_SHARD_MIN_WORK`].
fn knn_shard_min() -> usize {
    match SHARD_MIN_OVERRIDE.load(Ordering::Relaxed) {
        usize::MAX => {
            static CACHED: OnceLock<usize> = OnceLock::new();
            *CACHED.get_or_init(|| {
                match resolve_shard_min(std::env::var("MOLOC_KNN_SHARD_MIN").ok().as_deref()) {
                    Ok(n) => n,
                    Err(e) => panic!("{e}"),
                }
            })
        }
        n => n,
    }
}

/// The pure resolution rule behind `MOLOC_KNN_SHARD_MIN`: any integer
/// (including 0 — "always shard") wins; unset keeps the default; a
/// set-but-malformed value is a typed error.
fn resolve_shard_min(raw: Option<&str>) -> Result<usize, MolocError> {
    Ok(moloc_core::env::parse_usize("MOLOC_KNN_SHARD_MIN", raw)?.unwrap_or(KNN_SHARD_MIN_WORK))
}

/// Strictly validates every `MOLOC_*` knob this module reads
/// (`MOLOC_THREADS`, `MOLOC_CHUNK`, `MOLOC_KNN_SHARD_MIN`). Entry
/// points call this before touching the pool so a typo'd variable is a
/// typed, actionable error — not a setting silently replaced by a
/// default, and not a mid-run panic from the cached resolver.
///
/// # Errors
///
/// Returns [`MolocError::InvalidConfig`] naming the first malformed
/// variable and echoing its raw value.
pub fn validate_env() -> Result<(), MolocError> {
    let available = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    resolve_thread_count(std::env::var("MOLOC_THREADS").ok().as_deref(), available)?;
    resolve_chunk(std::env::var("MOLOC_CHUNK").ok().as_deref())?;
    resolve_shard_min(std::env::var("MOLOC_KNN_SHARD_MIN").ok().as_deref())?;
    Ok(())
}

thread_local! {
    /// Per-worker scratch for the serial mirror-accelerated k-NN
    /// fallback and the blocked per-shard scans: reused across calls so
    /// both stay allocation-free after warm-up on every pool thread.
    static BLOCK_SCRATCH: RefCell<BlockScratch> = RefCell::new(BlockScratch::new());
}

/// The default shard size for `n` items on `workers` workers: four
/// shards per worker, so natural cost imbalance (trace lengths vary)
/// load-balances through stealing without per-item scheduling.
pub fn default_chunk(n: usize, workers: usize) -> usize {
    if let Some(pinned) = chunk_override() {
        return pinned;
    }
    n.div_ceil(workers.max(1) * 4).max(1)
}

/// Applies `f` to `0..n` on the persistent worker pool and returns the
/// results in index order.
///
/// `f` runs concurrently on up to [`thread_count`] workers (capped at
/// the shard count); with one worker — or `n <= 1` — it runs inline in
/// the caller with no synchronization at all. Results are identical to
/// `(0..n).map(f).collect()` whenever `f` is a pure function of its
/// index, at every worker count and chunk size.
///
/// # Panics
///
/// Propagates the first panic raised by `f` after the job drains
/// (remaining shards are abandoned; already-computed results are
/// leaked, not dropped).
pub fn par_run<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = thread_count().min(n);
    par_run_chunked(n, default_chunk(n, workers), f)
}

/// [`par_run`] with an explicit shard size (`chunk` items per shard).
/// The chunk size affects scheduling only, never results.
pub fn par_run_chunked<U, F>(n: usize, chunk: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = thread_count().min(n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots = SlotVec::new(n);
    let writer = slots.writer();
    par_shards(n, chunk, |range| {
        for i in range {
            writer.write(i, f(i));
        }
    });
    // SAFETY: `par_shards` partitions 0..n into disjoint shards and
    // returns only after every shard ran, so every slot is written
    // exactly once.
    unsafe { slots.into_vec() }
}

/// Raw shard fan-out: runs `shard_fn` over a chunked partition of
/// `0..n` on the pool. This is the arena-friendly primitive — a caller
/// checks per-worker scratch out of an [`crate::arena::ArenaPool`] once
/// per *shard* and writes results through a [`SlotWriter`] — and the
/// building block of [`par_run_chunked`].
///
/// Every index in `0..n` is covered by exactly one `shard_fn`
/// invocation. With one worker (or when nested inside another job) the
/// shards run inline in input order.
pub fn par_shards<F>(n: usize, chunk: usize, shard_fn: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = thread_count().min(n);
    Runtime::global().run_shards(workers, shard_ranges(n, chunk), &shard_fn);
}

/// [`par_shards`] under a watchdog: shards not started by `deadline`
/// are abandoned (a shard in flight always completes — items are never
/// interrupted midway), a pool worker still busy past the grace period
/// is flagged as stalled, and a panicking job is recorded in the
/// [`quarantine_log`] before its panic is rethrown. Returns the
/// [`JobReport`] accounting for completed versus abandoned items.
///
/// Unlike [`par_shards`], coverage of `0..n` is **not** guaranteed when
/// the deadline fires: callers own the partial-work policy (retry,
/// degrade, or fail). The deterministic primitives above never pass a
/// deadline, so their bit-identical-output contract is unaffected.
pub fn par_shards_deadline<F>(
    n: usize,
    chunk: usize,
    deadline: Option<std::time::Instant>,
    shard_fn: F,
) -> JobReport
where
    F: Fn(Range<usize>) + Sync,
{
    let workers = thread_count().min(n.max(1));
    par_shards_deadline_with_workers(workers, n, chunk, deadline, shard_fn)
}

/// [`par_shards_deadline`] with an explicit worker count, ignoring
/// [`thread_count`] — chaos harnesses use this to exercise the pooled
/// watchdog path even on single-core hosts.
pub fn par_shards_deadline_with_workers<F>(
    workers: usize,
    n: usize,
    chunk: usize,
    deadline: Option<std::time::Instant>,
    shard_fn: F,
) -> JobReport
where
    F: Fn(Range<usize>) + Sync,
{
    Runtime::global().run_shards_deadline(
        workers.min(n.max(1)),
        shard_ranges(n, chunk),
        deadline,
        &shard_fn,
    )
}

/// [`par_shards`] with an explicit worker count, ignoring
/// [`thread_count`]. The scaling benchmarks use this to sweep widths;
/// results are width-invariant.
pub fn par_shards_with_workers<F>(workers: usize, n: usize, chunk: usize, shard_fn: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    Runtime::global().run_shards(workers.min(n), shard_ranges(n, chunk), &shard_fn);
}

/// Intra-query parallel k-NN: shards the index rows across the worker
/// pool, scans each shard independently, and merges the per-shard
/// survivors — output identical to the serial
/// [`FingerprintIndex::k_nearest_into`] scan, tie order included, for
/// every worker count (locked in by the fingerprint crate's property
/// tests over `k_nearest_sharded`, the serial form of this driver).
///
/// Sharding only pays off when a single scan is long enough to amortize
/// a pool dispatch: indexes smaller than [`SHARDED_KNN_MIN_LOCATIONS`]
/// — including the paper's 28-location hall — work products (rows ×
/// queries; one query here) under the `MOLOC_KNN_SHARD_MIN` threshold,
/// and single-worker configurations take the serial path
/// unconditionally. The serial path goes through the f32 mirror
/// prefilter ([`FingerprintIndex::k_nearest_mirror_into`], bit-identical
/// output), so falling back never costs more than the plain scan. The
/// large synthetic surveys of the scaling benchmarks are the intended
/// sharded workload.
pub fn par_k_nearest<K: MetricKernel>(
    index: &FingerprintIndex,
    query: &[f64],
    k: usize,
) -> Vec<Neighbor> {
    let n = index.len();
    let workers = thread_count();
    let mut out = Vec::with_capacity(k);
    if n < SHARDED_KNN_MIN_LOCATIONS || n < knn_shard_min() || workers <= 1 {
        BLOCK_SCRATCH.with(|scratch| {
            index.k_nearest_mirror_into::<K>(query, k, &mut scratch.borrow_mut(), &mut out);
        });
        return out;
    }
    if moloc_obs::is_enabled() {
        moloc_obs::counter_add("eval.knn.sharded_queries", 1);
    }
    let rows_per_shard = n.div_ceil(workers);
    let n_shards = n.div_ceil(rows_per_shard);
    // One shard per pool slot: each scans its own row range.
    let per_shard: Vec<Vec<ShardCandidate>> = par_run_chunked(n_shards, 1, |s| {
        let rows = s * rows_per_shard..((s + 1) * rows_per_shard).min(n);
        let mut scratch = KnnScratch::with_k(k);
        let mut survivors = Vec::with_capacity(k);
        index.shard_candidates::<K>(query, k, rows, &mut scratch, &mut survivors);
        survivors
    });
    let mut merged: Vec<ShardCandidate> = per_shard.into_iter().flatten().collect();
    index.merge_shard_candidates::<K>(k, &mut merged, &mut out);
    out
}

/// Multi-query parallel k-NN: shards **blocks of queries** (not rows of
/// one query) across the worker pool, each shard running one
/// cache-blocked Q×L scan ([`FingerprintIndex::k_nearest_block_into`],
/// DESIGN.md §15). `queries` is a flat row-major `Q × ap_count` buffer;
/// the result holds one neighbor list per query, in query order,
/// **bit-identical** to Q serial [`FingerprintIndex::k_nearest_into`]
/// scans (each query's selection is independent, so the shard
/// boundaries never affect results).
///
/// Query sharding fixes the grain-size problem of per-row sharding:
/// each unit of work is a full Q'×L tile scan with register-blocked
/// accumulators, so the pool dispatch amortizes even on mid-size
/// indexes. Work products (rows × queries) under the
/// `MOLOC_KNN_SHARD_MIN` threshold, single-query inputs, and
/// single-worker configurations run one blocked scan in the caller.
///
/// # Panics
///
/// Panics when `ap_count` is zero, `queries.len()` is not a multiple of
/// it, or `k` is zero.
pub fn par_k_nearest_block<K: MetricKernel>(
    index: &FingerprintIndex,
    queries: &[f64],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let ap = index.ap_count();
    assert!(ap > 0, "blocked parallel k-NN needs at least one AP");
    assert_eq!(
        queries.len() % ap,
        0,
        "flat query buffer must be a multiple of the AP count"
    );
    let q_count = queries.len() / ap;
    if q_count == 0 {
        return Vec::new();
    }
    let workers = thread_count();
    let scan_range = |range: Range<usize>| -> Vec<Vec<Neighbor>> {
        BLOCK_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            let mut block = QueryBlock::new(ap);
            for q in range.clone() {
                block.push(&queries[q * ap..(q + 1) * ap]);
            }
            let mut out = BlockNeighbors::new();
            index.k_nearest_block_into::<K>(&mut block, k, scratch, &mut out);
            (0..range.len()).map(|q| out.query(q).to_vec()).collect()
        })
    };
    let work = index.len().saturating_mul(q_count);
    if workers <= 1 || q_count <= 1 || work < knn_shard_min() {
        return scan_range(0..q_count);
    }
    if moloc_obs::is_enabled() {
        moloc_obs::counter_add("eval.knn.block_dispatches", 1);
    }
    let per_shard = q_count.div_ceil(workers.min(q_count));
    let n_shards = q_count.div_ceil(per_shard);
    par_run_chunked(n_shards, 1, |s| {
        scan_range(s * per_shard..((s + 1) * per_shard).min(q_count))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Order-preserving parallel map over a slice: `par_map(items, f)` is
/// `items.iter().map(f).collect()` spread over the worker pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_run(items.len(), |i| f(&items[i]))
}

/// [`par_map`] with an explicit shard size.
pub fn par_map_chunked<T, U, F>(items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_run_chunked(items.len(), chunk, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that arm the process-global worker override.
    static OVERRIDE_GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn par_run_preserves_index_order() {
        let out = par_run(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..100).map(|i| i * 3 + 1).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        let parallel = par_map(&items, |x| x.wrapping_mul(0x9E37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_run(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_run(1, |i| i + 7), vec![7]);
        assert_eq!(par_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
    }

    #[test]
    fn chunk_size_never_changes_results() {
        let reference: Vec<u64> = (0..199u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        for chunk in [1usize, 2, 3, 7, 50, 199, 1000] {
            let chunked =
                par_run_chunked(199, chunk, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(chunked, reference, "chunk {chunk} diverged");
        }
    }

    #[test]
    fn worker_override_never_changes_results() {
        let _gate = OVERRIDE_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let reference: Vec<u64> = (0..173u64).map(|i| i.wrapping_mul(0x2545F491)).collect();
        for workers in [1usize, 2, 3, 8] {
            set_worker_override(Some(workers));
            let out = par_run(173, |i| (i as u64).wrapping_mul(0x2545F491));
            assert_eq!(out, reference, "override {workers} diverged");
        }
        set_worker_override(None);
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Simulate varying item cost: heavier work for low indices so
        // late items finish first on other threads.
        let out = par_run(64, |i| {
            let spins = if i < 8 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn par_shards_with_workers_covers_everything_at_any_width() {
        use std::sync::atomic::AtomicU64;
        for workers in [1usize, 2, 5, 8] {
            let flags: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            par_shards_with_workers(workers, 97, 4, |range| {
                for i in range {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                flags.iter().all(|f| f.load(Ordering::Relaxed) == 1),
                "width {workers} missed or repeated an item"
            );
        }
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn par_k_nearest_matches_serial_scan_above_and_below_threshold() {
        use moloc_fingerprint::db::FingerprintDb;
        use moloc_fingerprint::fingerprint::Fingerprint;
        use moloc_fingerprint::index::SquaredEuclidean;
        use moloc_geometry::LocationId;

        let _gate = OVERRIDE_GATE.lock().unwrap_or_else(|e| e.into_inner());
        // Deterministic synthetic survey with deliberate rank ties
        // (values quantized to a small alphabet).
        let build = |locations: u32| {
            let fps = (0..locations)
                .map(|i| {
                    let v = (0..6)
                        .map(|a| -40.0 - f64::from((i * 7 + a * 13) % 23))
                        .collect::<Vec<f64>>();
                    (LocationId::new(i + 1), Fingerprint::new(v))
                })
                .collect::<Vec<_>>();
            moloc_fingerprint::index::FingerprintIndex::build(
                &FingerprintDb::from_fingerprints(fps).expect("valid db"),
            )
        };
        let query = [-45.0, -52.0, -47.0, -60.0, -44.0, -58.0];
        // shard_min 0 forces the row-sharded path wherever the location
        // floor allows it; the default keeps mid-size indexes serial.
        for shard_min in [None, Some(0)] {
            for locations in [64u32, 1024] {
                let index = build(locations);
                let mut scratch = KnnScratch::with_k(8);
                let mut serial = Vec::new();
                index.k_nearest_into::<SquaredEuclidean>(&query, 8, &mut scratch, &mut serial);
                for workers in [1usize, 2, 4, 8] {
                    set_worker_override(Some(workers));
                    set_shard_min_override(shard_min);
                    let sharded = par_k_nearest::<SquaredEuclidean>(&index, &query, 8);
                    assert_eq!(
                        sharded, serial,
                        "{locations} locations, {workers} workers, {shard_min:?} shard min"
                    );
                }
                set_worker_override(None);
                set_shard_min_override(None);
            }
        }
    }

    #[test]
    fn par_k_nearest_block_matches_serial_scans_at_any_width() {
        use moloc_fingerprint::db::FingerprintDb;
        use moloc_fingerprint::fingerprint::Fingerprint;
        use moloc_fingerprint::index::SquaredEuclidean;
        use moloc_geometry::LocationId;

        let _gate = OVERRIDE_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let fps = (0..300u32)
            .map(|i| {
                let v = (0..6)
                    .map(|a| -40.0 - f64::from((i * 7 + a * 13) % 23))
                    .collect::<Vec<f64>>();
                (LocationId::new(i + 1), Fingerprint::new(v))
            })
            .collect::<Vec<_>>();
        let index = moloc_fingerprint::index::FingerprintIndex::build(
            &FingerprintDb::from_fingerprints(fps).expect("valid db"),
        );
        let queries: Vec<f64> = (0..17u32)
            .flat_map(|q| (0..6).map(move |a| -41.0 - f64::from((q * 11 + a * 5) % 19)))
            .collect();
        let mut scratch = KnnScratch::with_k(8);
        let serial: Vec<Vec<Neighbor>> = (0..17)
            .map(|q| {
                let mut out = Vec::new();
                index.k_nearest_into::<SquaredEuclidean>(
                    &queries[q * 6..(q + 1) * 6],
                    8,
                    &mut scratch,
                    &mut out,
                );
                out
            })
            .collect();
        for (workers, shard_min) in [(1, None), (2, Some(0)), (4, Some(0)), (8, None)] {
            set_worker_override(Some(workers));
            set_shard_min_override(shard_min);
            let blocked = par_k_nearest_block::<SquaredEuclidean>(&index, &queries, 8);
            assert_eq!(
                blocked, serial,
                "{workers} workers, {shard_min:?} shard min"
            );
        }
        set_worker_override(None);
        set_shard_min_override(None);
    }

    #[test]
    fn resolve_shard_min_accepts_any_integer_and_defaults_when_unset() {
        assert_eq!(resolve_shard_min(Some("0")), Ok(0));
        assert_eq!(resolve_shard_min(Some(" 4096 ")), Ok(4096));
        assert_eq!(resolve_shard_min(None), Ok(KNN_SHARD_MIN_WORK));
    }

    #[test]
    fn resolve_honors_sane_env_values() {
        assert_eq!(resolve_thread_count(Some("1"), 8), Ok(1));
        assert_eq!(resolve_thread_count(Some(" 6 "), 8), Ok(6));
        assert_eq!(resolve_thread_count(Some("32"), 8), Ok(32));
        assert_eq!(resolve_thread_count(None, 8), Ok(8));
        // A platform that cannot report parallelism still yields 1.
        assert_eq!(resolve_thread_count(None, 0), Ok(1));
        assert_eq!(resolve_thread_count(Some("3"), 0), Ok(3));
    }

    #[test]
    fn resolve_clamps_absurd_requests() {
        // MOLOC_THREADS=1000000 used to be taken literally and spawn a
        // million scoped threads; now it caps at 4x the parallelism.
        assert_eq!(resolve_thread_count(Some("1000000"), 8), Ok(32));
        assert_eq!(resolve_thread_count(Some(&usize::MAX.to_string()), 2), Ok(8));
    }

    #[test]
    fn malformed_thread_counts_are_typed_errors_not_silent_fallbacks() {
        // Regression: `MOLOC_THREADS=fuor` used to run the whole
        // evaluation serial without a word. Now the error names the
        // knob and echoes the rejected string.
        for bad in ["zero", "0", "", "fuor", "1e3", "-2"] {
            let err = resolve_thread_count(Some(bad), 8).unwrap_err();
            assert_eq!(
                err,
                MolocError::invalid_config_value("MOLOC_THREADS", bad),
                "{bad:?} must be rejected"
            );
            assert!(err.to_string().contains("MOLOC_THREADS"));
        }
    }

    #[test]
    fn resolve_chunk_accepts_positive_integers_and_rejects_the_rest() {
        assert_eq!(resolve_chunk(Some("4")), Ok(Some(4)));
        assert_eq!(resolve_chunk(Some(" 12 ")), Ok(Some(12)));
        assert_eq!(resolve_chunk(None), Ok(None));
        for bad in ["0", "nope", ""] {
            assert_eq!(
                resolve_chunk(Some(bad)),
                Err(MolocError::invalid_config_value("MOLOC_CHUNK", bad)),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn malformed_shard_min_is_a_typed_error() {
        let err = resolve_shard_min(Some("-3")).unwrap_err();
        assert_eq!(
            err,
            MolocError::invalid_config_value("MOLOC_KNN_SHARD_MIN", "-3")
        );
        assert!(err.to_string().contains("-3"));
    }

    #[test]
    fn validate_env_passes_in_a_clean_environment() {
        // CI may legitimately pin these variables; validation must
        // accept whatever the ambient (working) environment holds.
        assert_eq!(validate_env(), Ok(()));
    }

    #[test]
    fn default_chunk_targets_four_shards_per_worker() {
        // With MOLOC_CHUNK unset the rule is pure arithmetic; when the
        // ambient process pins it, this test exercises the pin instead.
        match chunk_override() {
            None => {
                assert_eq!(default_chunk(32, 4), 2);
                assert_eq!(default_chunk(3, 4), 1);
                assert_eq!(default_chunk(1000, 1), 250);
                assert_eq!(default_chunk(0, 8), 1);
            }
            Some(pinned) => {
                assert_eq!(default_chunk(32, 4), pinned);
            }
        }
    }
}
