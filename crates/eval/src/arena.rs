//! Per-worker arenas of reusable localization scratch.
//!
//! The hot evaluation loops (`localize_moloc_with`, `localize_wifi`,
//! `setting_with`) process thousands of traces, and before this module
//! each trace allocated its own working set: a `BatchLocalizer`'s
//! candidate/weight buffers, the k-NN heap slots, and the time-series
//! scratch behind `analyze_trace`. An [`ArenaPool`] turns that into a
//! checkout/return cycle at **shard** granularity: a worker checks one
//! scratch bundle out when it picks up a shard of traces, reuses it for
//! every trace in the shard, and returns it (buffers intact, contents
//! cleared) when the shard ends. After the first few shards warm the
//! pool, steady-state evaluation performs zero hot-path allocation.
//!
//! The pool is a plain `Mutex<Vec<T>>` — the lock is taken twice per
//! *shard* (dozens-to-hundreds of traces), not per trace, so contention
//! is negligible and a lock-free freelist would buy nothing. Scratch
//! never carries results across items (every checkout is reset by the
//! factory contract), so pooling cannot perturb determinism.

use std::sync::Mutex;

/// A pool of reusable scratch values, checked out per shard.
///
/// `checkout()` pops a recycled value or builds a fresh one with the
/// factory; dropping the returned [`ArenaGuard`] pushes the value back.
/// The pool never shrinks and holds at most one value per concurrently
/// active shard (≈ the worker count).
pub struct ArenaPool<'f, T> {
    free: Mutex<Vec<T>>,
    factory: &'f (dyn Fn() -> T + Sync),
}

impl<'f, T> ArenaPool<'f, T> {
    /// Creates an empty pool; `factory` builds a value on a cold
    /// checkout. The factory must return scratch in a cleared state,
    /// and recyclers must return it the same way (see
    /// [`ArenaGuard::drop`]).
    pub fn new(factory: &'f (dyn Fn() -> T + Sync)) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            factory,
        }
    }

    /// Checks a scratch value out of the pool (recycled when warm,
    /// freshly built when cold).
    pub fn checkout(&self) -> ArenaGuard<'_, 'f, T> {
        let recycled = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            free.pop()
        };
        ArenaGuard {
            pool: self,
            value: Some(recycled.unwrap_or_else(|| (self.factory)())),
        }
    }

    /// Number of values currently parked in the pool (for tests).
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// RAII checkout from an [`ArenaPool`]; derefs to the scratch value and
/// returns it to the pool on drop.
pub struct ArenaGuard<'p, 'f, T> {
    pool: &'p ArenaPool<'f, T>,
    value: Option<T>,
}

impl<T> ArenaGuard<'_, '_, T> {
    /// Consumes the guard, keeping the value out of the pool. Used when
    /// the scratch is handed to an engine that returns it separately.
    pub fn take(mut self) -> T {
        self.value.take().expect("guard value present until drop")
    }
}

impl<T> std::ops::Deref for ArenaGuard<'_, '_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("guard value present until drop")
    }
}

impl<T> std::ops::DerefMut for ArenaGuard<'_, '_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("guard value present until drop")
    }
}

impl<T> Drop for ArenaGuard<'_, '_, T> {
    fn drop(&mut self) {
        if let Some(value) = self.value.take() {
            let mut free = self.pool.free.lock().unwrap_or_else(|e| e.into_inner());
            free.push(value);
        }
    }
}

/// Returns a value to a pool directly (the counterpart of
/// [`ArenaGuard::take`] for scratch that round-tripped through an
/// engine).
pub fn give_back<T>(pool: &ArenaPool<'_, T>, value: T) {
    let mut free = pool.free.lock().unwrap_or_else(|e| e.into_inner());
    free.push(value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn checkout_recycles_instead_of_rebuilding() {
        let built = AtomicUsize::new(0);
        let factory = move || {
            built.fetch_add(1, Ordering::Relaxed);
            Vec::<u64>::with_capacity(64)
        };
        let pool = ArenaPool::new(&factory);
        {
            let mut a = pool.checkout();
            a.push(1);
        }
        assert_eq!(pool.idle(), 1);
        {
            let b = pool.checkout();
            // Recycled: capacity survives, so no second build.
            assert!(b.capacity() >= 64);
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_checkouts_each_get_their_own_value() {
        let factory = || vec![0u8; 8];
        let pool = ArenaPool::new(&factory);
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.idle(), 0);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn take_and_give_back_round_trip() {
        let factory = Vec::<u32>::new;
        let pool = ArenaPool::new(&factory);
        let mut v = pool.checkout().take();
        v.push(9);
        assert_eq!(pool.idle(), 0);
        give_back(&pool, v);
        assert_eq!(pool.idle(), 1);
    }
}
