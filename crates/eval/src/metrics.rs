//! Localization metrics.
//!
//! The paper measures accuracy as the fraction of estimates that hit
//! the true reference location and reports errors (distance between
//! estimated and true location) as CDFs, means, and maxima.

use crate::pipeline::PassOutcome;
use moloc_stats::ecdf::Ecdf;

/// Summary statistics over a set of pass outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizationSummary {
    /// Number of scored passes.
    pub passes: usize,
    /// Fraction of exact-location hits.
    pub accuracy: f64,
    /// Mean error in meters.
    pub mean_error_m: f64,
    /// Maximum error in meters.
    pub max_error_m: f64,
    /// Median error in meters.
    pub median_error_m: f64,
}

/// Flattens nested per-trace outcomes.
pub fn flatten(outcomes: &[Vec<PassOutcome>]) -> Vec<PassOutcome> {
    outcomes.iter().flatten().copied().collect()
}

/// Summarizes outcomes.
///
/// # Panics
///
/// Panics on an empty slice — a run that scored nothing is a harness
/// bug, not a result.
pub fn summarize(outcomes: &[PassOutcome]) -> LocalizationSummary {
    assert!(!outcomes.is_empty(), "cannot summarize zero outcomes");
    let errors = error_ecdf(outcomes);
    let accurate = outcomes.iter().filter(|o| o.is_accurate()).count();
    LocalizationSummary {
        passes: outcomes.len(),
        accuracy: accurate as f64 / outcomes.len() as f64,
        mean_error_m: errors.mean().expect("non-empty"),
        max_error_m: errors.max().expect("non-empty"),
        median_error_m: errors.median().expect("non-empty"),
    }
}

/// The empirical CDF of the localization errors.
pub fn error_ecdf(outcomes: &[PassOutcome]) -> Ecdf {
    outcomes.iter().map(|o| o.error_m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;

    fn outcome(truth: u32, estimate: u32, error_m: f64) -> PassOutcome {
        PassOutcome {
            trace_index: 0,
            pass_index: 0,
            truth: LocationId::new(truth),
            estimate: LocationId::new(estimate),
            error_m,
        }
    }

    #[test]
    fn summary_counts_accuracy_and_errors() {
        let outcomes = vec![
            outcome(1, 1, 0.0),
            outcome(2, 2, 0.0),
            outcome(3, 7, 8.0),
            outcome(4, 5, 4.0),
        ];
        let s = summarize(&outcomes);
        assert_eq!(s.passes, 4);
        assert!((s.accuracy - 0.5).abs() < 1e-12);
        assert!((s.mean_error_m - 3.0).abs() < 1e-12);
        assert_eq!(s.max_error_m, 8.0);
    }

    #[test]
    fn flatten_preserves_order_and_count() {
        let nested = vec![
            vec![outcome(1, 1, 0.0), outcome(2, 3, 2.0)],
            vec![outcome(4, 4, 0.0)],
        ];
        let flat = flatten(&nested);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[2].truth, LocationId::new(4));
    }

    #[test]
    fn ecdf_reflects_error_distribution() {
        let outcomes = vec![outcome(1, 1, 0.0), outcome(2, 5, 6.0)];
        let e = error_ecdf(&outcomes);
        assert_eq!(e.fraction_at_or_below(0.0), 0.5);
        assert_eq!(e.fraction_at_or_below(6.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero outcomes")]
    fn empty_summary_panics() {
        let _ = summarize(&[]);
    }
}
