//! The simulated office-hall testbed (paper Fig. 5 and Sec. VI-A).
//!
//! 40.8 m × 16 m, 28 reference locations on a 7×4 grid, 6 sparsely
//! placed APs whose rough symmetry about the hall's long axis creates
//! the fingerprint twins the paper reports (pairs of locations in
//! mirrored rows), plus partition boards that make some geographically
//! close pairs non-adjacent on foot — the consistency hazard of
//! Sec. IV-A.

use moloc_geometry::floorplan::{FloorPlan, Wall};
use moloc_geometry::polygon::Aabb;
use moloc_geometry::{ReferenceGrid, Vec2, WalkGraph};
use moloc_motion::builder::MapReference;
use moloc_radio::ap::AccessPoint;
use moloc_radio::pathloss::LogDistance;
use moloc_radio::sampler::RadioEnvironment;
use moloc_radio::Dbm;

/// Channel and layout knobs of the simulated hall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HallConfig {
    /// Per-scan temporal noise sigma, dB.
    pub temporal_sigma_db: f64,
    /// Static shadow-fading sigma, dB (small: large values would break
    /// the twin symmetry the paper observed).
    pub shadowing_sigma_db: f64,
    /// Shadowing correlation length, m.
    pub shadowing_correlation_m: f64,
    /// Seed for the static channel.
    pub seed: u64,
}

impl Default for HallConfig {
    fn default() -> Self {
        Self {
            temporal_sigma_db: 6.0,
            shadowing_sigma_db: 1.5,
            shadowing_correlation_m: 3.0,
            seed: 20130707,
        }
    }
}

/// The assembled testbed.
#[derive(Debug, Clone)]
pub struct OfficeHall {
    /// The reference-location grid (ids 1–28 as in Fig. 5).
    pub grid: ReferenceGrid,
    /// The walkable aisle graph.
    pub graph: WalkGraph,
    /// The 6-AP radio environment.
    pub env: RadioEnvironment,
    /// Map-derived reference values for motion-database sanitation.
    pub map: MapReference,
}

impl OfficeHall {
    /// Builds the testbed with default channel parameters.
    pub fn paper() -> Self {
        Self::with_config(HallConfig::default())
    }

    /// Builds the testbed with explicit channel parameters.
    pub fn with_config(config: HallConfig) -> Self {
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(40.8, 16.0)).expect("valid hall bounds");
        let mut plan = FloorPlan::new(bounds);
        // Partition boards: block a row-0 aisle between columns 2 and 3
        // and two row-2/row-3 vertical aisles — close pairs that are not
        // mutually walkable.
        plan.add_wall(Wall::partition(
            Vec2::new(17.5, 12.2),
            Vec2::new(17.5, 16.0),
            6.0,
        ));
        plan.add_wall(Wall::partition(
            Vec2::new(25.0, 4.0),
            Vec2::new(33.2, 4.0),
            6.0,
        ));
        // Shelving along the south wall: radio-only attenuation.
        plan.add_wall(Wall::attenuator(
            Vec2::new(5.0, 0.8),
            Vec2::new(15.0, 0.8),
            3.0,
        ));

        // Fig. 5's grid: ids 1–7 in the top row at y = 14, rows 4 m
        // apart, columns 5.8 m apart.
        let grid =
            ReferenceGrid::new(Vec2::new(3.0, 14.0), 7, 4, 5.8, 4.0).expect("valid paper grid");
        let graph = WalkGraph::from_grid(&grid, &plan);

        // 6 APs near the hall's long axis (y ≈ 8): mirrored rows see
        // near-identical path losses → fingerprint twins.
        let env = RadioEnvironment::builder(plan)
            .seed(config.seed)
            .ap(AccessPoint::new(0, Vec2::new(4.0, 8.3), -18.0))
            .ap(AccessPoint::new(1, Vec2::new(11.0, 7.7), -18.0))
            .ap(AccessPoint::new(2, Vec2::new(18.0, 8.2), -18.0))
            .ap(AccessPoint::new(3, Vec2::new(25.0, 7.8), -18.0))
            .ap(AccessPoint::new(4, Vec2::new(32.0, 8.3), -18.0))
            .ap(AccessPoint::new(5, Vec2::new(38.0, 7.7), -18.0))
            .path_loss(LogDistance::indoor_office())
            .shadowing_sigma_db(config.shadowing_sigma_db, config.shadowing_correlation_m)
            .temporal_sigma_db(config.temporal_sigma_db)
            .noise_floor(Dbm::new(-95.0))
            .build()
            .expect("valid AP deployment");

        let map = MapReference::new(&grid, &graph);
        Self {
            grid,
            graph,
            env,
            map,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::shortest_path::dijkstra;
    use moloc_geometry::LocationId;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    #[test]
    fn hall_dimensions_match_paper() {
        let hall = OfficeHall::paper();
        assert_eq!(hall.grid.len(), 28);
        let b = hall.env.plan().bounds();
        assert!((b.width() - 40.8).abs() < 1e-9);
        assert!((b.height() - 16.0).abs() < 1e-9);
        assert_eq!(hall.env.aps().len(), 6);
    }

    #[test]
    fn partitions_cut_some_aisles_but_graph_stays_connected() {
        let hall = OfficeHall::paper();
        // Row-0 aisle L3–L4 crosses the first partition.
        assert!(!hall.graph.are_adjacent(l(3), l(4)));
        // The second partition cuts two vertical aisles.
        assert!(!hall.graph.are_adjacent(l(19), l(26)));
        assert!(!hall.graph.are_adjacent(l(20), l(27)));
        // Still fully connected.
        let sp = dijkstra(&hall.graph, l(1));
        for id in hall.grid.ids() {
            assert!(sp.distance(id).is_some(), "{id} unreachable");
        }
    }

    #[test]
    fn mirrored_rows_are_fingerprint_twins() {
        // Mean fingerprints of vertically mirrored locations (rows 0↔3
        // and 1↔2) should be far more alike than those of horizontal
        // neighbors.
        let hall = OfficeHall::with_config(HallConfig {
            shadowing_sigma_db: 0.0, // isolate the geometric symmetry
            ..HallConfig::default()
        });
        let mean = |id: LocationId| hall.env.mean_scan(hall.grid.position(id));
        let dist = |a: &[moloc_radio::Dbm], b: &[moloc_radio::Dbm]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x.value() - y.value()).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        // L10 (row 1, col 2) mirrors to L17 (row 2, col 2).
        let twins = dist(&mean(l(10)), &mean(l(17)));
        let neighbors = dist(&mean(l(10)), &mean(l(11)));
        assert!(
            twins < neighbors / 2.0,
            "twin distance {twins} vs neighbor distance {neighbors}"
        );
    }

    #[test]
    fn far_twins_exist_across_outer_rows() {
        // Rows 0 and 3 are 12 m apart — the "highly spaced locations
        // with similar fingerprints" of Sec. III.
        let hall = OfficeHall::with_config(HallConfig {
            shadowing_sigma_db: 0.0,
            ..HallConfig::default()
        });
        let mean = |id: LocationId| hall.env.mean_scan(hall.grid.position(id));
        let dist = |a: &[moloc_radio::Dbm], b: &[moloc_radio::Dbm]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x.value() - y.value()).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        // L2 (row 0, col 1) vs L23 (row 3, col 1): 12 m apart.
        let twins = dist(&mean(l(2)), &mean(l(23)));
        assert!(twins < 4.0, "outer-row twin distance {twins} dB");
        assert!((hall.grid.distance(l(2), l(23)) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = OfficeHall::paper();
        let b = OfficeHall::paper();
        let p = a.grid.position(l(14));
        let sa = a.env.mean_scan(p);
        let sb = b.env.mean_scan(p);
        assert_eq!(sa, sb);
    }
}
