//! Keyed cache of per-setting serving artifacts.
//!
//! Several experiments run over the same `(floorplan, AP layout, seed)`
//! scenario: Fig. 6, Fig. 7, Fig. 8, Table I and most ablations all
//! start by building a [`Setting`] (fingerprint + motion databases) and
//! then the serving artifacts derived from it — the columnar
//! [`FingerprintIndex`] and the [`MotionKernel`]. Those builds dominate
//! the non-localization time of a `repro --exp all` run, and before
//! this cache each experiment rebuilt them from scratch.
//!
//! [`ScenarioCache`] memoizes both layers:
//!
//! * settings are keyed by `(n_aps, sanitation, counting)` — the full
//!   input of [`EvalWorld::setting_with`];
//! * kernels are keyed by the setting key **plus** the kernel-relevant
//!   [`MoLocConfig`] fields (`α`, `β`, floors), so a `k` sweep reuses
//!   one kernel while a window sweep gets one per `(α, β)`.
//!
//! The cache is `Sync`: experiments that fan AP counts out on the
//! worker pool share it, and each artifact is built exactly once even
//! under concurrent first access (per-key `OnceLock`s are initialized
//! outside the map lock, so one slow build never serializes the rest).

use crate::pipeline::{CountingMethod, EvalWorld, Setting};
use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_fingerprint::index::FingerprintIndex;
use moloc_motion::filter::SanitationConfig;
use moloc_motion::kernel::MotionKernel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One setting plus the serving artifact derived from it.
#[derive(Debug)]
pub struct SettingArtifacts {
    /// The fingerprint + motion databases.
    pub setting: Setting,
    /// The columnar index flattened from `setting.fdb`.
    pub index: FingerprintIndex,
}

/// Identity of a built setting: every input of
/// [`EvalWorld::setting_with`] except the (fixed) world itself.
/// Float thresholds are keyed by their bit patterns — settings are
/// equal exactly when their configurations are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SettingKey {
    n_aps: usize,
    /// Published database epoch the artifacts serve (DESIGN.md §17).
    /// 0 is the static site-survey database — every pre-live path;
    /// live-update experiments key their per-epoch artifacts here so
    /// refreshed databases never alias the seed.
    epoch: u64,
    counting: u8,
    sanitation: [u64; 5],
    min_samples: usize,
    coarse_enabled: bool,
    fine_enabled: bool,
}

impl SettingKey {
    fn new(n_aps: usize, sanitation: SanitationConfig, counting: CountingMethod) -> Self {
        Self {
            n_aps,
            epoch: 0,
            counting: match counting {
                CountingMethod::Continuous => 0,
                CountingMethod::Discrete => 1,
            },
            sanitation: [
                sanitation.coarse_direction_deg.to_bits(),
                sanitation.coarse_offset_m.to_bits(),
                sanitation.fine_sigma.to_bits(),
                sanitation.min_direction_std_deg.to_bits(),
                sanitation.min_offset_std_m.to_bits(),
            ],
            min_samples: sanitation.min_samples,
            coarse_enabled: sanitation.coarse_enabled,
            fine_enabled: sanitation.fine_enabled,
        }
    }
}

/// The kernel-relevant configuration fields, by bit pattern (`k` and
/// the degenerate floor do not enter the kernel tables).
type KernelKey = [u64; 4];

fn kernel_key(config: &MoLocConfig) -> KernelKey {
    let kc = config.kernel_config();
    [
        kc.alpha_deg.to_bits(),
        kc.beta_m.to_bits(),
        kc.missing_pair_prob.to_bits(),
        kc.stationary_offset_std_m.to_bits(),
    ]
}

type Slot<T> = Arc<OnceLock<Arc<T>>>;

/// The memoizing artifact store for one evaluation world.
#[derive(Debug)]
pub struct ScenarioCache<'w> {
    world: &'w EvalWorld,
    settings: Mutex<HashMap<SettingKey, Slot<SettingArtifacts>>>,
    kernels: Mutex<HashMap<(SettingKey, KernelKey), Slot<MotionKernel>>>,
    setting_builds: AtomicUsize,
    kernel_builds: AtomicUsize,
}

impl<'w> ScenarioCache<'w> {
    /// An empty cache over `world`.
    pub fn new(world: &'w EvalWorld) -> Self {
        Self {
            world,
            settings: Mutex::new(HashMap::new()),
            kernels: Mutex::new(HashMap::new()),
            setting_builds: AtomicUsize::new(0),
            kernel_builds: AtomicUsize::new(0),
        }
    }

    /// The underlying world.
    pub fn world(&self) -> &'w EvalWorld {
        self.world
    }

    /// The paper-default setting (CSC counting, paper sanitation) at
    /// `n_aps` APs, plus its index — built on first request.
    pub fn artifacts(&self, n_aps: usize) -> Arc<SettingArtifacts> {
        self.artifacts_with(n_aps, SanitationConfig::paper(), CountingMethod::Continuous)
    }

    /// Arbitrary-configuration variant of [`ScenarioCache::artifacts`].
    pub fn artifacts_with(
        &self,
        n_aps: usize,
        sanitation: SanitationConfig,
        counting: CountingMethod,
    ) -> Arc<SettingArtifacts> {
        let key = SettingKey::new(n_aps, sanitation, counting);
        let slot = self.slot(&self.settings, key);
        count_access("eval.cache.setting", slot.get().is_some());
        slot.get_or_init(|| {
            self.setting_builds.fetch_add(1, Ordering::Relaxed);
            let setting = self.world.setting_with(n_aps, sanitation, counting);
            let index = FingerprintIndex::build(&setting.fdb);
            Arc::new(SettingArtifacts { setting, index })
        })
        .clone()
    }

    /// Epoch-keyed variant of [`ScenarioCache::artifacts`] for
    /// live-update experiments. The cache cannot rebuild crowdsourced
    /// state itself, so artifacts for a published epoch are produced by
    /// the caller's `build` closure (typically from a
    /// `moloc_live::DbSnapshot`) and memoized under
    /// `(n_aps, epoch, paper defaults)`; repeated arms over the same
    /// epoch reuse one build. `epoch` 0 shares the entry the static
    /// paths use, so `build` must reproduce the site-survey seed there.
    pub fn artifacts_epoch(
        &self,
        n_aps: usize,
        epoch: u64,
        build: impl FnOnce() -> SettingArtifacts,
    ) -> Arc<SettingArtifacts> {
        let key = SettingKey {
            epoch,
            ..SettingKey::new(n_aps, SanitationConfig::paper(), CountingMethod::Continuous)
        };
        let slot = self.slot(&self.settings, key);
        count_access("eval.cache.setting", slot.get().is_some());
        slot.get_or_init(|| {
            self.setting_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(build())
        })
        .clone()
    }

    /// The motion kernel for the paper-default setting at `n_aps` under
    /// `config` — built on first request per distinct kernel
    /// configuration. Also builds the setting if needed.
    pub fn kernel(&self, n_aps: usize, config: &MoLocConfig) -> Arc<MotionKernel> {
        self.kernel_with(
            n_aps,
            SanitationConfig::paper(),
            CountingMethod::Continuous,
            config,
        )
    }

    /// Arbitrary-configuration variant of [`ScenarioCache::kernel`].
    pub fn kernel_with(
        &self,
        n_aps: usize,
        sanitation: SanitationConfig,
        counting: CountingMethod,
        config: &MoLocConfig,
    ) -> Arc<MotionKernel> {
        let setting_key = SettingKey::new(n_aps, sanitation, counting);
        let slot = self.slot(&self.kernels, (setting_key, kernel_key(config)));
        count_access("eval.cache.kernel", slot.get().is_some());
        slot.get_or_init(|| {
            let artifacts = self.artifacts_with(n_aps, sanitation, counting);
            self.kernel_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(build_kernel(&artifacts.setting.motion_db, config))
        })
        .clone()
    }

    /// Builds the paper-default artifacts for every AP count in `n_aps`
    /// concurrently on the worker pool (each build itself fans its
    /// trace analysis out, and nested jobs run inline, so prewarming
    /// composes with the runtime instead of deadlocking it). Experiment
    /// drivers call this once up front so their per-AP-count loops run
    /// entirely against warm artifacts.
    pub fn prewarm(&self, n_aps: &[usize]) {
        crate::parallel::par_map(n_aps, |&n| {
            self.artifacts(n);
        });
    }

    /// How many settings have been built (not served from cache).
    pub fn setting_builds(&self) -> usize {
        self.setting_builds.load(Ordering::Relaxed)
    }

    /// How many kernels have been built (not served from cache).
    pub fn kernel_builds(&self) -> usize {
        self.kernel_builds.load(Ordering::Relaxed)
    }

    /// Fetches (inserting if absent) the per-key init slot. The map
    /// lock is held only for the lookup; the expensive build runs under
    /// the slot's own `OnceLock`.
    fn slot<K: std::hash::Hash + Eq + Copy, T>(
        &self,
        map: &Mutex<HashMap<K, Slot<T>>>,
        key: K,
    ) -> Slot<T> {
        map.lock()
            .expect("cache lock poisoned")
            .entry(key)
            .or_default()
            .clone()
    }
}

/// Records one cache access as a hit (the slot was already initialized)
/// or a miss, under `<layer>_hits` / `<layer>_misses`. Under concurrent
/// first access several callers may each record a miss while only one
/// builds; the counters are advisory load indicators — the
/// authoritative build totals are [`ScenarioCache::setting_builds`] and
/// [`ScenarioCache::kernel_builds`].
fn count_access(layer: &'static str, hit: bool) {
    if !moloc_obs::is_enabled() {
        return;
    }
    let name = match (layer, hit) {
        ("eval.cache.setting", true) => "eval.cache.setting_hits",
        ("eval.cache.setting", false) => "eval.cache.setting_misses",
        ("eval.cache.kernel", true) => "eval.cache.kernel_hits",
        _ => "eval.cache.kernel_misses",
    };
    moloc_obs::counter_add(name, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::par_run;

    #[test]
    fn repeated_requests_build_once() {
        let world = EvalWorld::small(31);
        let cache = ScenarioCache::new(&world);
        let a = cache.artifacts(6);
        let b = cache.artifacts(6);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.setting_builds(), 1);
        // The cached artifacts match a direct build.
        let direct = world.setting(6);
        assert_eq!(a.setting.fdb, direct.fdb);
        assert_eq!(a.setting.motion_db, direct.motion_db);
        assert_eq!(a.index, FingerprintIndex::build(&direct.fdb));
    }

    #[test]
    fn distinct_keys_build_distinct_settings() {
        let world = EvalWorld::small(31);
        let cache = ScenarioCache::new(&world);
        cache.artifacts(5);
        cache.artifacts(6);
        cache.artifacts_with(6, SanitationConfig::disabled(), CountingMethod::Continuous);
        cache.artifacts_with(6, SanitationConfig::paper(), CountingMethod::Discrete);
        assert_eq!(cache.setting_builds(), 4);
        // Re-requesting any of them adds no builds.
        cache.artifacts(5);
        cache.artifacts_with(6, SanitationConfig::paper(), CountingMethod::Discrete);
        assert_eq!(cache.setting_builds(), 4);
    }

    #[test]
    fn kernel_cache_keys_on_kernel_config_only() {
        let world = EvalWorld::small(31);
        let cache = ScenarioCache::new(&world);
        let paper = MoLocConfig::paper();
        let k1 = cache.kernel(6, &paper);
        // k and the degenerate floor do not affect the kernel tables.
        let k2 = cache.kernel(6, &MoLocConfig { k: 2, ..paper });
        assert!(Arc::ptr_eq(&k1, &k2));
        assert_eq!(cache.kernel_builds(), 1);
        // A window change does.
        let k3 = cache.kernel(
            6,
            &MoLocConfig {
                alpha_deg: 45.0,
                ..paper
            },
        );
        assert!(!Arc::ptr_eq(&k1, &k3));
        assert_eq!(cache.kernel_builds(), 2);
        // The kernel request also warmed the setting cache.
        assert_eq!(cache.setting_builds(), 1);
    }

    #[test]
    fn epoch_keys_never_alias_and_memoize_per_epoch() {
        let world = EvalWorld::small(31);
        let cache = ScenarioCache::new(&world);
        let seed = cache.artifacts(6);
        // Epoch 1 artifacts are caller-built and distinct from the seed.
        let e1 = cache.artifacts_epoch(6, 1, || {
            let setting = world.setting(6);
            let index = FingerprintIndex::build(&setting.fdb);
            SettingArtifacts { setting, index }
        });
        assert!(!Arc::ptr_eq(&seed, &e1));
        assert_eq!(cache.setting_builds(), 2);
        // Same epoch again: served from cache, closure not invoked.
        let e1_again = cache.artifacts_epoch(6, 1, || unreachable!("memoized"));
        assert!(Arc::ptr_eq(&e1, &e1_again));
        // Epoch 0 shares the static entry.
        let e0 = cache.artifacts_epoch(6, 0, || unreachable!("seed already built"));
        assert!(Arc::ptr_eq(&seed, &e0));
        assert_eq!(cache.setting_builds(), 2);
    }

    #[test]
    fn concurrent_first_access_builds_once() {
        let world = EvalWorld::small(32);
        let cache = ScenarioCache::new(&world);
        let artifacts = par_run(8, |_| cache.artifacts(6));
        assert_eq!(cache.setting_builds(), 1);
        for a in &artifacts[1..] {
            assert!(Arc::ptr_eq(&artifacts[0], a));
        }
    }
}
