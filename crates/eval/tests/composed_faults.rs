//! Degradation-ladder behavior under *composed* faults (ISSUE 8,
//! satellite 3).
//!
//! Drives the full pipeline through every point of an
//! `ApDropout × SensorGap × RlmCorruption` intensity grid, with all
//! three injectors stacked in one [`FaultSuite`]. Three invariants:
//!
//! 1. **No panic anywhere** — `localize_faulted` itself asserts a
//!    finite, normalized posterior after every pass, so merely
//!    completing the grid proves the degradation ladder absorbs every
//!    combination without NaN or mass loss.
//! 2. **Zero-intensity bit-identity** — the all-zero grid corner (all
//!    injectors at exact no-op settings) reproduces the clean
//!    pipeline's estimates exactly.
//! 3. **Monotone rung ordering** — because each injector draws
//!    `unit(hash(seed, ...)) < rate`, the corrupted sets are *nested*
//!    across rates under a fixed seed: every AP reading dropped at
//!    rate 0.3 is also dropped at 0.7. Holding the other axes fixed,
//!    the masked-query and no-observed-AP rung counts must therefore
//!    be non-decreasing along the dropout axis.

use std::sync::OnceLock;

use moloc_core::config::MoLocConfig;
use moloc_eval::experiments::robustness::{localize_faulted, DegradationCounts};
use moloc_eval::pipeline::{EvalWorld, PassOutcome, Setting};
use moloc_faults::plan::FaultSuite;
use moloc_faults::{ApDropout, RlmCorruption, SensorGap};

const SEED: u64 = 2013;
const N_APS: usize = 6;

const DROPOUT_RATES: [f64; 3] = [0.0, 0.3, 0.7];
const GAP_COUNTS: [usize; 2] = [0, 2];
const RLM_FRACTIONS: [f64; 2] = [0.0, 0.5];

struct Fixture {
    world: EvalWorld,
    setting: Setting,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = EvalWorld::small(SEED);
        let setting = world.setting(N_APS);
        Fixture { world, setting }
    })
}

fn suite(dropout: f64, gaps: usize, rlm: f64) -> FaultSuite {
    FaultSuite::new()
        .with(ApDropout {
            rate: dropout,
            seed: SEED,
        })
        .with(SensorGap {
            gaps_per_trace: gaps,
            gap_s: 3.0,
            seed: SEED ^ 0x4741_5053,
        })
        .with(RlmCorruption {
            fraction: rlm,
            seed: SEED ^ 0x524C_4D43,
        })
}

fn run_point(dropout: f64, gaps: usize, rlm: f64) -> (Vec<Vec<PassOutcome>>, DegradationCounts) {
    let fx = fixture();
    localize_faulted(
        &fx.world,
        &fx.setting,
        MoLocConfig::paper(),
        &suite(dropout, gaps, rlm),
    )
}

fn estimates(outcomes: &[Vec<PassOutcome>]) -> Vec<u32> {
    outcomes
        .iter()
        .flatten()
        .map(|o| o.estimate.get())
        .collect()
}

/// Every point of the composed grid, replayed with the `moloc-verify`
/// invariant layer recording: the Eq. 7 posterior must be a probability
/// simplex (finite, non-negative, summing to 1 ± 1e-12) and every k-NN
/// result must honor the rank/tie contract on *every* degradation rung
/// and fault mix — not just the clean corner the unit tests cover.
/// Recording mode (rather than panic mode) keeps the sweep running so
/// one failure reports the full violation list.
#[test]
fn composed_grid_upholds_verify_invariants_on_every_rung() {
    moloc_verify::enable_recording();
    let _ = moloc_verify::take_violations();
    for &gaps in &GAP_COUNTS {
        for &rlm in &RLM_FRACTIONS {
            for &dropout in &DROPOUT_RATES {
                let (_, counts) = run_point(dropout, gaps, rlm);
                assert!(counts.passes > 0, "grid point scored no passes");
                let violations = moloc_verify::take_violations();
                assert!(
                    violations.is_empty(),
                    "invariant violations at dropout {dropout}, gaps {gaps}, \
                     rlm {rlm}: {violations:?}"
                );
            }
        }
    }
    moloc_verify::set_enabled(false);
}

#[test]
fn zero_intensity_composition_is_bit_identical_to_clean() {
    let fx = fixture();
    let (clean, clean_counts) = localize_faulted(
        &fx.world,
        &fx.setting,
        MoLocConfig::paper(),
        &FaultSuite::new(),
    );
    let (zeroed, zero_counts) = run_point(0.0, 0, 0.0);
    assert_eq!(
        estimates(&zeroed),
        estimates(&clean),
        "zero-intensity composed suite diverged from the clean pipeline"
    );
    assert_eq!(
        zero_counts, clean_counts,
        "zero-intensity composed suite changed the rung occupancy"
    );
    assert_eq!(
        zero_counts.masked, 0,
        "clean pipeline must never take the masked-metric rung"
    );
}

#[test]
fn composed_grid_completes_with_monotone_rungs_along_dropout() {
    // Every grid point must complete (localize_faulted panics on any
    // non-finite or unnormalized posterior), score the same number of
    // passes, and — with the other axes held fixed — occupy the
    // masked/no-observed rungs monotonically in the dropout rate.
    let mut passes_everywhere: Option<usize> = None;
    for &gaps in &GAP_COUNTS {
        for &rlm in &RLM_FRACTIONS {
            let mut prev: Option<DegradationCounts> = None;
            for &dropout in &DROPOUT_RATES {
                let (_, counts) = run_point(dropout, gaps, rlm);
                assert!(counts.passes > 0, "grid point scored no passes");
                match passes_everywhere {
                    None => passes_everywhere = Some(counts.passes),
                    Some(expected) => assert_eq!(
                        counts.passes, expected,
                        "fault intensity changed the number of scored passes \
                         (dropout {dropout}, gaps {gaps}, rlm {rlm})"
                    ),
                }
                if let Some(prev) = prev {
                    assert!(
                        counts.masked >= prev.masked,
                        "masked rung regressed along the dropout axis \
                         (dropout {dropout}, gaps {gaps}, rlm {rlm}): \
                         {} < {}",
                        counts.masked,
                        prev.masked
                    );
                    assert!(
                        counts.no_observed >= prev.no_observed,
                        "no-observed rung regressed along the dropout axis \
                         (dropout {dropout}, gaps {gaps}, rlm {rlm}): \
                         {} < {}",
                        counts.no_observed,
                        prev.no_observed
                    );
                }
                prev = Some(counts);
            }
            // The top dropout rate must actually exercise the ladder —
            // a grid whose rungs never fire proves nothing.
            let top = prev.expect("grid row ran");
            assert!(
                top.masked > 0,
                "dropout 0.7 never took the masked rung (gaps {gaps}, rlm {rlm})"
            );
        }
    }
}
