//! Kill-matrix integration tests for the crash-safe streaming session
//! layer (ISSUE 8 acceptance).
//!
//! Three claims, each a hard bit-identity rather than a tolerance:
//!
//! 1. A zero-fault in-order stream through [`StreamingSession`] is
//!    bit-identical (estimates and FNV digest) to driving the
//!    `BatchLocalizer` recursion directly.
//! 2. **In-process kill matrix** — dropping a logged session after
//!    *every* arrival prefix, recovering from its checkpoint log, and
//!    replaying the suffix reproduces the uninterrupted estimates and
//!    final encoded state byte-for-byte. Kill points cover every
//!    checkpoint boundary by construction (`checkpoint_interval = 2`,
//!    kills at 1..len).
//! 3. **Child-process kill matrix** — same property when the killed
//!    session is a real OS process that `std::process::exit(9)`s
//!    mid-stream (the moral equivalent of SIGKILL between syscalls):
//!    the parent recovers from the orphaned log file and converges to
//!    the reference digest. [`child_kill_entry`] is the env-gated
//!    re-entry point; it is a no-op under a normal `cargo test` run.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;

use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_eval::pipeline::{analyze_trace_indexed, EvalWorld, Setting};
use moloc_fingerprint::index::FingerprintIndex;
use moloc_motion::kernel::MotionKernel;
use moloc_sensors::steps::StepDetector;
use moloc_session::{Estimate, ScanEvent, SessionConfig, StreamingSession};

const SEED: u64 = 2013;
const N_APS: usize = 6;

/// Env gates for the child-process re-entry (absent under a normal
/// test run, so `child_kill_entry` passes as a no-op).
const ENV_KILL_AT: &str = "MOLOC_TEST_KILL_AT";
const ENV_KILL_LOG: &str = "MOLOC_TEST_KILL_LOG";

struct Fixture {
    world: EvalWorld,
    setting: Setting,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = EvalWorld::small(SEED);
        let setting = world.setting(N_APS);
        Fixture { world, setting }
    })
}

fn session_config() -> SessionConfig {
    SessionConfig {
        reorder_capacity: 8,
        // Checkpoint every other delivery, so the kill matrix lands
        // both exactly on and between checkpoint boundaries.
        checkpoint_interval: 2,
        fsync: false,
    }
}

/// The in-order event stream of one test trace, exactly as the batch
/// pipeline feeds it (seq = pass index, scan truncated to the
/// setting's AP count, motion from the preceding inter-pass segment).
fn event_stream(trace_index: usize) -> Vec<ScanEvent> {
    let fx = fixture();
    let index = FingerprintIndex::build(&fx.setting.fdb);
    let trace = &fx.world.corpus.test[trace_index];
    let analysis = analyze_trace_indexed(
        trace,
        &fx.setting.fdb,
        &index,
        &fx.world.hall,
        &StepDetector::default(),
        fx.setting.counting,
        fx.setting.n_aps,
    );
    trace
        .scans
        .iter()
        .enumerate()
        .map(|(i, scan)| ScanEvent {
            event_id: i as u64,
            seq: i as u64,
            scan: scan[..fx.setting.n_aps].to_vec(),
            motion: if i == 0 {
                None
            } else {
                analysis.measurements[i - 1]
            },
        })
        .collect()
}

/// FNV-1a digest over an estimate stream (same byte layout as the
/// chaos experiment's artifact digest).
fn digest(estimates: &[Estimate]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in estimates {
        eat(&e.seq.to_le_bytes());
        eat(&u64::from(e.location.get()).to_le_bytes());
        eat(&[e.flags.bits()]);
    }
    h
}

/// Streams `events` through an uninterrupted logless session, returning
/// (estimates, final encoded state).
fn reference_run(
    index: &FingerprintIndex,
    kernel: &MotionKernel,
    events: &[ScanEvent],
) -> (Vec<Estimate>, Vec<u8>) {
    let mut session =
        StreamingSession::new(index, kernel, MoLocConfig::paper(), session_config());
    let mut out = Vec::new();
    for event in events {
        session
            .ingest(event.clone(), &mut out)
            .expect("reference ingest");
    }
    session.finish(&mut out).expect("reference finish");
    (out, session.state().encode().expect("state encodes"))
}

fn scratch_log(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "moloc_recovery_{}_{tag}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Recovers from `path`, replays the arrival suffix, and asserts the
/// replayed estimates and final state are bit-identical to the
/// reference. Returns whether recovery resumed from a checkpoint.
fn recover_and_verify(
    index: &FingerprintIndex,
    kernel: &MotionKernel,
    events: &[ScanEvent],
    path: &PathBuf,
    reference: &[Estimate],
    reference_state: &[u8],
    label: &str,
) -> bool {
    let recovered = StreamingSession::recover(
        index,
        kernel,
        MoLocConfig::paper(),
        session_config(),
        path,
    )
    .expect("recover opens the log");
    assert!(
        recovered.report.corruption.is_none(),
        "{label}: clean kill must not corrupt the log: {:?}",
        recovered.report.corruption
    );
    let mut session = recovered.session;
    let replay_from = usize::try_from(session.ingested()).unwrap();
    assert!(
        replay_from <= events.len(),
        "{label}: checkpoint claims more arrivals than exist"
    );
    let already = usize::try_from(session.delivered()).unwrap();
    let mut out = Vec::new();
    for event in &events[replay_from..] {
        session.ingest(event.clone(), &mut out).expect("replay ingest");
    }
    session.finish(&mut out).expect("replay finish");
    assert_eq!(
        out[..],
        reference[already..],
        "{label}: replayed estimates diverged from the uninterrupted run"
    );
    assert_eq!(
        session.state().encode().expect("state encodes"),
        reference_state,
        "{label}: recovered final state is not bit-identical"
    );
    recovered.resumed
}

#[test]
fn zero_fault_in_order_streaming_matches_batch_digest() {
    let fx = fixture();
    let index = FingerprintIndex::build(&fx.setting.fdb);
    let config = MoLocConfig::paper();
    let kernel = build_kernel(&fx.setting.motion_db, &config);
    for trace_index in 0..fx.world.corpus.test.len() {
        let events = event_stream(trace_index);
        let mut engine = BatchLocalizer::new_with_index(&index, &kernel, config);
        let batch: Vec<Estimate> = events
            .iter()
            .map(|e| {
                let location = engine
                    .observe_slice(&e.scan, e.motion)
                    .expect("clean query matches the database");
                Estimate {
                    seq: e.seq,
                    location,
                    flags: engine.last_flags(),
                }
            })
            .collect();
        let (streamed, _) = reference_run(&index, &kernel, &events);
        assert_eq!(
            streamed, batch,
            "trace {trace_index}: streaming diverged from the batch recursion"
        );
        assert_eq!(
            digest(&streamed),
            digest(&batch),
            "trace {trace_index}: digest mismatch"
        );
    }
}

#[test]
fn in_process_kill_matrix_recovers_bit_identically() {
    let fx = fixture();
    let index = FingerprintIndex::build(&fx.setting.fdb);
    let config = MoLocConfig::paper();
    let kernel = build_kernel(&fx.setting.motion_db, &config);
    let events = event_stream(0);
    let (reference, reference_state) = reference_run(&index, &kernel, &events);

    let mut resumed_count = 0usize;
    for kill in 1..events.len() {
        let path = scratch_log(&format!("inproc_{kill}"));
        {
            // The doomed session: ingest the prefix, then drop without
            // `finish` — everything past the last checkpoint append is
            // lost, exactly like a SIGKILL between syscalls.
            let mut doomed = StreamingSession::with_log(
                &index,
                &kernel,
                config,
                session_config(),
                &path,
            )
            .expect("open log");
            let mut sink = Vec::new();
            for event in &events[..kill] {
                doomed.ingest(event.clone(), &mut sink).expect("doomed ingest");
            }
        }
        let resumed = recover_and_verify(
            &index,
            &kernel,
            &events,
            &path,
            &reference,
            &reference_state,
            &format!("in-process kill at {kill}"),
        );
        resumed_count += usize::from(resumed);
        let _ = std::fs::remove_file(&path);
    }
    // Early kills may predate the first checkpoint (fresh replay is
    // correct there), but the matrix as a whole must exercise genuine
    // checkpoint resumption.
    assert!(
        resumed_count >= events.len() / 2,
        "only {resumed_count}/{} kills resumed from a checkpoint",
        events.len() - 1
    );
}

/// Child-process re-entry point: under `MOLOC_TEST_KILL_AT`, streams
/// that many arrivals of trace 0 into `MOLOC_TEST_KILL_LOG` and dies
/// with `exit(9)` — no destructors, no `finish`. Without the env gate
/// (a normal test run) it is a no-op.
#[test]
fn child_kill_entry() {
    let Ok(kill) = std::env::var(ENV_KILL_AT) else {
        return;
    };
    let kill: usize = kill.parse().expect("numeric kill point");
    let path = std::env::var(ENV_KILL_LOG).expect("log path env");
    let fx = fixture();
    let index = FingerprintIndex::build(&fx.setting.fdb);
    let config = MoLocConfig::paper();
    let kernel = build_kernel(&fx.setting.motion_db, &config);
    let events = event_stream(0);
    let mut session = StreamingSession::with_log(
        &index,
        &kernel,
        config,
        session_config(),
        &path,
    )
    .expect("child opens log");
    let mut sink = Vec::new();
    for event in &events[..kill.min(events.len())] {
        session.ingest(event.clone(), &mut sink).expect("child ingest");
    }
    std::process::exit(9);
}

#[test]
fn child_process_kill_matrix_recovers_bit_identically() {
    let fx = fixture();
    let index = FingerprintIndex::build(&fx.setting.fdb);
    let config = MoLocConfig::paper();
    let kernel = build_kernel(&fx.setting.motion_db, &config);
    let events = event_stream(0);
    let (reference, reference_state) = reference_run(&index, &kernel, &events);

    let exe = std::env::current_exe().expect("test binary path");
    let kills = [3usize, events.len() / 2, events.len() - 1];
    for kill in kills {
        let path = scratch_log(&format!("child_{kill}"));
        let status = Command::new(&exe)
            .args(["child_kill_entry", "--exact", "--nocapture"])
            .env(ENV_KILL_AT, kill.to_string())
            .env(ENV_KILL_LOG, &path)
            .status()
            .expect("spawn child kill process");
        assert_eq!(
            status.code(),
            Some(9),
            "child at kill {kill} must die with exit(9), got {status:?}"
        );
        recover_and_verify(
            &index,
            &kernel,
            &events,
            &path,
            &reference,
            &reference_state,
            &format!("child-process kill at {kill}"),
        );
        let _ = std::fs::remove_file(&path);
    }
}
