//! The parallel evaluation engine must be bit-identical to a serial
//! run: the worker pool collects results by index and every work item
//! derives its randomness from its own seed, so thread scheduling can
//! never leak into outputs. These tests run the same workloads with
//! `MOLOC_THREADS` unset (ambient parallelism) and compare them with a
//! forced single-thread run spawned as a child process (the variable is
//! read per call, but setting env vars in-process is unsafe under
//! threads — so the serial arm runs in a clean child).
//!
//! Spawning a child per comparison is heavy; instead the serial arm
//! here *is* in-process, using the pool's own contract: `par_run`
//! documents equality with `(0..n).map(f)`, and the workloads below
//! check that equality end-to-end through the real pipeline.

use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_core::tracker::MoLocTracker;
use moloc_eval::parallel::{par_run, set_worker_override, thread_count};
use moloc_eval::pipeline::{analyze_trace, localize_moloc, localize_wifi, EvalWorld, PassOutcome};
use moloc_sensors::steps::StepDetector;

#[test]
fn thread_count_env_contract() {
    // Whatever the ambient setting, the pool reports at least one
    // worker and the experiments below must not depend on the count.
    assert!(thread_count() >= 1);
}

#[test]
fn par_run_equals_serial_map_for_pure_functions() {
    let serial: Vec<u64> = (0..193u64)
        .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D))
        .collect();
    let parallel = par_run(193, |i| (i as u64).wrapping_mul(0x2545F4914F6CDD1D));
    assert_eq!(serial, parallel);
}

#[test]
fn parallel_wifi_outcomes_are_byte_identical_to_serial() {
    let world = EvalWorld::small(2013);
    let setting = world.setting(6);
    let parallel = localize_wifi(&world, &setting);
    // Serial reference: the same per-trace computation, plain map. The
    // pipeline's own fan-out must reproduce it exactly.
    let serial: Vec<_> = (0..world.corpus.test.len())
        .map(|i| localize_wifi_single_trace(&world, &setting, i))
        .collect();
    assert_eq!(parallel, serial);
}

/// Runs the WiFi baseline restricted to one trace by slicing the
/// parallel result of a fresh call — localize_wifi over the same
/// databases is a pure function, so per-trace rows are comparable
/// across calls.
fn localize_wifi_single_trace(
    world: &EvalWorld,
    setting: &moloc_eval::pipeline::Setting,
    index: usize,
) -> Vec<moloc_eval::pipeline::PassOutcome> {
    localize_wifi(world, setting)[index].clone()
}

#[test]
fn repeated_parallel_moloc_runs_are_identical() {
    // Two runs under the ambient thread count: scheduling differs,
    // output must not. (The per-trace tracker sessions share only
    // read-only state — databases, kernel — and PassOutcome derives
    // PartialEq over every field, so this is a full bitwise check of
    // estimates and errors.)
    let world = EvalWorld::small(2013);
    let setting = world.setting(6);
    let config = MoLocConfig::paper();
    let a = localize_moloc(&world, &setting, config);
    let b = localize_moloc(&world, &setting, config);
    assert_eq!(a, b);
    // And the trace fan-out really covered every test trace in order.
    assert_eq!(a.len(), world.corpus.test.len());
    for (per_trace, trace) in a.iter().zip(&world.corpus.test) {
        assert_eq!(per_trace.len(), trace.pass_count());
        for (pass_index, o) in per_trace.iter().enumerate() {
            assert_eq!(o.pass_index, pass_index);
        }
    }
}

#[test]
fn serial_child_process_matches_parallel_parent() {
    // The authoritative serial-vs-parallel check: rerun this test
    // binary's helper in a child with MOLOC_THREADS=1 and compare its
    // digest of the MoLoc outcomes with ours (computed under ambient
    // parallelism).
    let digest = outcome_digest();
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["helper_print_outcome_digest", "--exact", "--nocapture"])
        .env("MOLOC_THREADS", "1")
        .env("MOLOC_DIGEST_MODE", "1")
        .output()
        .expect("spawn serial child");
    assert!(out.status.success(), "child failed: {out:?}");
    // --nocapture interleaves the digest with libtest's own output, so
    // scan for the marker anywhere rather than at line starts.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let serial_digest = stdout
        .split("DIGEST=")
        .nth(1)
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_hexdigit)
                .collect::<String>()
        })
        .expect("child printed a digest");
    assert_eq!(
        serial_digest, digest,
        "serial (MOLOC_THREADS=1) and parallel outcomes diverged"
    );
}

#[test]
fn outcome_digest_is_invariant_across_worker_counts() {
    // The persistent pool's contract: worker count is a throughput
    // knob, never an output knob. Force the pool through 1, 2, 3, and
    // 8 workers in-process (the override reshapes shard deques and
    // steal patterns without touching the environment) and require the
    // full-pipeline digest to be byte-identical every time.
    let baseline = outcome_digest();
    for workers in [1usize, 2, 3, 8] {
        set_worker_override(Some(workers));
        let digest = outcome_digest();
        set_worker_override(None);
        assert_eq!(
            digest, baseline,
            "digest diverged at {workers} forced workers"
        );
    }
}

#[test]
fn serial_child_digest_survives_thread_chunk_and_block_settings() {
    // Environment-level matrix: MOLOC_THREADS, MOLOC_CHUNK, and the
    // blocked-scan toggles are parsed once per process, so each cell
    // runs as a clean child. Chunk size shifts shard boundaries
    // (including chunk=1, maximal stealing, and a chunk larger than
    // the trace count, one shard); MOLOC_BLOCK=0 forces the per-query
    // k-NN loop and MOLOC_MIRROR=0 the pure-f64 blocked kernel. None
    // of them may leak into outcomes.
    let digest = outcome_digest();
    let exe = std::env::current_exe().expect("test binary path");
    for (threads, chunk, block, mirror) in [
        ("2", None, None, None),
        ("3", None, None, None),
        ("8", None, None, None),
        ("2", Some("1"), None, None),
        ("3", Some("7"), None, None),
        ("2", Some("1024"), None, None),
        // Blocked path disabled entirely: per-query scans only.
        ("2", None, Some("0"), None),
        ("3", Some("7"), Some("0"), None),
        // Blocked path on, f32 mirror off: pure-f64 lane kernel.
        ("2", None, Some("1"), Some("0")),
        // Both explicitly on (the defaults, spelled out).
        ("3", None, Some("1"), Some("1")),
    ] {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["helper_print_outcome_digest", "--exact", "--nocapture"])
            .env("MOLOC_THREADS", threads)
            .env("MOLOC_DIGEST_MODE", "1");
        match chunk {
            Some(c) => cmd.env("MOLOC_CHUNK", c),
            None => cmd.env_remove("MOLOC_CHUNK"),
        };
        match block {
            Some(b) => cmd.env("MOLOC_BLOCK", b),
            None => cmd.env_remove("MOLOC_BLOCK"),
        };
        match mirror {
            Some(m) => cmd.env("MOLOC_MIRROR", m),
            None => cmd.env_remove("MOLOC_MIRROR"),
        };
        let out = cmd.output().expect("spawn digest child");
        assert!(
            out.status.success(),
            "child {threads}/{chunk:?}/{block:?}/{mirror:?} failed: {out:?}"
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let child_digest = stdout
            .split("DIGEST=")
            .nth(1)
            .map(|rest| {
                rest.chars()
                    .take_while(char::is_ascii_hexdigit)
                    .collect::<String>()
            })
            .expect("child printed a digest");
        assert_eq!(
            child_digest, digest,
            "MOLOC_THREADS={threads} MOLOC_CHUNK={chunk:?} MOLOC_BLOCK={block:?} \
             MOLOC_MIRROR={mirror:?} diverged from the parent"
        );
    }
}

#[test]
fn outcome_digest_is_invariant_across_block_and_mirror_toggles() {
    // The blocked multi-query scan and its f32 mirror are throughput
    // knobs, never output knobs: flipping them in-process (the
    // override shadows the once-parsed env toggles) must reproduce the
    // ambient digest bit-for-bit.
    use moloc_fingerprint::block::{set_block_override, set_mirror_override};
    let baseline = outcome_digest();
    for (block, mirror) in [
        (Some(false), None),
        (Some(true), Some(false)),
        (Some(true), Some(true)),
    ] {
        set_block_override(block);
        set_mirror_override(mirror);
        let digest = outcome_digest();
        set_block_override(None);
        set_mirror_override(None);
        assert_eq!(
            digest, baseline,
            "block={block:?} mirror={mirror:?} diverged from ambient"
        );
    }
}

/// FNV-1a over every field of every outcome, in order — any reordering
/// or numerical difference changes the digest.
fn digest(outcomes: &[Vec<PassOutcome>]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for o in outcomes.iter().flatten() {
        eat(&(o.trace_index as u64).to_le_bytes());
        eat(&(o.pass_index as u64).to_le_bytes());
        eat(&o.truth.get().to_le_bytes());
        eat(&o.estimate.get().to_le_bytes());
        eat(&o.error_m.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

fn outcome_digest() -> String {
    let world = EvalWorld::small(2013);
    let setting = world.setting(6);
    digest(&localize_moloc(&world, &setting, MoLocConfig::paper()))
}

#[test]
fn batch_engine_digest_matches_exact_scan_tracker() {
    // The pipeline now runs each trace through the zero-allocation
    // `BatchLocalizer` over the columnar `FingerprintIndex`. The
    // reference arm below is the pre-index path: a serial, per-query
    // `MoLocTracker` forced onto the exact `dyn Dissimilarity` scan.
    // Identical digests prove the optimized engine is bit-identical,
    // not merely statistically equivalent.
    let world = EvalWorld::small(2013);
    let setting = world.setting(6);
    let config = MoLocConfig::paper();
    let batch = localize_moloc(&world, &setting, config);

    let detector = StepDetector::default();
    let kernel = build_kernel(&setting.motion_db, &config);
    let reference: Vec<Vec<PassOutcome>> = (0..world.corpus.test.len())
        .map(|trace_index| {
            let trace = &world.corpus.test[trace_index];
            let analysis = analyze_trace(
                trace,
                &setting.fdb,
                &world.hall,
                &detector,
                setting.counting,
                setting.n_aps,
            );
            let mut tracker =
                MoLocTracker::new_with_kernel(&setting.fdb, &setting.motion_db, config, &kernel)
                    .with_exact_scan();
            trace
                .passes
                .iter()
                .zip(&trace.scans)
                .enumerate()
                .map(|(pass_index, (pass, scan))| {
                    let query = moloc_fingerprint::fingerprint::Fingerprint::new(
                        scan[..setting.n_aps].to_vec(),
                    );
                    let motion = if pass_index == 0 {
                        None
                    } else {
                        analysis.measurements[pass_index - 1]
                    };
                    let estimate = tracker
                        .observe(&query, motion)
                        .expect("query length matches database");
                    PassOutcome {
                        trace_index,
                        pass_index,
                        truth: pass.location,
                        estimate,
                        error_m: world.hall.grid.distance(pass.location, estimate),
                    }
                })
                .collect()
        })
        .collect();

    assert_eq!(
        digest(&batch),
        digest(&reference),
        "batched index path diverged from the per-query exact-scan path"
    );
}

#[test]
fn helper_print_outcome_digest() {
    // Only does work when invoked as the serial child of
    // `serial_child_process_matches_parallel_parent`; a normal test run
    // skips the (expensive) recomputation.
    if std::env::var("MOLOC_DIGEST_MODE").as_deref() == Ok("1") {
        println!("DIGEST={}", outcome_digest());
    }
}
