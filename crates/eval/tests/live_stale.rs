//! End-to-end wiring of the `StaleSnapshot` fault injector into the
//! live-update serving loop: the injector's per-step `hold` decision
//! drives [`LiveLocalizer::observe_held`], pinning the reader to its
//! cached epoch while the publisher races ahead. Correctness must be
//! preserved by design — every published epoch is a valid database —
//! so a held trace still localizes; only its served epoch lags.

use moloc_core::config::MoLocConfig;
use moloc_core::tracker::MotionMeasurement;
use moloc_faults::stream::StaleSnapshot;
use moloc_geometry::polygon::Aabb;
use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
use moloc_live::{LiveLocalizer, SnapshotPublisher, UpdateLog};
use moloc_motion::builder::MapReference;
use moloc_motion::filter::SanitationConfig;
use moloc_motion::rlm::Rlm;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

/// 3×2 grid spaced 2 m in an open hall; ids 1..=6.
fn map() -> MapReference {
    let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).expect("valid grid");
    let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).expect("valid aabb"));
    let graph = WalkGraph::from_grid(&grid, &plan);
    MapReference::new(&grid, &graph)
}

fn seeded_log() -> UpdateLog {
    let mut log = UpdateLog::new(3, map(), SanitationConfig::paper()).expect("valid sanitation");
    for i in 1..=6u32 {
        let base = -30.0 - 8.0 * f64::from(i);
        log.observe_survey_sample(l(i), &[base, base - 12.0, base - 25.0])
            .expect("3-AP sample");
    }
    for k in 0..5 {
        log.observe_rlm(Rlm::new(l(1), l(2), 89.0 + f64::from(k), 2.0).expect("valid rlm"));
        log.observe_rlm(Rlm::new(l(2), l(3), 89.0 + f64::from(k), 2.0).expect("valid rlm"));
    }
    log
}

fn scan_for(log: &UpdateLog, id: u32) -> Vec<f64> {
    log.build_snapshot(0)
        .expect("snapshot builds")
        .fdb
        .fingerprint(l(id))
        .expect("location surveyed")
        .values()
        .to_vec()
}

fn east() -> Option<MotionMeasurement> {
    Some(MotionMeasurement {
        direction_deg: 90.0,
        offset_m: 2.0,
    })
}

/// Walks 1→2→3 while a new epoch publishes after the first step; the
/// injector decides per step whether the reader may adopt it.
fn run_walk(injector: &StaleSnapshot, trace: u64) -> Vec<(LocationId, u64)> {
    let mut log = seeded_log();
    let publisher = SnapshotPublisher::new(log.build_snapshot(0).expect("seed builds"));
    log.mark_published();
    let mut live = LiveLocalizer::new(publisher.reader(), MoLocConfig::paper());

    let mut path = Vec::new();
    for (step, (id, motion)) in [(1u32, None), (2, east()), (3, east())]
        .into_iter()
        .enumerate()
    {
        if step == 1 {
            // Mid-trace publish between the first and second steps.
            log.observe_survey_sample(l(2), &[-46.1, -58.0, -71.2])
                .expect("3-AP sample");
            assert!(publisher.publish(&mut log).expect("publish").published);
        }
        let hold = injector.hold(trace, step as u64);
        let scan = scan_for(&log, id);
        path.push(live.observe_held(&scan, motion, hold).expect("step scores"));
    }
    path
}

#[test]
fn zero_intensity_adopts_every_publish_like_an_uninjected_run() {
    let off = StaleSnapshot { rate: 0.0, seed: 5 };
    let path = run_walk(&off, 0);
    assert_eq!(path, vec![(l(1), 0), (l(2), 1), (l(3), 1)]);
}

#[test]
fn full_intensity_pins_the_trace_to_its_starting_epoch() {
    let on = StaleSnapshot { rate: 1.0, seed: 5 };
    let path = run_walk(&on, 0);
    // Every step held: the publish lands but this reader never adopts
    // it — and localization still succeeds on the stale (valid) epoch.
    assert_eq!(path, vec![(l(1), 0), (l(2), 0), (l(3), 0)]);
}

#[test]
fn partial_intensity_lags_adoption_deterministically() {
    let injector = StaleSnapshot { rate: 0.6, seed: 5 };
    for trace in 0..20u64 {
        let path = run_walk(&injector, trace);
        assert_eq!(path, run_walk(&injector, trace), "replayable");
        let epochs: Vec<u64> = path.iter().map(|&(_, e)| e).collect();
        // Served epochs never regress and never outrun the publisher.
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]), "monotone");
        assert!(epochs.iter().all(|&e| e <= 1));
        assert_eq!(epochs[0], 0, "publish happens after step 0");
        // The estimate track itself is fault-independent: both epochs
        // are valid databases for this walk.
        let locations: Vec<LocationId> = path.iter().map(|&(loc, _)| loc).collect();
        assert_eq!(locations, vec![l(1), l(2), l(3)]);
    }
}
