//! Oracle-vs-optimised regression seeds (ISSUE 10, satellite 3).
//!
//! `moloc-audit` sweeps broad seeded input distributions; these tests
//! pin the *adversarial corners* of each equivalence contract at fixed
//! inputs so a regression fails here first, with a readable diff,
//! before the audit gate reports a seed number:
//!
//! * exact dissimilarity ties (duplicate fingerprints) across every
//!   k-NN execution strategy — the ascending-id tie contract;
//! * masked queries, including the all-NaN blind scan;
//! * Eq. 4's exact-match branch with *multiple* zero-dissimilarity
//!   candidates splitting the mass;
//! * Eq. 7 fusion against the oracle closure when the motion database
//!   is empty (every pair at the floor prior);
//! * checkpoint frame byte-identity with the independent oracle
//!   framer.

use moloc_core::config::MoLocConfig;
use moloc_core::evaluate::evaluate_candidates;
use moloc_fingerprint::block::{
    set_block_override, set_mirror_override, BlockNeighbors, BlockScratch, QueryBlock,
};
use moloc_fingerprint::candidates::CandidateSet;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, ShardCandidate};
use moloc_fingerprint::knn::Neighbor;
use moloc_fingerprint::SquaredEuclidean;
use moloc_geometry::LocationId;
use moloc_motion::matrix::MotionDb;
use moloc_verify::oracle;

const N_APS: usize = 6;

fn l(id: u32) -> LocationId {
    LocationId::new(id)
}

/// Six locations; rows 2, 4 and 5 are byte-identical duplicates, so a
/// query near them produces exact dissimilarity ties that only the
/// ascending-id contract can order.
fn tied_db() -> FingerprintDb {
    let twin = vec![-50.0, -61.0, -47.5, -72.0, -55.0, -66.0];
    FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-40.0, -55.0, -62.0, -70.0, -48.0, -58.0])),
        (l(2), Fingerprint::new(twin.clone())),
        (l(3), Fingerprint::new(vec![-80.0, -75.0, -68.0, -59.0, -63.0, -71.0])),
        (l(4), Fingerprint::new(twin.clone())),
        (l(5), Fingerprint::new(twin)),
        (l(6), Fingerprint::new(vec![-45.0, -52.0, -66.0, -77.0, -51.0, -60.0])),
    ])
    .expect("valid db")
}

fn rows(db: &FingerprintDb) -> Vec<(LocationId, Vec<f64>)> {
    db.iter().map(|(id, fp)| (id, fp.values().to_vec())).collect()
}

fn pairs(neighbors: &[Neighbor]) -> Vec<(LocationId, f64)> {
    neighbors
        .iter()
        .map(|n| (n.location, n.dissimilarity))
        .collect()
}

#[test]
fn tied_rows_resolve_by_ascending_id_on_every_knn_path() {
    let db = tied_db();
    let rows = rows(&db);
    let index = FingerprintIndex::build(&db);
    // Equidistant-ish query sitting on the twin fingerprint: locations
    // 2, 4, 5 tie at dissimilarity 0 and must come back in id order.
    let query = vec![-50.0, -61.0, -47.5, -72.0, -55.0, -66.0];
    let k = 4;
    let expected = oracle::k_nearest(rows.iter().map(|(id, r)| (*id, r.as_slice())), &query, k);
    assert_eq!(
        expected.iter().map(|&(id, _)| id).collect::<Vec<_>>()[..3],
        [l(2), l(4), l(5)],
        "oracle fixture must actually tie"
    );

    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    index.k_nearest_into::<SquaredEuclidean>(&query, k, &mut scratch, &mut out);
    assert_eq!(pairs(&out), expected, "scalar path broke the tie contract");

    let mut block_scratch = BlockScratch::new();
    set_mirror_override(Some(true));
    index.k_nearest_mirror_into::<SquaredEuclidean>(&query, k, &mut block_scratch, &mut out);
    set_mirror_override(None);
    assert_eq!(pairs(&out), expected, "mirror path broke the tie contract");

    set_block_override(Some(true));
    let mut block = QueryBlock::new(N_APS);
    block.push(&query);
    let mut block_out = BlockNeighbors::new();
    index.k_nearest_block_into::<SquaredEuclidean>(&mut block, k, &mut block_scratch, &mut block_out);
    set_block_override(None);
    assert_eq!(
        pairs(block_out.query(0)),
        expected,
        "blocked path broke the tie contract"
    );

    // Sharded: a cut straight through the tied run (rows 2,4,5 live at
    // positions 1,3,4) so the merge must re-establish id order across
    // shard boundaries.
    let mut candidates: Vec<ShardCandidate> = Vec::new();
    let mut shard_out = Vec::new();
    for range in [0..2, 2..4, 4..index.len()] {
        index.shard_candidates::<SquaredEuclidean>(&query, k, range, &mut scratch, &mut shard_out);
        candidates.extend(shard_out.iter().copied());
    }
    index.merge_shard_candidates::<SquaredEuclidean>(k, &mut candidates, &mut out);
    assert_eq!(pairs(&out), expected, "sharded merge broke the tie contract");
}

#[test]
fn masked_and_blind_queries_match_the_oracle() {
    let db = tied_db();
    let rows = rows(&db);
    let index = FingerprintIndex::build(&db);
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();

    // Two unheard APs: surviving dims rescaled by 6/4.
    let masked = vec![-44.0, f64::NAN, -60.0, f64::NAN, -50.0, -59.0];
    let observed = index.k_nearest_masked_into(&masked, 3, &mut scratch, &mut out);
    let (expected, expected_observed) =
        oracle::k_nearest_masked(rows.iter().map(|(id, r)| (*id, r.as_slice())), &masked, 3);
    assert_eq!(observed, expected_observed);
    assert_eq!(observed, 4);
    assert_eq!(pairs(&out), expected);

    // Blind scan: nothing observed, every dissimilarity exactly 0,
    // ranks fall back to pure id order.
    let blind = vec![f64::NAN; N_APS];
    let observed = index.k_nearest_masked_into(&blind, 3, &mut scratch, &mut out);
    let (expected, _) =
        oracle::k_nearest_masked(rows.iter().map(|(id, r)| (*id, r.as_slice())), &blind, 3);
    assert_eq!(observed, 0);
    assert_eq!(pairs(&out), expected);
    assert_eq!(
        pairs(&out),
        vec![(l(1), 0.0), (l(2), 0.0), (l(3), 0.0)],
        "blind scan must degrade to id order at zero dissimilarity"
    );
}

#[test]
fn eq4_exact_match_branch_splits_mass_across_all_twins() {
    let db = tied_db();
    let index = FingerprintIndex::build(&db);
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    // Query *is* the twin fingerprint: three exact matches in the top-4.
    let query = vec![-50.0, -61.0, -47.5, -72.0, -55.0, -66.0];
    index.k_nearest_into::<SquaredEuclidean>(&query, 4, &mut scratch, &mut out);
    let set = CandidateSet::from_neighbors(&out).expect("non-empty");
    let expected = oracle::candidate_probabilities(&pairs(&out)).expect("non-degenerate");
    let got: Vec<(LocationId, f64)> = set.iter().collect();
    assert_eq!(got.len(), expected.len());
    for (&(gi, gp), &(ei, ep)) in got.iter().zip(&expected) {
        assert_eq!(gi, ei);
        assert!((gp - ep).abs() <= 1e-15, "{gi:?}: {gp} vs {ep}");
    }
    // The Eq. 4 exact-match branch: all mass split evenly across the
    // three zero-dissimilarity twins, nothing for the inexact tail.
    for &(id, p) in &got {
        if [l(2), l(4), l(5)].contains(&id) {
            assert!((p - 1.0 / 3.0).abs() <= 1e-15, "{id:?} got {p}");
        } else {
            assert_eq!(p, 0.0, "{id:?} must get no mass next to exact matches");
        }
    }
}

#[test]
fn eq7_fusion_matches_oracle_when_motion_is_untrained() {
    let config = MoLocConfig::paper();
    let db = MotionDb::new(8);
    let previous = CandidateSet::from_weights(vec![(l(1), 0.5), (l(2), 0.3), (l(3), 0.2)])
        .expect("normalizes");
    let current = CandidateSet::from_weights(vec![(l(2), 0.6), (l(3), 0.25), (l(4), 0.15)])
        .expect("normalizes");
    let (direction, offset) = (123.0, 1.7);
    let fused = evaluate_candidates(&db, &previous, &current, direction, offset, &config);
    let expected = oracle::fuse_posterior(
        &current.iter().collect::<Vec<_>>(),
        &previous.iter().collect::<Vec<_>>(),
        |from, to| {
            if from == to {
                oracle::stationary_probability(
                    offset,
                    config.alpha_deg,
                    config.beta_m,
                    config.stationary_offset_std_m,
                )
            } else {
                // Empty database: every moving pair sits at the floor.
                config.missing_pair_prob
            }
        },
        config.degenerate_total_floor,
    );
    let got: Vec<(LocationId, f64)> = fused.iter().collect();
    assert_eq!(got.len(), expected.len());
    for (&(gi, gp), &(ei, ep)) in got.iter().zip(&expected) {
        assert_eq!(gi, ei);
        assert!((gp - ep).abs() <= 1e-12, "{gi:?}: {gp} vs {ep}");
    }
}

#[test]
fn checkpoint_frames_are_byte_identical_to_the_oracle_framer() {
    for payload in [
        Vec::new(),
        vec![0u8],
        vec![0xFF; 7],
        (0..=255u8).collect::<Vec<u8>>(),
    ] {
        let session = moloc_session::checkpoint::frame_record(&payload);
        let oracled = oracle::frame_record(&payload);
        assert_eq!(
            session, oracled,
            "frame divergence for {}-byte payload",
            payload.len()
        );
        let (id, parsed, consumed) =
            oracle::parse_record(&session).expect("oracle parses session frame");
        assert_eq!(id, oracle::FRAME_VERSION);
        assert_eq!(parsed, payload);
        assert_eq!(consumed, session.len());
    }
}
