//! The observability layer must be a pure observer: turning the
//! recorder on cannot change a single bit of pipeline output, and the
//! counters it publishes must agree with the pipeline's own ground
//! truth. One sequential test keeps the process-global recorder flag
//! race-free (integration test binaries run their `#[test]`s on
//! separate threads).

use moloc_core::config::MoLocConfig;
use moloc_eval::experiments::robustness::localize_faulted;
use moloc_eval::pipeline::{localize_moloc, EvalWorld, PassOutcome};
use moloc_faults::ap::ApDropout;

/// FNV-1a over every field of every outcome, in order — any reordering
/// or numerical difference changes the digest.
fn digest(outcomes: &[Vec<PassOutcome>]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for o in outcomes.iter().flatten() {
        eat(&(o.trace_index as u64).to_le_bytes());
        eat(&(o.pass_index as u64).to_le_bytes());
        eat(&o.truth.get().to_le_bytes());
        eat(&o.estimate.get().to_le_bytes());
        eat(&o.error_m.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

#[test]
fn recorder_is_a_pure_observer() {
    let world = EvalWorld::small(2013);
    let setting = world.setting(6);
    let config = MoLocConfig::paper();

    // Baseline with the recorder off (the process default).
    assert!(!moloc_obs::is_enabled());
    let disabled = digest(&localize_moloc(&world, &setting, config));

    // The full instrumented pipeline with the recorder on must produce
    // the identical digest: metrics never feed back into computation.
    moloc_obs::enable();
    moloc_eval::observe::preregister();
    let enabled = digest(&localize_moloc(&world, &setting, config));
    assert_eq!(
        disabled, enabled,
        "enabling the metrics recorder changed pipeline output"
    );

    // The counters the recorder published must agree with the
    // pipeline's own ground truth. Run a seeded fault plan and compare
    // the degradation-rung counters against the `DegradationCounts`
    // the engine itself reports.
    moloc_obs::reset();
    moloc_eval::observe::preregister();
    let plan = ApDropout {
        rate: 0.5,
        seed: 2013,
    };
    let (outcomes, counts) = localize_faulted(&world, &setting, config, &plan);
    let snap = moloc_obs::snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0) as usize;
    assert_eq!(
        counter("core.degradation.observations"),
        counts.passes,
        "observation counter disagrees with scored passes"
    );
    assert_eq!(counter("core.degradation.masked_query"), counts.masked);
    assert_eq!(
        counter("core.degradation.no_observed_aps"),
        counts.no_observed
    );
    assert_eq!(
        counter("core.degradation.motion_fallback"),
        counts.motion_fallback
    );
    assert_eq!(
        counter("core.degradation.candidate_reset"),
        counts.candidate_reset
    );
    // The clean counter is the complement: passes where no rung fired.
    // Rungs can co-occur on a pass, so the flagged-pass count is at
    // least the largest single rung and at most the rung total.
    let clean = counter("core.degradation.clean");
    let rung_total =
        counts.masked + counts.no_observed + counts.motion_fallback + counts.candidate_reset;
    let rung_max = counts
        .masked
        .max(counts.no_observed)
        .max(counts.motion_fallback)
        .max(counts.candidate_reset);
    assert!(clean + rung_max <= counts.passes);
    assert!(clean + rung_total >= counts.passes);
    // The fault plan at 50% dropout must actually have exercised the
    // degraded rungs, otherwise this test proves nothing.
    assert!(counts.passes > 0);
    assert!(
        counts.masked + counts.no_observed > 0,
        "fault plan produced no degraded passes: {counts:?}"
    );
    assert!(!outcomes.is_empty());

    // Leave the process-global recorder the way we found it.
    moloc_obs::set_enabled(false);
    moloc_obs::reset();
}
