//! End-to-end contracts of the fault-injection harness:
//!
//! * a zero-intensity plan leaves the pipeline **bit-identical** to the
//!   uninjected run (the injectors are exact no-ops at zero),
//! * every injector at high intensity completes without panics and with
//!   normalized posteriors (asserted inside `localize_faulted`),
//! * the whole sweep is reproducible from its seed.

use moloc_core::config::MoLocConfig;
use moloc_eval::experiments::robustness;
use moloc_eval::pipeline::{localize_moloc, EvalWorld};
use moloc_faults::plan::{FaultPlan, FaultSuite};
use moloc_faults::{
    ApDropout, ApOutage, RlmCorruption, RogueAp, SensorGap, StaleDrift, TimestampJitter,
};

fn world() -> EvalWorld {
    EvalWorld::small(2013)
}

#[test]
fn zero_intensity_plan_is_bit_identical_to_clean_pipeline() {
    let world = world();
    let setting = world.setting(6);
    let config = MoLocConfig::paper();

    let clean = localize_moloc(&world, &setting, config);
    let zero = FaultSuite::new()
        .with(ApDropout { rate: 0.0, seed: 7 })
        .with(RogueAp {
            ap: 0,
            bias_db: 0.0,
            burst_rate: 0.0,
            burst_db: 0.0,
            seed: 7,
        })
        .with(StaleDrift {
            std_db: 0.0,
            seed: 7,
        })
        .with(SensorGap {
            gaps_per_trace: 0,
            gap_s: 1.0,
            seed: 7,
        })
        .with(TimestampJitter {
            std_s: 0.0,
            seed: 7,
        })
        .with(RlmCorruption {
            fraction: 0.0,
            seed: 7,
        });
    let (faulted, counts) = robustness::localize_faulted(&world, &setting, config, &zero);

    // PassOutcome PartialEq covers every estimate and error bit.
    assert_eq!(clean, faulted);
    assert_eq!(counts.masked, 0);
    assert_eq!(counts.no_observed, 0);
    assert_eq!(counts.candidate_reset, 0);
}

#[test]
fn every_injector_survives_high_intensity() {
    let world = world();
    let setting = world.setting(6);
    let config = MoLocConfig::paper();
    let plans: Vec<Box<dyn FaultPlan>> = vec![
        Box::new(ApDropout { rate: 0.9, seed: 1 }),
        Box::new(ApOutage { ap: 0 }),
        Box::new(RogueAp {
            ap: 1,
            bias_db: 15.0,
            burst_rate: 0.3,
            burst_db: 20.0,
            seed: 2,
        }),
        Box::new(StaleDrift {
            std_db: 8.0,
            seed: 3,
        }),
        Box::new(SensorGap {
            gaps_per_trace: 4,
            gap_s: 5.0,
            seed: 4,
        }),
        Box::new(TimestampJitter {
            std_s: 2.0,
            seed: 5,
        }),
        Box::new(RlmCorruption {
            fraction: 1.0,
            seed: 6,
        }),
    ];
    for plan in &plans {
        // `localize_faulted` asserts a finite, normalized posterior at
        // every step; reaching the outcome count is the no-panic proof.
        let (outcomes, counts) =
            robustness::localize_faulted(&world, &setting, config, plan.as_ref());
        assert_eq!(outcomes.len(), world.corpus.test.len(), "{}", plan.name());
        assert!(counts.passes > 0, "{}", plan.name());
    }

    // And all of them stacked at once.
    let suite = FaultSuite::new()
        .with(ApDropout { rate: 0.5, seed: 1 })
        .with(RogueAp {
            ap: 1,
            bias_db: 10.0,
            burst_rate: 0.2,
            burst_db: 15.0,
            seed: 2,
        })
        .with(StaleDrift {
            std_db: 6.0,
            seed: 3,
        })
        .with(SensorGap {
            gaps_per_trace: 3,
            gap_s: 4.0,
            seed: 4,
        })
        .with(TimestampJitter {
            std_s: 1.0,
            seed: 5,
        })
        .with(RlmCorruption {
            fraction: 0.7,
            seed: 6,
        });
    assert!(!suite.is_empty() && FaultSuite::new().is_empty());
    let (outcomes, counts) = robustness::localize_faulted(&world, &setting, config, &suite);
    assert_eq!(outcomes.len(), world.corpus.test.len());
    // Half the readings dropped: the masked rung must actually fire.
    assert!(counts.masked > 0);
}

#[test]
fn heavy_dropout_engages_degradation_ladder() {
    let world = world();
    let setting = world.setting(6);
    let config = MoLocConfig::paper();
    let plan = ApDropout {
        rate: 0.95,
        seed: 11,
    };
    let (_, counts) = robustness::localize_faulted(&world, &setting, config, &plan);
    // At 95 % dropout nearly every pass is masked and fully-blind
    // passes (uniform prior) must occur.
    assert!(counts.masked as f64 > 0.8 * counts.passes as f64);
    assert!(counts.no_observed > 0);
}

#[test]
fn sweep_is_reproducible_from_its_seed() {
    let world = world();
    let a = robustness::run(&world, 2013);
    let b = robustness::run(&world, 2013);
    // Robustness derives PartialEq over every point: bit-identical.
    assert_eq!(a, b);
    assert_eq!(a.points.len(), 12);

    // And it round-trips through its JSON artifact form.
    let json = serde_json::to_string(&a).unwrap();
    let back: robustness::Robustness = serde_json::from_str(&json).unwrap();
    assert_eq!(back, a);

    // Zero-intensity points of each axis agree with each other — all
    // three are the clean pipeline.
    let zeros: Vec<_> = a.points.iter().filter(|p| p.intensity == 0.0).collect();
    assert_eq!(zeros.len(), 3);
    for p in &zeros {
        assert_eq!(p.median_error_m, zeros[0].median_error_m, "{}", p.axis);
        assert_eq!(p.accuracy, zeros[0].accuracy, "{}", p.axis);
        assert_eq!(p.masked_share, 0.0);
    }
}
