//! Motion matching (paper Eq. 5 and Eq. 6).
//!
//! Given a measured direction `d` and offset `o`, the probability that a
//! user walked from location `i` to `j` is the product of discretized
//! Gaussian masses from the motion database:
//!
//! ```text
//! P_{i,j}(d, o) = D_{i,j}(d) · O_{i,j}(o)
//! ```
//!
//! and over a candidate *set* `S` of possible starting locations
//! (Eq. 6):
//!
//! ```text
//! P_{S,j}(d, o) = Σ_{i ∈ S} P(x = i) · P_{i,j}(d, o)
//! ```

use crate::config::MoLocConfig;
use moloc_fingerprint::candidates::CandidateSet;
use moloc_geometry::LocationId;
use moloc_motion::kernel::MotionKernel;
use moloc_motion::matrix::MotionDb;
use moloc_stats::circular::signed_diff_deg;
use moloc_stats::erf::std_normal_cdf;
use moloc_stats::gaussian::Gaussian;

/// The stay-in-place probability `P_{i,i}(d, o)`: uninformative
/// direction (`α/360`) times the `β` window of a zero-mean offset
/// Gaussian with [`MoLocConfig::stationary_offset_std_m`].
///
/// Evaluated directly through the standard normal CDF so the per-call
/// path constructs no [`Gaussian`] (the old code validated and built
/// one per invocation).
#[inline]
fn stationary_probability(offset_m: f64, config: &MoLocConfig) -> f64 {
    let inv_std = 1.0 / config.stationary_offset_std_m;
    let lo = (offset_m - config.beta_m / 2.0) * inv_std;
    let hi = (offset_m + config.beta_m / 2.0) * inv_std;
    let o_mass = (std_normal_cdf(hi) - std_normal_cdf(lo)).max(0.0);
    (config.alpha_deg / 360.0).min(1.0) * o_mass
}

/// The pairwise motion probability `P_{i,j}(d, o)` (Eq. 5).
///
/// * For a trained pair, the direction mass is evaluated on the signed
///   deviation from the pair's mean direction so the 0°/360° wrap never
///   splits a window.
/// * For the same location (`i == j`), a stay-in-place model applies:
///   uninformative direction (`α/360`) times a zero-mean offset
///   Gaussian.
/// * For an untrained pair, [`MoLocConfig::missing_pair_prob`] applies.
pub fn pair_motion_probability(
    db: &MotionDb,
    from: LocationId,
    to: LocationId,
    direction_deg: f64,
    offset_m: f64,
    config: &MoLocConfig,
) -> f64 {
    if from == to {
        return stationary_probability(offset_m, config);
    }
    match db.get(from, to) {
        Some(stats) => {
            // Evaluate the direction window on the wrapped deviation:
            // center a zero-mean Gaussian with the pair's σᵈ on the
            // signed difference to μᵈ.
            let dev = signed_diff_deg(stats.direction.mean(), direction_deg);
            let dir_gauss =
                Gaussian::new(0.0, stats.direction.std()).expect("db stds are positive");
            let d_mass = dir_gauss.window_mass(dev, config.alpha_deg);
            let o_mass = stats.offset.window_mass(offset_m, config.beta_m);
            d_mass * o_mass
        }
        None => config.missing_pair_prob,
    }
}

/// The set-extended motion probability `P_{S,j}(d, o)` (Eq. 6).
pub fn set_motion_probability(
    db: &MotionDb,
    previous: &CandidateSet,
    to: LocationId,
    direction_deg: f64,
    offset_m: f64,
    config: &MoLocConfig,
) -> f64 {
    previous
        .iter()
        .map(|(from, p)| p * pair_motion_probability(db, from, to, direction_deg, offset_m, config))
        .sum()
}

/// Precomputes a [`MotionKernel`] for `db` under `config` — the
/// lookup-table form of [`pair_motion_probability`] used by the online
/// localizers.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`MoLocConfig::validate`]).
pub fn build_kernel(db: &MotionDb, config: &MoLocConfig) -> MotionKernel {
    config.validate();
    MotionKernel::build(db, &config.kernel_config())
}

/// Eq. 6 over a precomputed kernel: identical to
/// [`set_motion_probability`] within the kernel's documented `1e-6`
/// per-pair tolerance, with no map lookups or `erfc` evaluations.
pub fn set_motion_probability_kernel(
    kernel: &MotionKernel,
    previous: &CandidateSet,
    to: LocationId,
    direction_deg: f64,
    offset_m: f64,
) -> f64 {
    previous
        .iter()
        .map(|(from, p)| p * kernel.pair_probability(from, to, direction_deg, offset_m))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_motion::matrix::PairStats;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> MotionDb {
        let mut db = MotionDb::new(4);
        db.insert(
            l(1),
            l(2),
            PairStats {
                direction: Gaussian::new(90.0, 5.0).unwrap(),
                offset: Gaussian::new(5.0, 0.3).unwrap(),
                sample_count: 10,
            },
        );
        db
    }

    fn cfg() -> MoLocConfig {
        MoLocConfig::default()
    }

    #[test]
    fn matching_motion_scores_high() {
        let p = pair_motion_probability(&db(), l(1), l(2), 90.0, 5.0, &cfg());
        assert!(p > 0.8, "p = {p}");
    }

    #[test]
    fn wrong_direction_scores_low() {
        let right = pair_motion_probability(&db(), l(1), l(2), 90.0, 5.0, &cfg());
        let wrong = pair_motion_probability(&db(), l(1), l(2), 270.0, 5.0, &cfg());
        assert!(wrong < right * 1e-6, "wrong {wrong} vs right {right}");
    }

    #[test]
    fn wrong_offset_scores_low() {
        let right = pair_motion_probability(&db(), l(1), l(2), 90.0, 5.0, &cfg());
        let wrong = pair_motion_probability(&db(), l(1), l(2), 90.0, 9.0, &cfg());
        assert!(wrong < right * 1e-3);
    }

    #[test]
    fn reverse_walk_uses_mirrored_entry() {
        let p = pair_motion_probability(&db(), l(2), l(1), 270.0, 5.0, &cfg());
        assert!(p > 0.8, "p = {p}");
        let bad = pair_motion_probability(&db(), l(2), l(1), 90.0, 5.0, &cfg());
        assert!(bad < 1e-6);
    }

    #[test]
    fn direction_window_handles_wraparound() {
        let mut db = MotionDb::new(4);
        db.insert(
            l(1),
            l(2),
            PairStats {
                direction: Gaussian::new(0.5, 5.0).unwrap(), // nearly north
                offset: Gaussian::new(5.0, 0.3).unwrap(),
                sample_count: 5,
            },
        );
        // A measurement at 359.5° is only 1° away across the wrap.
        let p = pair_motion_probability(&db, l(1), l(2), 359.5, 5.0, &cfg());
        assert!(p > 0.8, "p = {p}");
    }

    #[test]
    fn missing_pair_uses_epsilon() {
        let p = pair_motion_probability(&db(), l(1), l(3), 90.0, 5.0, &cfg());
        assert_eq!(p, cfg().missing_pair_prob);
    }

    #[test]
    fn stationary_model_prefers_small_offsets() {
        let near = pair_motion_probability(&db(), l(1), l(1), 10.0, 0.1, &cfg());
        let far = pair_motion_probability(&db(), l(1), l(1), 10.0, 4.0, &cfg());
        assert!(near > 100.0 * far);
    }

    #[test]
    fn eq6_weights_by_prior() {
        let db = db();
        let config = cfg();
        // Previous candidates: L1 with 0.9, L3 with 0.1.
        let prev = CandidateSet::from_weights(vec![(l(1), 0.9), (l(3), 0.1)]).unwrap();
        let p_set = set_motion_probability(&db, &prev, l(2), 90.0, 5.0, &config);
        let p_pair = pair_motion_probability(&db, l(1), l(2), 90.0, 5.0, &config);
        let expected = 0.9 * p_pair + 0.1 * config.missing_pair_prob;
        assert!((p_set - expected).abs() < 1e-12);
    }

    #[test]
    fn kernel_matches_exact_computation() {
        let db = db();
        let config = cfg();
        let kernel = build_kernel(&db, &config);
        for from in 1..=4u32 {
            for to in 1..=4u32 {
                for dir in [0.0, 45.0, 90.0, 269.5, 359.9] {
                    for off in [0.0, 0.4, 5.0, 12.0] {
                        let exact = pair_motion_probability(&db, l(from), l(to), dir, off, &config);
                        let fast = kernel.pair_probability(l(from), l(to), dir, off);
                        assert!(
                            (exact - fast).abs() <= 1e-6,
                            "({from}→{to}, {dir}°, {off} m): exact {exact} vs kernel {fast}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_eq6_matches_exact_eq6() {
        let db = db();
        let config = cfg();
        let kernel = build_kernel(&db, &config);
        let prev = CandidateSet::from_weights(vec![(l(1), 0.6), (l(2), 0.3), (l(4), 0.1)]).unwrap();
        for to in 1..=4u32 {
            let exact = set_motion_probability(&db, &prev, l(to), 91.0, 5.2, &config);
            let fast = set_motion_probability_kernel(&kernel, &prev, l(to), 91.0, 5.2);
            assert!(
                (exact - fast).abs() <= 1e-6,
                "to = {to}: exact {exact} vs kernel {fast}"
            );
        }
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let db = db();
        let config = cfg();
        for dir in [0.0, 45.0, 90.0, 180.0, 270.0] {
            for off in [0.0, 1.0, 5.0, 10.0] {
                let p = pair_motion_probability(&db, l(1), l(2), dir, off, &config);
                assert!((0.0..=1.0).contains(&p), "p = {p}");
            }
        }
    }
}
