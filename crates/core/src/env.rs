//! Strict parsing for `MOLOC_*` environment knobs.
//!
//! Historically every runtime knob (`MOLOC_THREADS`, `MOLOC_CHUNK`,
//! `MOLOC_KNN_SHARD_MIN`, the `MOLOC_CHECKPOINT_*` family) silently
//! fell back to its default when the variable held garbage — a typo'd
//! `MOLOC_THREADS=fuor` ran the whole evaluation serial without a word.
//! The helpers here are the strict counterparts: a **set but
//! malformed** value is a configuration error
//! ([`MolocError::InvalidConfig`] carrying the offending string), an
//! **unset** variable is `Ok(None)` so callers keep their defaults.
//!
//! Callers that cannot surface a `Result` (process-wide cached
//! resolution) still use these parsers and fail fast; entry-point
//! binaries call their crate's `validate_env()` first so the operator
//! sees the typed error before any work starts.

use crate::error::MolocError;

/// Parses an optional environment value as a `usize`.
///
/// `Ok(None)` when unset, `Ok(Some(n))` for a well-formed integer
/// (surrounding whitespace tolerated), and
/// [`MolocError::InvalidConfig`] naming `field` and echoing the raw
/// string for anything else — including empty strings and negative or
/// non-numeric input.
///
/// # Errors
///
/// Returns [`MolocError::InvalidConfig`] when the value is set but
/// does not parse.
pub fn parse_usize(field: &'static str, raw: Option<&str>) -> Result<Option<usize>, MolocError> {
    match raw {
        None => Ok(None),
        Some(raw) => raw
            .trim()
            .parse::<usize>()
            .map(Some)
            .map_err(|_| MolocError::invalid_config_value(field, raw)),
    }
}

/// [`parse_usize`] with a positivity requirement: `0` is rejected like
/// any other malformed value. Worker counts, chunk sizes, and
/// checkpoint intervals are meaningless at zero.
///
/// # Errors
///
/// Returns [`MolocError::InvalidConfig`] when the value is set but
/// does not parse to an integer ≥ 1.
pub fn parse_positive_usize(
    field: &'static str,
    raw: Option<&str>,
) -> Result<Option<usize>, MolocError> {
    match parse_usize(field, raw)? {
        Some(0) => Err(MolocError::invalid_config_value(
            field,
            raw.unwrap_or_default(),
        )),
        other => Ok(other),
    }
}

/// Parses an optional boolean-ish toggle: `0`/`1` only (the workspace
/// convention for `MOLOC_BLOCK`, `MOLOC_MIRROR`, and
/// `MOLOC_CHECKPOINT_FSYNC`). Anything else is an error carrying the
/// raw string.
///
/// # Errors
///
/// Returns [`MolocError::InvalidConfig`] when the value is set but is
/// neither `0` nor `1`.
pub fn parse_toggle(field: &'static str, raw: Option<&str>) -> Result<Option<bool>, MolocError> {
    match raw {
        None => Ok(None),
        Some(raw) => match raw.trim() {
            "0" => Ok(Some(false)),
            "1" => Ok(Some(true)),
            _ => Err(MolocError::invalid_config_value(field, raw)),
        },
    }
}

/// Reads and strictly parses one environment variable as a `usize`.
///
/// # Errors
///
/// Returns [`MolocError::InvalidConfig`] when the variable is set but
/// malformed (including non-UTF-8 values).
pub fn env_usize(field: &'static str) -> Result<Option<usize>, MolocError> {
    match std::env::var(field) {
        Ok(raw) => parse_usize(field, Some(&raw)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(MolocError::invalid_config_value(
            field,
            raw.to_string_lossy(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_values_keep_defaults() {
        assert_eq!(parse_usize("MOLOC_THREADS", None), Ok(None));
        assert_eq!(parse_positive_usize("MOLOC_CHUNK", None), Ok(None));
        assert_eq!(parse_toggle("MOLOC_CHECKPOINT_FSYNC", None), Ok(None));
    }

    #[test]
    fn well_formed_values_parse_with_whitespace() {
        assert_eq!(parse_usize("MOLOC_KNN_SHARD_MIN", Some("0")), Ok(Some(0)));
        assert_eq!(parse_usize("MOLOC_THREADS", Some(" 6 ")), Ok(Some(6)));
        assert_eq!(
            parse_positive_usize("MOLOC_CHUNK", Some("128")),
            Ok(Some(128))
        );
        assert_eq!(
            parse_toggle("MOLOC_CHECKPOINT_FSYNC", Some("1")),
            Ok(Some(true))
        );
        assert_eq!(
            parse_toggle("MOLOC_CHECKPOINT_FSYNC", Some(" 0 ")),
            Ok(Some(false))
        );
    }

    #[test]
    fn malformed_values_name_the_knob_and_echo_the_string() {
        for (field, raw) in [
            ("MOLOC_THREADS", "fuor"),
            ("MOLOC_CHUNK", ""),
            ("MOLOC_KNN_SHARD_MIN", "-3"),
            ("MOLOC_CHECKPOINT_INTERVAL", "1e3"),
        ] {
            let err = parse_usize(field, Some(raw)).unwrap_err();
            assert_eq!(err, MolocError::invalid_config_value(field, raw));
            let msg = err.to_string();
            assert!(msg.contains(field), "{msg}");
        }
    }

    #[test]
    fn zero_is_rejected_where_positivity_is_required() {
        let err = parse_positive_usize("MOLOC_CHECKPOINT_INTERVAL", Some("0")).unwrap_err();
        assert_eq!(
            err,
            MolocError::invalid_config_value("MOLOC_CHECKPOINT_INTERVAL", "0")
        );
        // ...but fine where zero is meaningful.
        assert_eq!(parse_usize("MOLOC_KNN_SHARD_MIN", Some("0")), Ok(Some(0)));
    }

    #[test]
    fn toggles_accept_only_zero_and_one() {
        for bad in ["true", "yes", "2", ""] {
            assert!(parse_toggle("MOLOC_CHECKPOINT_FSYNC", Some(bad)).is_err());
        }
    }
}
