//! The owning MoLoc facade.
//!
//! [`MoLoc`] bundles the fingerprint database, motion database, and
//! configuration into one deployable unit — the thing a venue operator
//! would ship — and hands out per-session [`MoLocTracker`]s.

use crate::batch::BatchLocalizer;
use crate::config::MoLocConfig;
use crate::matching::build_kernel;
use crate::tracker::{MoLocTracker, MotionMeasurement, TrackError};
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::FingerprintIndex;
use moloc_geometry::LocationId;
use moloc_motion::kernel::MotionKernel;
use moloc_motion::matrix::MotionDb;

/// A deployed MoLoc system.
///
/// Construction precomputes the two serving artifacts — the columnar
/// [`FingerprintIndex`] and the [`MotionKernel`] — once; every tracker
/// and batch engine handed out shares them instead of rebuilding per
/// session.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Debug, Clone)]
pub struct MoLoc {
    fingerprint_db: FingerprintDb,
    motion_db: MotionDb,
    config: MoLocConfig,
    index: FingerprintIndex,
    kernel: MotionKernel,
}

/// Builder for [`MoLoc`].
#[derive(Debug)]
pub struct MoLocBuilder {
    fingerprint_db: FingerprintDb,
    motion_db: MotionDb,
    config: MoLocConfig,
}

impl MoLocBuilder {
    /// Overrides the configuration (default: [`MoLocConfig::paper`]).
    pub fn config(mut self, config: MoLocConfig) -> Self {
        self.config = config;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn build(self) -> MoLoc {
        self.config.validate();
        let index = FingerprintIndex::build(&self.fingerprint_db);
        let kernel = build_kernel(&self.motion_db, &self.config);
        MoLoc {
            fingerprint_db: self.fingerprint_db,
            motion_db: self.motion_db,
            config: self.config,
            index,
            kernel,
        }
    }
}

impl MoLoc {
    /// Starts building a system from its two databases.
    pub fn builder(fingerprint_db: FingerprintDb, motion_db: MotionDb) -> MoLocBuilder {
        MoLocBuilder {
            fingerprint_db,
            motion_db,
            config: MoLocConfig::paper(),
        }
    }

    /// The fingerprint database.
    pub fn fingerprint_db(&self) -> &FingerprintDb {
        &self.fingerprint_db
    }

    /// The motion database.
    pub fn motion_db(&self) -> &MotionDb {
        &self.motion_db
    }

    /// The configuration.
    pub fn config(&self) -> MoLocConfig {
        self.config
    }

    /// The prebuilt columnar fingerprint index.
    pub fn index(&self) -> &FingerprintIndex {
        &self.index
    }

    /// The prebuilt motion kernel.
    pub fn kernel(&self) -> &MotionKernel {
        &self.kernel
    }

    /// A fresh per-session tracker sharing the prebuilt kernel and
    /// index (no per-session artifact builds).
    pub fn tracker(&self) -> MoLocTracker<'_> {
        MoLocTracker::new_with_kernel(
            &self.fingerprint_db,
            &self.motion_db,
            self.config,
            &self.kernel,
        )
        .with_shared_index(&self.index)
    }

    /// A fresh per-session batch engine sharing the prebuilt kernel
    /// and index; its scratch buffers make repeated observations
    /// allocation-free.
    pub fn batch_localizer(&self) -> BatchLocalizer<'_> {
        BatchLocalizer::new_with_index(&self.index, &self.kernel, self.config)
    }

    /// Localizes a whole query sequence, as the trace-driven evaluation
    /// does: the first element carries no motion, subsequent elements
    /// carry the RLM measured since the previous query.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrackError`] encountered.
    pub fn localize_sequence(
        &self,
        queries: &[(Fingerprint, Option<MotionMeasurement>)],
    ) -> Result<Vec<LocationId>, TrackError> {
        self.batch_localizer().localize_trace(queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_motion::matrix::PairStats;
    use moloc_stats::gaussian::Gaussian;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    fn system() -> MoLoc {
        let fdb = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-40.0, -70.0])),
            (l(2), fp(&[-55.0, -55.0])),
            (l(3), fp(&[-70.0, -40.0])),
        ])
        .unwrap();
        let mut mdb = MotionDb::new(3);
        let east = PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(4.0, 0.3).unwrap(),
            sample_count: 10,
        };
        mdb.insert(l(1), l(2), east);
        mdb.insert(l(2), l(3), east);
        MoLoc::builder(fdb, mdb).build()
    }

    #[test]
    fn sequence_localization_walks_east() {
        let moloc = system();
        let east = Some(MotionMeasurement {
            direction_deg: 90.0,
            offset_m: 4.0,
        });
        let estimates = moloc
            .localize_sequence(&[
                (fp(&[-41.0, -69.0]), None),
                (fp(&[-54.0, -56.0]), east),
                (fp(&[-69.0, -41.0]), east),
            ])
            .unwrap();
        assert_eq!(estimates, vec![l(1), l(2), l(3)]);
    }

    #[test]
    fn accessors_expose_components() {
        let moloc = system();
        assert_eq!(moloc.fingerprint_db().len(), 3);
        assert_eq!(moloc.motion_db().pair_count(), 2);
        assert_eq!(moloc.config().alpha_deg, 20.0);
    }

    #[test]
    fn trackers_are_independent_sessions() {
        let moloc = system();
        let mut a = moloc.tracker();
        let mut b = moloc.tracker();
        a.observe(&fp(&[-41.0, -69.0]), None).unwrap();
        assert!(a.candidates().is_some());
        assert!(b.candidates().is_none());
        b.observe(&fp(&[-69.0, -41.0]), None).unwrap();
        assert_ne!(
            a.candidates().unwrap().top().location,
            b.candidates().unwrap().top().location
        );
    }

    #[test]
    fn sequence_error_propagates() {
        let moloc = system();
        let err = moloc
            .localize_sequence(&[(fp(&[-41.0]), None)])
            .unwrap_err();
        assert!(matches!(err, TrackError::QueryLength { .. }));
    }
}
