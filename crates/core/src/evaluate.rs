//! Candidate evaluation (paper Eq. 7).
//!
//! For each current candidate `jₘ`, MoLoc combines the independent
//! fingerprint and motion evidence:
//!
//! ```text
//! P(x = jₘ | L′, F, d, o) = P(x = jₘ | F) · P_{L′,jₘ}(d, o) / N
//! ```
//!
//! where `L′` is the previous candidate set and `N` normalizes over the
//! current candidates. When every candidate's combined mass underflows
//! (all motion evidence contradicts all fingerprint evidence), the
//! implementation falls back to the fingerprint-only distribution
//! rather than dividing by zero — a robustness choice documented in
//! DESIGN.md.

use crate::config::MoLocConfig;
use crate::matching::{set_motion_probability, set_motion_probability_kernel};
use moloc_fingerprint::candidates::CandidateSet;
use moloc_motion::kernel::MotionKernel;
use moloc_motion::matrix::MotionDb;

/// Applies Eq. 7: reweights the `current` fingerprint candidates by the
/// motion evidence from the `previous` candidate set.
///
/// Returns the posterior candidate set (normalized).
pub fn evaluate_candidates(
    db: &MotionDb,
    previous: &CandidateSet,
    current: &CandidateSet,
    direction_deg: f64,
    offset_m: f64,
    config: &MoLocConfig,
) -> CandidateSet {
    let weights: Vec<_> = current
        .iter()
        .map(|(loc, p_fingerprint)| {
            let p_motion =
                set_motion_probability(db, previous, loc, direction_deg, offset_m, config);
            (loc, p_fingerprint * p_motion)
        })
        .collect();
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    if !total.is_finite() || total <= config.degenerate_total_floor {
        // Degenerate: motion evidence wiped out (or poisoned) every
        // candidate. Trust the fingerprints alone for this step. A NaN
        // total would otherwise pass a plain `<=` floor check and leak
        // into the normalized posterior.
        return current.clone();
    }
    moloc_verify::check_weights("core.evaluate.weights", weights.iter().copied());
    let posterior = CandidateSet::from_weights(weights).unwrap_or_else(|_| current.clone());
    moloc_verify::check_posterior("core.evaluate.posterior", posterior.iter());
    posterior
}

/// Eq. 7 over a precomputed [`MotionKernel`]: same semantics as
/// [`evaluate_candidates`] (including the degenerate fallback), with
/// the motion evidence read from the kernel's lookup tables.
pub fn evaluate_candidates_kernel(
    kernel: &MotionKernel,
    previous: &CandidateSet,
    current: &CandidateSet,
    direction_deg: f64,
    offset_m: f64,
    config: &MoLocConfig,
) -> CandidateSet {
    let weights: Vec<_> = current
        .iter()
        .map(|(loc, p_fingerprint)| {
            let p_motion =
                set_motion_probability_kernel(kernel, previous, loc, direction_deg, offset_m);
            (loc, p_fingerprint * p_motion)
        })
        .collect();
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    if !total.is_finite() || total <= config.degenerate_total_floor {
        return current.clone();
    }
    moloc_verify::check_weights("core.evaluate.kernel.weights", weights.iter().copied());
    let posterior = CandidateSet::from_weights(weights).unwrap_or_else(|_| current.clone());
    moloc_verify::check_posterior("core.evaluate.kernel.posterior", posterior.iter());
    posterior
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;
    use moloc_motion::matrix::PairStats;
    use moloc_stats::gaussian::Gaussian;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    /// Fig. 1(b)'s world: p (L1) with twins q (L2, west) and q′ (L3,
    /// east of p). Walking west from p must pick q over q′.
    fn twin_db() -> MotionDb {
        let mut db = MotionDb::new(3);
        db.insert(
            l(1),
            l(2),
            PairStats {
                direction: Gaussian::new(270.0, 5.0).unwrap(), // p → q west
                offset: Gaussian::new(4.0, 0.3).unwrap(),
                sample_count: 8,
            },
        );
        db.insert(
            l(1),
            l(3),
            PairStats {
                direction: Gaussian::new(90.0, 5.0).unwrap(), // p → q′ east
                offset: Gaussian::new(4.0, 0.3).unwrap(),
                sample_count: 8,
            },
        );
        db
    }

    #[test]
    fn motion_disambiguates_fingerprint_twins() {
        let db = twin_db();
        let config = MoLocConfig::default();
        // Previous: confidently at p.
        let prev = CandidateSet::from_weights(vec![(l(1), 1.0)]).unwrap();
        // Current fingerprints: q and q′ are twins — equal probability.
        let current = CandidateSet::from_weights(vec![(l(2), 0.5), (l(3), 0.5)]).unwrap();
        // Measured: walked west 4 m.
        let posterior = evaluate_candidates(&db, &prev, &current, 270.0, 4.0, &config);
        assert_eq!(posterior.top().location, l(2));
        assert!(posterior.probability_of(l(2)) > 0.99);
    }

    #[test]
    fn fig1c_wrong_initial_estimate_recovers() {
        // Previous candidates split between p (L1) and its twin; the
        // twin has no trained path matching the motion, so the true
        // continuation wins even though the previous *estimate* (top)
        // was wrong.
        let db = twin_db();
        let config = MoLocConfig::default();
        let prev = CandidateSet::from_weights(vec![(l(1), 0.45), (l(3), 0.55)]).unwrap();
        let current = CandidateSet::from_weights(vec![(l(2), 0.5), (l(3), 0.5)]).unwrap();
        let posterior = evaluate_candidates(&db, &prev, &current, 270.0, 4.0, &config);
        assert_eq!(posterior.top().location, l(2));
    }

    #[test]
    fn posterior_is_normalized() {
        let db = twin_db();
        let config = MoLocConfig::default();
        let prev = CandidateSet::from_weights(vec![(l(1), 0.5), (l(2), 0.5)]).unwrap();
        let current =
            CandidateSet::from_weights(vec![(l(1), 0.3), (l(2), 0.3), (l(3), 0.4)]).unwrap();
        let posterior = evaluate_candidates(&db, &prev, &current, 90.0, 4.0, &config);
        assert!((posterior.total_probability() - 1.0).abs() < 1e-9);
        assert_eq!(posterior.len(), 3);
    }

    #[test]
    fn degenerate_motion_falls_back_to_fingerprints() {
        let db = twin_db();
        let config = MoLocConfig {
            missing_pair_prob: 0.0, // strict Eq. 5: untrained pairs are impossible
            ..MoLocConfig::default()
        };
        let prev = CandidateSet::from_weights(vec![(l(2), 1.0)]).unwrap();
        // Candidates reachable only via untrained pairs → all zeros.
        let current = CandidateSet::from_weights(vec![(l(3), 0.7), (l(1), 0.3)]).unwrap();
        // Direction/offset match nothing trained from L2.
        let posterior = evaluate_candidates(&db, &prev, &current, 0.0, 20.0, &config);
        assert_eq!(posterior, current);
    }

    #[test]
    fn kernel_evaluation_matches_exact_evaluation() {
        let db = twin_db();
        let config = MoLocConfig::default();
        let kernel = crate::matching::build_kernel(&db, &config);
        let prev = CandidateSet::from_weights(vec![(l(1), 0.45), (l(3), 0.55)]).unwrap();
        let current = CandidateSet::from_weights(vec![(l(2), 0.5), (l(3), 0.5)]).unwrap();
        let exact = evaluate_candidates(&db, &prev, &current, 270.0, 4.0, &config);
        let fast = evaluate_candidates_kernel(&kernel, &prev, &current, 270.0, 4.0, &config);
        assert_eq!(exact.top().location, fast.top().location);
        for (loc, p) in exact.iter() {
            assert!(
                (p - fast.probability_of(loc)).abs() < 1e-6,
                "{loc}: exact {p} vs kernel {}",
                fast.probability_of(loc)
            );
        }
    }

    #[test]
    fn fingerprint_prior_still_matters() {
        // Same motion evidence for two candidates → fingerprint prior
        // decides.
        let mut db = MotionDb::new(3);
        for to in [2, 3] {
            db.insert(
                l(1),
                l(to),
                PairStats {
                    direction: Gaussian::new(90.0, 5.0).unwrap(),
                    offset: Gaussian::new(4.0, 0.3).unwrap(),
                    sample_count: 5,
                },
            );
        }
        let config = MoLocConfig::default();
        let prev = CandidateSet::from_weights(vec![(l(1), 1.0)]).unwrap();
        let current = CandidateSet::from_weights(vec![(l(2), 0.8), (l(3), 0.2)]).unwrap();
        let posterior = evaluate_candidates(&db, &prev, &current, 90.0, 4.0, &config);
        assert_eq!(posterior.top().location, l(2));
        assert!((posterior.probability_of(l(2)) - 0.8).abs() < 1e-9);
    }
}
