//! The typed error hierarchy and degradation vocabulary of the
//! localization stack.
//!
//! Production serving must not panic on messy inputs: missing APs,
//! sensor gaps, and unpopulated motion-database cells are the dominant
//! field failure modes (see DESIGN.md §12). The serving paths therefore
//! report recoverable conditions through [`MolocError`] and surface
//! which *graceful fallbacks* fired through [`DegradationFlags`], so a
//! caller can distinguish a clean estimate from one produced by the
//! degradation ladder (full fusion → fingerprint-only → candidate
//! reset).

/// A recoverable serving-path error.
///
/// Every variant is a caller-input problem, never an internal
/// inconsistency — internal invariant violations remain panics so they
/// fail loudly in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MolocError {
    /// The query fingerprint length does not match the database.
    QueryLength {
        /// Expected AP count.
        expected: usize,
        /// Found AP count.
        found: usize,
    },
    /// The motion measurement is not finite (or has a negative offset).
    BadMeasurement,
    /// No usable fingerprint candidates could be formed for the query.
    EmptyCandidates,
    /// A configuration value was rejected by validation (e.g. a
    /// non-positive sanitation threshold, or a malformed `MOLOC_*`
    /// environment variable).
    InvalidConfig {
        /// The offending configuration field (or environment variable).
        field: &'static str,
        /// The rejected raw value, when one was supplied (env/config
        /// strings); `None` for structural violations with no single
        /// offending literal.
        value: Option<String>,
    },
}

impl MolocError {
    /// An [`MolocError::InvalidConfig`] with no captured raw value.
    pub fn invalid_config(field: &'static str) -> Self {
        MolocError::InvalidConfig { field, value: None }
    }

    /// An [`MolocError::InvalidConfig`] carrying the rejected raw
    /// string, so diagnostics name both the knob and what was fed to
    /// it.
    pub fn invalid_config_value(field: &'static str, value: impl Into<String>) -> Self {
        MolocError::InvalidConfig {
            field,
            value: Some(value.into()),
        }
    }
}

impl std::fmt::Display for MolocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MolocError::QueryLength { expected, found } => {
                write!(f, "query has {found} APs, database expects {expected}")
            }
            MolocError::BadMeasurement => write!(f, "motion measurement must be finite"),
            MolocError::EmptyCandidates => {
                write!(f, "no usable fingerprint candidates for the query")
            }
            MolocError::InvalidConfig { field, value } => match value {
                Some(value) => write!(f, "invalid configuration: {field}={value:?}"),
                None => write!(f, "invalid configuration: {field}"),
            },
        }
    }
}

impl std::error::Error for MolocError {}

impl From<moloc_motion::filter::SanitationError> for MolocError {
    fn from(e: moloc_motion::filter::SanitationError) -> Self {
        MolocError::invalid_config(e.field())
    }
}

/// Which graceful fallbacks fired while producing one estimate.
///
/// A compact bitset (no allocation, `Copy`) surfaced per observation by
/// `BatchLocalizer::last_flags`. Empty flags mean the estimate came
/// from the clean full-fusion path, bit-identical to the fault-free
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationFlags(u8);

impl DegradationFlags {
    /// The query contained non-finite RSS values; k-NN ranked on the
    /// observed APs only (masked metric).
    pub const MASKED_QUERY: Self = Self(1);
    /// Every AP of the query was missing; the candidate set degraded
    /// to a uniform prior over the lowest-id locations.
    pub const NO_OBSERVED_APS: Self = Self(1 << 1);
    /// Eq. 7's transition mass was degenerate (underflow or
    /// non-finite); the step fell back to the fingerprint-only prior
    /// (Eq. 4).
    pub const MOTION_FALLBACK: Self = Self(1 << 2);
    /// The fingerprint posterior itself collapsed; the candidate set
    /// was reset to uniform and tracking history dropped.
    pub const CANDIDATE_RESET: Self = Self(1 << 3);

    /// No degradation: the clean full-fusion path.
    pub const fn empty() -> Self {
        Self(0)
    }

    /// The raw bit representation.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds flags from a raw bit representation, masking unknown
    /// bits. The checkpoint/recovery path round-trips flags through
    /// [`DegradationFlags::bits`]; masking keeps a corrupted-but-
    /// checksum-colliding byte from smuggling undefined flags in.
    pub const fn from_bits(bits: u8) -> Self {
        Self(bits & 0b1111)
    }

    /// Whether no fallback fired.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether every flag of `other` is set in `self`.
    pub const fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// Sets every flag of `other`.
    pub fn insert(&mut self, other: Self) {
        self.0 |= other.0;
    }

    /// The flags set in either operand.
    pub const fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }
}

impl std::ops::BitOr for DegradationFlags {
    type Output = Self;

    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl std::fmt::Display for DegradationFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "clean");
        }
        let mut first = true;
        for (flag, name) in [
            (Self::MASKED_QUERY, "masked-query"),
            (Self::NO_OBSERVED_APS, "no-observed-aps"),
            (Self::MOTION_FALLBACK, "motion-fallback"),
            (Self::CANDIDATE_RESET, "candidate-reset"),
        ] {
            if self.contains(flag) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let q = MolocError::QueryLength {
            expected: 6,
            found: 4,
        };
        assert!(q.to_string().contains("6"));
        assert!(MolocError::BadMeasurement.to_string().contains("finite"));
        assert!(MolocError::EmptyCandidates
            .to_string()
            .contains("candidates"));
        assert!(MolocError::invalid_config("fine_sigma")
            .to_string()
            .contains("fine_sigma"));
        let with_value = MolocError::invalid_config_value("MOLOC_THREADS", "banana");
        assert!(with_value.to_string().contains("MOLOC_THREADS"));
        assert!(with_value.to_string().contains("banana"));
    }

    #[test]
    fn sanitation_errors_convert_into_invalid_config() {
        use moloc_motion::filter::{SanitationConfig, SanitationError};
        let err: MolocError = SanitationError::NonPositive {
            field: "coarse_offset_m",
        }
        .into();
        assert_eq!(err, MolocError::invalid_config("coarse_offset_m"));
        // The round trip from a real invalid config lands on the same
        // variant.
        let bad = SanitationConfig {
            min_samples: 0,
            ..SanitationConfig::default()
        };
        let err: MolocError = bad.validate().unwrap_err().into();
        assert_eq!(err, MolocError::invalid_config("min_samples"));
    }

    #[test]
    fn flags_round_trip_through_bits() {
        let f = DegradationFlags::MASKED_QUERY | DegradationFlags::CANDIDATE_RESET;
        assert_eq!(DegradationFlags::from_bits(f.bits()), f);
        // Unknown high bits are masked off, never resurrected.
        assert_eq!(DegradationFlags::from_bits(0xF0), DegradationFlags::empty());
        assert_eq!(
            DegradationFlags::from_bits(0xFF),
            DegradationFlags::MASKED_QUERY
                | DegradationFlags::NO_OBSERVED_APS
                | DegradationFlags::MOTION_FALLBACK
                | DegradationFlags::CANDIDATE_RESET
        );
    }

    #[test]
    fn flags_compose() {
        let mut f = DegradationFlags::empty();
        assert!(f.is_empty());
        assert_eq!(f.to_string(), "clean");
        f.insert(DegradationFlags::MASKED_QUERY);
        f.insert(DegradationFlags::MOTION_FALLBACK);
        assert!(f.contains(DegradationFlags::MASKED_QUERY));
        assert!(f.contains(DegradationFlags::MOTION_FALLBACK));
        assert!(!f.contains(DegradationFlags::CANDIDATE_RESET));
        assert_eq!(f.to_string(), "masked-query+motion-fallback");
        let g = DegradationFlags::MASKED_QUERY | DegradationFlags::MOTION_FALLBACK;
        assert_eq!(f, g);
        assert_eq!(f.bits(), 0b101);
    }
}
