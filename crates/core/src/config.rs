//! MoLoc algorithm configuration.

use moloc_motion::kernel::KernelConfig;
use serde::{Deserialize, Serialize};

/// Tunables of the motion-assisted localization algorithm.
///
/// The paper sets the discretization windows from the motion database's
/// spreads: `α = 20°` and `β = 1 m` (Sec. VI-B2). The candidate count
/// `k` is not stated; the default of 4 reproduces the paper's accuracy
/// and the `ablation-k` bench sweeps it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoLocConfig {
    /// Number of location candidates retrieved per query (Eq. 3).
    pub k: usize,
    /// Direction discretization window `α`, degrees (Eq. 5).
    pub alpha_deg: f64,
    /// Offset discretization window `β`, meters (Eq. 5).
    pub beta_m: f64,
    /// Motion probability assigned to a pair absent from the motion
    /// database. A small non-zero value keeps candidates alive when the
    /// crowd never walked that pair; 0 reproduces the strict paper
    /// formula.
    pub missing_pair_prob: f64,
    /// Offset standard deviation of the stay-in-place model used when a
    /// candidate pair is the *same* location (the paper leaves
    /// self-transitions undefined; the user may pause at a spot).
    pub stationary_offset_std_m: f64,
    /// When the combined (fingerprint × motion) mass of every candidate
    /// underflows below this total, fall back to fingerprint-only
    /// probabilities instead of dividing by ~0 (robustness guard; the
    /// paper's normalizer `N` assumes a non-degenerate sum).
    pub degenerate_total_floor: f64,
}

impl Default for MoLocConfig {
    fn default() -> Self {
        Self {
            k: 8,
            alpha_deg: 20.0,
            beta_m: 1.0,
            missing_pair_prob: 1e-6,
            stationary_offset_std_m: 0.5,
            degenerate_total_floor: 1e-5,
        }
    }
}

impl MoLocConfig {
    /// The paper's published parameters (α = 20°, β = 1 m).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The subset of this configuration a
    /// [`moloc_motion::MotionKernel`](moloc_motion::kernel::MotionKernel)
    /// bakes into its tables.
    pub fn kernel_config(&self) -> KernelConfig {
        KernelConfig {
            alpha_deg: self.alpha_deg,
            beta_m: self.beta_m,
            missing_pair_prob: self.missing_pair_prob,
            stationary_offset_std_m: self.stationary_offset_std_m,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, windows are non-positive, or floors are
    /// negative.
    pub fn validate(&self) {
        assert!(self.k >= 1, "k must be at least 1");
        assert!(
            self.alpha_deg > 0.0 && self.alpha_deg.is_finite(),
            "alpha must be positive"
        );
        assert!(
            self.beta_m > 0.0 && self.beta_m.is_finite(),
            "beta must be positive"
        );
        assert!(
            self.missing_pair_prob >= 0.0 && self.missing_pair_prob.is_finite(),
            "missing-pair probability must be non-negative"
        );
        assert!(
            self.stationary_offset_std_m > 0.0,
            "stationary offset std must be positive"
        );
        assert!(
            self.degenerate_total_floor >= 0.0,
            "degenerate floor must be non-negative"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = MoLocConfig::paper();
        assert_eq!(c.alpha_deg, 20.0);
        assert_eq!(c.beta_m, 1.0);
        assert!(c.k >= 1);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        MoLocConfig {
            k: 0,
            ..MoLocConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        MoLocConfig {
            alpha_deg: 0.0,
            ..MoLocConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn negative_beta_rejected() {
        MoLocConfig {
            beta_m: -1.0,
            ..MoLocConfig::default()
        }
        .validate();
    }
}
