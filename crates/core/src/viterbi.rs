//! An offline HMM (Viterbi) localizer — the related-work comparator.
//!
//! The paper's related work discusses accelerometer-assisted HMM
//! localization (Liu et al., IEEE/ION PLANS 2010) and argues it is
//! "prone to initial localization error intrinsic to HMM, and the high
//! computational overhead may drain off the battery". This module
//! implements that comparator over the *same* databases MoLoc uses:
//!
//! * states — all reference locations;
//! * emissions — the fingerprint evidence of Eq. 4 extended to every
//!   location;
//! * transitions — the motion matching of Eq. 5 (with the same
//!   missing-pair and stationary conventions as the tracker).
//!
//! Unlike [`crate::tracker::MoLocTracker`], Viterbi decodes a whole
//! trace at once (it needs the full observation sequence) and its cost
//! per step is `O(n²)` in the number of locations versus MoLoc's
//! `O(k²)` — the efficiency argument of Sec. V quantified by the
//! benchmark suite.

use crate::config::MoLocConfig;
use crate::matching::build_kernel;
use crate::tracker::MotionMeasurement;
use moloc_fingerprint::block::QueryBlock;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, SquaredEuclidean};
use moloc_fingerprint::metric::{Dissimilarity, Euclidean};
use moloc_geometry::LocationId;
use moloc_motion::kernel::MotionKernel;
use moloc_motion::matrix::MotionDb;

/// Error from [`ViterbiLocalizer::localize_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViterbiError {
    /// The observation sequence was empty.
    EmptyTrace,
    /// A query fingerprint length does not match the database.
    QueryLength {
        /// Expected AP count.
        expected: usize,
        /// Found AP count.
        found: usize,
    },
}

impl std::fmt::Display for ViterbiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViterbiError::EmptyTrace => write!(f, "cannot decode an empty trace"),
            ViterbiError::QueryLength { expected, found } => {
                write!(f, "query has {found} APs, database expects {expected}")
            }
        }
    }
}

impl std::error::Error for ViterbiError {}

/// The offline HMM localizer.
///
/// Transition probabilities are read from a [`MotionKernel`]
/// precomputed at construction: the `O(n²)` inner loop per step is pure
/// table arithmetic with no map lookups or `erfc` evaluations.
#[derive(Debug)]
pub struct ViterbiLocalizer<'a> {
    fingerprint_db: &'a FingerprintDb,
    kernel: MotionKernel,
    metric: &'a dyn Dissimilarity,
    /// Columnar scan for the emission distances (rows in the same id
    /// order as `fingerprint_db.iter()`); `None` falls back to the
    /// per-fingerprint metric walk.
    index: Option<FingerprintIndex>,
}

impl<'a> ViterbiLocalizer<'a> {
    /// Creates a localizer over the same databases a MoLoc deployment
    /// carries, precomputing the motion kernel for the transition
    /// matrix and the columnar fingerprint index for the emissions.
    pub fn new(
        fingerprint_db: &'a FingerprintDb,
        motion_db: &'a MotionDb,
        config: MoLocConfig,
    ) -> Self {
        let kernel = build_kernel(motion_db, &config);
        Self {
            fingerprint_db,
            kernel,
            metric: &Euclidean,
            index: Some(FingerprintIndex::build(fingerprint_db)),
        }
    }

    /// Disables the columnar index: emission distances come from the
    /// per-fingerprint metric walk (the pre-index reference path).
    pub fn with_exact_emissions(mut self) -> Self {
        self.index = None;
        self
    }

    /// Log emission probabilities over all locations for one query on
    /// the per-fingerprint metric walk (the pre-index reference path).
    fn log_emissions_exact(&self, query: &Fingerprint) -> Vec<f64> {
        let distances: Vec<f64> = self
            .fingerprint_db
            .iter()
            .map(|(_, fp)| self.metric.dissimilarity(query, fp))
            .collect();
        log_emissions_from_distances(&distances)
    }

    /// Log emission probabilities for every step of a trace at once:
    /// the columnar index ranks all Q queries against all L rows in one
    /// cache-blocked Q×L pass (DESIGN.md §15), then each step's
    /// distance row is normalized independently. Bit-identical to the
    /// old per-step indexed walk — the blocked kernel preserves the
    /// scalar accumulation order.
    fn log_emissions_indexed(
        &self,
        index: &FingerprintIndex,
        queries: &[(Fingerprint, Option<MotionMeasurement>)],
    ) -> Vec<Vec<f64>> {
        let rows = index.len();
        let mut block = QueryBlock::new(index.ap_count());
        for (query, _) in queries {
            block.push(query.values());
        }
        let mut ranks = Vec::new();
        index.rank_all_block_into::<SquaredEuclidean>(&mut block, &mut ranks);
        (0..queries.len())
            .map(|s| log_emissions_from_distances(&ranks[s * rows..(s + 1) * rows]))
            .collect()
    }

    /// Decodes the maximum-likelihood location sequence for a trace.
    /// The i-th motion measurement describes the interval *before* the
    /// i-th query (the first is ignored and conventionally `None`).
    ///
    /// # Errors
    ///
    /// Returns [`ViterbiError`] on empty traces or mismatched query
    /// lengths.
    pub fn localize_trace(
        &self,
        queries: &[(Fingerprint, Option<MotionMeasurement>)],
    ) -> Result<Vec<LocationId>, ViterbiError> {
        let _span = moloc_obs::span("core.viterbi.localize_trace");
        if queries.is_empty() {
            return Err(ViterbiError::EmptyTrace);
        }
        for (fp, _) in queries {
            if fp.len() != self.fingerprint_db.ap_count() {
                return Err(ViterbiError::QueryLength {
                    expected: self.fingerprint_db.ap_count(),
                    found: fp.len(),
                });
            }
        }
        let states: Vec<LocationId> = self.fingerprint_db.locations().collect();
        let n = states.len();

        // All steps' emissions up front: the indexed path amortizes one
        // blocked Q×L scan over the whole trace instead of Q separate
        // row walks.
        let mut all_emissions: Vec<Vec<f64>> = match &self.index {
            Some(index) => self.log_emissions_indexed(index, queries),
            None => queries
                .iter()
                .map(|(query, _)| self.log_emissions_exact(query))
                .collect(),
        };

        // δ[s] = best log-probability of any path ending in state s.
        let mut delta = std::mem::take(&mut all_emissions[0]);
        let mut backpointers: Vec<Vec<usize>> = Vec::with_capacity(queries.len() - 1);

        for (step, (_, motion)) in queries.iter().enumerate().skip(1) {
            let emissions = &all_emissions[step];
            let mut next = vec![f64::NEG_INFINITY; n];
            let mut back = vec![0usize; n];
            for (j, &to) in states.iter().enumerate() {
                let mut best = f64::NEG_INFINITY;
                let mut best_i = 0;
                for (i, &from) in states.iter().enumerate() {
                    let log_trans = match motion {
                        Some(m) => self
                            .kernel
                            .pair_probability(from, to, m.direction_deg, m.offset_m)
                            .max(1e-300)
                            .ln(),
                        // No motion info: uninformative transition.
                        None => -(n as f64).ln(),
                    };
                    let score = delta[i] + log_trans;
                    if score > best {
                        best = score;
                        best_i = i;
                    }
                }
                next[j] = best + emissions[j];
                back[j] = best_i;
            }
            delta = next;
            backpointers.push(back);
        }

        // Backtrack from the best terminal state. `total_cmp` keeps the
        // selection total even if a pathological query drove a score to
        // NaN — the decode then degrades to an arbitrary-but-
        // deterministic path instead of panicking mid-trace.
        let mut idx = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty state space")
            .0;
        let mut path = vec![states[idx]];
        for back in backpointers.iter().rev() {
            idx = back[idx];
            path.push(states[idx]);
        }
        path.reverse();
        Ok(path)
    }
}

/// Eq. 4 weights (1/dissimilarity, exact matches dominating) over one
/// query's distance row, normalized across the full state space and
/// floored before the log. Shared by the exact and indexed paths so the
/// weight→log transform is applied in the exact same operation order.
fn log_emissions_from_distances(distances: &[f64]) -> Vec<f64> {
    let weights: Vec<f64> = distances
        .iter()
        .map(|&m| if m <= f64::EPSILON { 1e12 } else { 1.0 / m })
        .collect();
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| (w / total).max(1e-300).ln())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_motion::matrix::PairStats;
    use moloc_stats::gaussian::Gaussian;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    /// Corridor L1–L2–L3 going east; L1 and L3 are twins.
    fn world() -> (FingerprintDb, MotionDb) {
        let fdb = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-50.0, -50.0])),
            (l(2), fp(&[-40.0, -70.0])),
            (l(3), fp(&[-50.0, -50.1])),
        ])
        .unwrap();
        let mut mdb = MotionDb::new(3);
        let east = PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(4.0, 0.3).unwrap(),
            sample_count: 10,
        };
        mdb.insert(l(1), l(2), east);
        mdb.insert(l(2), l(3), east);
        (fdb, mdb)
    }

    fn east() -> Option<MotionMeasurement> {
        Some(MotionMeasurement {
            direction_deg: 90.0,
            offset_m: 4.0,
        })
    }

    #[test]
    fn decodes_eastward_walk() {
        let (fdb, mdb) = world();
        let v = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
        let path = v
            .localize_trace(&[
                (fp(&[-50.0, -50.0]), None),
                (fp(&[-41.0, -69.0]), east()),
                (fp(&[-50.0, -50.08]), east()),
            ])
            .unwrap();
        assert_eq!(path, vec![l(1), l(2), l(3)]);
    }

    #[test]
    fn offline_smoothing_fixes_a_wrong_looking_start() {
        // The HMM's strength: the *whole* sequence re-explains the first
        // observation. A twin query at t0 becomes unambiguous once the
        // subsequent eastward walk only fits starting from L1.
        let (fdb, mdb) = world();
        let v = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
        let path = v
            .localize_trace(&[
                (fp(&[-50.0, -50.05]), None), // twin tie at t0
                (fp(&[-40.0, -70.0]), east()),
                (fp(&[-50.0, -50.05]), east()),
            ])
            .unwrap();
        assert_eq!(path[0], l(1), "smoothing should resolve the start");
        assert_eq!(path, vec![l(1), l(2), l(3)]);
    }

    #[test]
    fn no_motion_degrades_to_per_query_fingerprinting() {
        let (fdb, mdb) = world();
        let v = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
        let path = v
            .localize_trace(&[(fp(&[-40.0, -70.0]), None), (fp(&[-50.0, -50.0]), None)])
            .unwrap();
        assert_eq!(path[0], l(2));
        // Twin tie resolved deterministically (first state in id order).
        assert_eq!(path[1], l(1));
    }

    #[test]
    fn errors_on_bad_input() {
        let (fdb, mdb) = world();
        let v = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
        assert_eq!(v.localize_trace(&[]).unwrap_err(), ViterbiError::EmptyTrace);
        assert_eq!(
            v.localize_trace(&[(fp(&[-40.0]), None)]).unwrap_err(),
            ViterbiError::QueryLength {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn indexed_emissions_match_exact_path() {
        let (fdb, mdb) = world();
        let queries = vec![
            (fp(&[-50.0, -50.05]), None),
            (fp(&[-41.0, -69.0]), east()),
            (fp(&[-50.0, -50.08]), east()),
            (fp(&[-40.0, -70.0]), None),
        ];
        let indexed = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper())
            .localize_trace(&queries)
            .unwrap();
        let exact = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper())
            .with_exact_emissions()
            .localize_trace(&queries)
            .unwrap();
        assert_eq!(indexed, exact);
    }

    #[test]
    fn nan_queries_and_motion_do_not_panic() {
        // Corrupted motion components (NaN direction/offset from a
        // buggy sensor stream) must decode to *some* path, never panic
        // the backtrack. (NaN RSS can't reach here: `Fingerprint::new`
        // rejects non-finite values at construction.)
        let (fdb, mdb) = world();
        let v = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
        let path = v
            .localize_trace(&[
                (fp(&[-50.0, -50.0]), None),
                (
                    fp(&[-50.0, -50.0]),
                    Some(MotionMeasurement {
                        direction_deg: f64::NAN,
                        offset_m: f64::NAN,
                    }),
                ),
                (fp(&[-40.0, -70.0]), east()),
            ])
            .unwrap();
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn path_length_matches_trace_length() {
        let (fdb, mdb) = world();
        let v = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
        let queries: Vec<_> = (0..7)
            .map(|i| {
                let f = if i % 2 == 0 {
                    fp(&[-40.0, -70.0])
                } else {
                    fp(&[-50.0, -50.0])
                };
                (f, if i == 0 { None } else { east() })
            })
            .collect();
        let path = v.localize_trace(&queries).unwrap();
        assert_eq!(path.len(), 7);
    }
}
