//! The stateful MoLoc tracker.
//!
//! A [`MoLocTracker`] serves one user's localization session: every
//! query yields `k` fingerprint candidates (Eq. 3/4); from the second
//! query on, the retained previous candidates and the motion measured
//! during the interval reweight them (Eq. 7); the top candidate is the
//! location estimate and the posterior set is retained for the next
//! round (Sec. V-C).

use crate::config::MoLocConfig;
use crate::error::MolocError;
use crate::evaluate::{evaluate_candidates, evaluate_candidates_kernel};
use crate::matching::build_kernel;
use moloc_fingerprint::block::{BlockNeighbors, BlockScratch, QueryBlock};
use moloc_fingerprint::candidates::CandidateSet;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, SquaredEuclidean};
use moloc_fingerprint::knn::{k_nearest_into_buf, Neighbor};
use moloc_fingerprint::metric::{Dissimilarity, Euclidean};
use moloc_geometry::LocationId;
use moloc_motion::kernel::MotionKernel;
use moloc_motion::matrix::MotionDb;
use serde::{Deserialize, Serialize};

/// The motion measured during one localization interval: the direction
/// and offset components of an RLM, extracted from compass and
/// accelerometer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionMeasurement {
    /// Motion direction in compass degrees.
    pub direction_deg: f64,
    /// Walked distance in meters.
    pub offset_m: f64,
}

/// Error from [`MoLocTracker::observe`].
///
/// An alias of the crate-wide [`MolocError`] hierarchy — kept under its
/// historical name so existing `TrackError::QueryLength { .. }` call
/// sites and matches continue to compile unchanged.
pub type TrackError = MolocError;

/// How a tracker evaluates motion probabilities.
#[derive(Debug)]
enum MotionBackend<'a> {
    /// A kernel this tracker built and owns (the default).
    OwnedKernel(Box<MotionKernel>),
    /// A caller-provided kernel, shared across trackers (one build per
    /// `(MotionDb, config)` instead of one per trace).
    SharedKernel(&'a MotionKernel),
    /// The exact per-call Gaussian computation (reference path; used by
    /// the benches to quantify the kernel's speedup).
    Exact,
}

/// How a tracker scans the fingerprint database.
#[derive(Debug)]
enum FingerprintBackend<'a> {
    /// A columnar index this tracker built and owns (the default for
    /// the Euclidean metric).
    OwnedIndex(Box<FingerprintIndex>),
    /// A caller-provided index, shared across trackers (one flattening
    /// per fingerprint database instead of one per trace).
    SharedIndex(&'a FingerprintIndex),
    /// The generic `k_nearest` walk over the database through the
    /// configured `dyn Dissimilarity` (reference path; required for
    /// custom metrics).
    ExactScan,
}

/// The stateful motion-assisted localizer.
#[derive(Debug)]
pub struct MoLocTracker<'a> {
    fingerprint_db: &'a FingerprintDb,
    motion_db: &'a MotionDb,
    config: MoLocConfig,
    metric: &'a dyn Dissimilarity,
    backend: MotionBackend<'a>,
    fingerprints: FingerprintBackend<'a>,
    scratch: KnnScratch,
    neighbors: Vec<Neighbor>,
    previous: Option<CandidateSet>,
}

impl<'a> MoLocTracker<'a> {
    /// Creates a tracker with the paper's Euclidean metric. Precomputes
    /// a [`MotionKernel`] over `motion_db` so every subsequent Eq. 5/6
    /// evaluation is a table lookup; when constructing many trackers
    /// over one database (e.g. one per trace), build the kernel once
    /// with [`build_kernel`] and use [`Self::with_shared_kernel`].
    pub fn new(
        fingerprint_db: &'a FingerprintDb,
        motion_db: &'a MotionDb,
        config: MoLocConfig,
    ) -> Self {
        config.validate();
        let kernel = build_kernel(motion_db, &config);
        Self {
            fingerprint_db,
            motion_db,
            config,
            metric: &Euclidean,
            backend: MotionBackend::OwnedKernel(Box::new(kernel)),
            fingerprints: FingerprintBackend::OwnedIndex(Box::new(FingerprintIndex::build(
                fingerprint_db,
            ))),
            scratch: KnnScratch::with_k(config.k),
            neighbors: Vec::with_capacity(config.k),
            previous: None,
        }
    }

    /// Creates a tracker over a caller-owned kernel, skipping the
    /// per-tracker kernel build of [`Self::new`]. The kernel must have
    /// been built from the same motion database and config (see
    /// [`build_kernel`]). This is the constructor the evaluation
    /// pipeline uses when fanning one setting out over many traces.
    pub fn new_with_kernel(
        fingerprint_db: &'a FingerprintDb,
        motion_db: &'a MotionDb,
        config: MoLocConfig,
        kernel: &'a MotionKernel,
    ) -> Self {
        config.validate();
        Self {
            fingerprint_db,
            motion_db,
            config,
            metric: &Euclidean,
            backend: MotionBackend::SharedKernel(kernel),
            fingerprints: FingerprintBackend::OwnedIndex(Box::new(FingerprintIndex::build(
                fingerprint_db,
            ))),
            scratch: KnnScratch::with_k(config.k),
            neighbors: Vec::with_capacity(config.k),
            previous: None,
        }
    }

    /// Replaces the dissimilarity metric. The columnar index only
    /// serves the Euclidean metric, so this switches the fingerprint
    /// scan to the generic path.
    pub fn with_metric(mut self, metric: &'a dyn Dissimilarity) -> Self {
        self.metric = metric;
        self.fingerprints = FingerprintBackend::ExactScan;
        self
    }

    /// Uses a caller-owned columnar index instead of flattening one.
    /// The index must have been built from the same fingerprint
    /// database (see [`FingerprintIndex::build`]).
    pub fn with_shared_index(mut self, index: &'a FingerprintIndex) -> Self {
        self.fingerprints = FingerprintBackend::SharedIndex(index);
        self
    }

    /// Disables the columnar index: candidates come from the generic
    /// `k_nearest` walk through the configured metric (the pre-index
    /// reference path; used by the index-vs-naive benchmarks).
    pub fn with_exact_scan(mut self) -> Self {
        self.fingerprints = FingerprintBackend::ExactScan;
        self
    }

    /// Uses a caller-owned kernel instead of building one. The kernel
    /// must have been built from the same motion database and config.
    pub fn with_shared_kernel(mut self, kernel: &'a MotionKernel) -> Self {
        self.backend = MotionBackend::SharedKernel(kernel);
        self
    }

    /// Disables the kernel: motion probabilities are computed exactly
    /// per call (the pre-kernel reference path). Intended for numerical
    /// cross-checks and the naive-vs-kernel benchmarks.
    pub fn with_exact_matching(mut self) -> Self {
        self.backend = MotionBackend::Exact;
        self
    }

    /// The retained candidate set from the last observation, if any.
    pub fn candidates(&self) -> Option<&CandidateSet> {
        self.previous.as_ref()
    }

    /// Forgets all history (e.g. the user teleported via an elevator).
    pub fn reset(&mut self) {
        self.previous = None;
    }

    /// Processes one localization query.
    ///
    /// `motion` is the RLM measured since the previous observation;
    /// pass `None` for the first query of a session (or whenever the
    /// motion pipeline could not produce a measurement — the tracker
    /// then behaves like plain fingerprinting for this step, as the
    /// paper's initial localization does).
    ///
    /// # Errors
    ///
    /// Returns [`TrackError`] for mismatched query lengths or non-finite
    /// measurements.
    pub fn observe(
        &mut self,
        query: &Fingerprint,
        motion: Option<MotionMeasurement>,
    ) -> Result<LocationId, TrackError> {
        let _span = moloc_obs::span("core.tracker.observe");
        if query.len() != self.fingerprint_db.ap_count() {
            return Err(TrackError::QueryLength {
                expected: self.fingerprint_db.ap_count(),
                found: query.len(),
            });
        }
        if let Some(m) = motion {
            if !m.direction_deg.is_finite() || !m.offset_m.is_finite() || m.offset_m < 0.0 {
                return Err(TrackError::BadMeasurement);
            }
        }
        match &self.fingerprints {
            FingerprintBackend::OwnedIndex(index) => index.k_nearest_into::<SquaredEuclidean>(
                query.values(),
                self.config.k,
                &mut self.scratch,
                &mut self.neighbors,
            ),
            FingerprintBackend::SharedIndex(index) => index.k_nearest_into::<SquaredEuclidean>(
                query.values(),
                self.config.k,
                &mut self.scratch,
                &mut self.neighbors,
            ),
            FingerprintBackend::ExactScan => {
                // Into the retained buffer — the generic scan used to
                // allocate a fresh Vec (and heap) per observation.
                k_nearest_into_buf(
                    self.fingerprint_db,
                    query,
                    self.config.k,
                    self.metric,
                    &mut self.neighbors,
                );
            }
        }
        let fingerprint_set = CandidateSet::from_neighbors(&self.neighbors)
            .map_err(|_| MolocError::EmptyCandidates)?;
        Ok(self.advance(fingerprint_set, motion))
    }

    /// Processes a whole trace in one call, batching the per-step k-NN
    /// scans through the cache-blocked multi-query kernel when an
    /// indexed fingerprint backend is active (one Q×L pass over the
    /// columnar matrix instead of Q row walks; DESIGN.md §15).
    /// Estimates are **bit-identical** to calling [`Self::observe`]
    /// once per step.
    ///
    /// # Errors
    ///
    /// Returns the first per-step error ([`TrackError`]), exactly as
    /// the equivalent `observe` loop would; steps before it have
    /// already updated the tracker's retained candidate state.
    pub fn observe_trace(
        &mut self,
        queries: &[(Fingerprint, Option<MotionMeasurement>)],
    ) -> Result<Vec<LocationId>, TrackError> {
        let _span = moloc_obs::span("core.tracker.observe_trace");
        let index = match &self.fingerprints {
            FingerprintBackend::OwnedIndex(index) => Some(&**index),
            FingerprintBackend::SharedIndex(index) => Some(*index),
            FingerprintBackend::ExactScan => None,
        };
        // Precompute k-NN for the longest valid prefix of the trace in
        // one blocked scan; a length-mismatched query ends the prefix
        // so the per-step path below reports it in order.
        let precomputed = match index {
            Some(index) if moloc_fingerprint::block::block_enabled() && !queries.is_empty() => {
                let ap = self.fingerprint_db.ap_count();
                let mut block = QueryBlock::new(ap);
                for (query, _) in queries {
                    if query.len() != ap {
                        break;
                    }
                    block.push(query.values());
                }
                if block.is_empty() {
                    None
                } else {
                    let mut scratch = BlockScratch::new();
                    let mut out = BlockNeighbors::new();
                    index.k_nearest_block_into::<SquaredEuclidean>(
                        &mut block,
                        self.config.k,
                        &mut scratch,
                        &mut out,
                    );
                    Some(out)
                }
            }
            _ => None,
        };
        let precount = precomputed.as_ref().map_or(0, BlockNeighbors::query_count);
        let mut estimates = Vec::with_capacity(queries.len());
        for (step, (query, motion)) in queries.iter().enumerate() {
            let estimate = match &precomputed {
                Some(block_out) if step < precount => {
                    if let Some(m) = motion {
                        if !m.direction_deg.is_finite()
                            || !m.offset_m.is_finite()
                            || m.offset_m < 0.0
                        {
                            return Err(TrackError::BadMeasurement);
                        }
                    }
                    let fingerprint_set = CandidateSet::from_neighbors(block_out.query(step))
                        .map_err(|_| MolocError::EmptyCandidates)?;
                    self.advance(fingerprint_set, *motion)
                }
                _ => self.observe(query, *motion)?,
            };
            estimates.push(estimate);
        }
        Ok(estimates)
    }

    /// Folds one step's fingerprint candidates into the retained state:
    /// Eq. 7 motion reweighting when both history and a measurement
    /// exist, then top-pick and retention. Shared by [`Self::observe`]
    /// and the blocked [`Self::observe_trace`] path.
    fn advance(
        &mut self,
        fingerprint_set: CandidateSet,
        motion: Option<MotionMeasurement>,
    ) -> LocationId {
        let posterior = match (self.previous.as_ref(), motion) {
            (Some(prev), Some(m)) => match &self.backend {
                MotionBackend::OwnedKernel(kernel) => evaluate_candidates_kernel(
                    kernel,
                    prev,
                    &fingerprint_set,
                    m.direction_deg,
                    m.offset_m,
                    &self.config,
                ),
                MotionBackend::SharedKernel(kernel) => evaluate_candidates_kernel(
                    kernel,
                    prev,
                    &fingerprint_set,
                    m.direction_deg,
                    m.offset_m,
                    &self.config,
                ),
                MotionBackend::Exact => evaluate_candidates(
                    self.motion_db,
                    prev,
                    &fingerprint_set,
                    m.direction_deg,
                    m.offset_m,
                    &self.config,
                ),
            },
            _ => fingerprint_set,
        };
        let estimate = posterior.top().location;
        self.previous = Some(posterior);
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_motion::matrix::PairStats;
    use moloc_stats::gaussian::Gaussian;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    /// Three locations in a row, 4 m apart going east; L1 and L3 are
    /// fingerprint twins, L2 is distinctive.
    fn world() -> (FingerprintDb, MotionDb) {
        let fdb = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-50.0, -50.0])),
            (l(2), fp(&[-40.0, -70.0])),
            (l(3), fp(&[-50.0, -50.1])), // near-twin of L1
        ])
        .unwrap();
        let mut mdb = MotionDb::new(3);
        let east = |mu_o: f64| PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(mu_o, 0.3).unwrap(),
            sample_count: 10,
        };
        mdb.insert(l(1), l(2), east(4.0));
        mdb.insert(l(2), l(3), east(4.0));
        mdb.insert(l(1), l(3), east(8.0));
        (fdb, mdb)
    }

    #[test]
    fn first_observation_is_fingerprint_only() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        let est = t.observe(&fp(&[-41.0, -69.0]), None).unwrap();
        assert_eq!(est, l(2));
        assert!(t.candidates().is_some());
    }

    #[test]
    fn motion_resolves_twins() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        // Start confidently at L2.
        t.observe(&fp(&[-40.0, -70.0]), None).unwrap();
        // Walk east 4 m → must be L3 even though L1's fingerprint is an
        // equally good match for the twin query.
        let est = t
            .observe(
                &fp(&[-50.0, -50.05]),
                Some(MotionMeasurement {
                    direction_deg: 91.0,
                    offset_m: 4.1,
                }),
            )
            .unwrap();
        assert_eq!(est, l(3));
    }

    #[test]
    fn west_walk_picks_the_other_twin() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        t.observe(&fp(&[-40.0, -70.0]), None).unwrap();
        let est = t
            .observe(
                &fp(&[-50.0, -50.05]),
                Some(MotionMeasurement {
                    direction_deg: 270.0,
                    offset_m: 4.0,
                }),
            )
            .unwrap();
        assert_eq!(est, l(1));
    }

    #[test]
    fn missing_motion_degrades_to_fingerprinting() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        t.observe(&fp(&[-40.0, -70.0]), None).unwrap();
        // No motion info: twins tie, lower id wins the fingerprint set.
        let est = t.observe(&fp(&[-50.0, -50.0]), None).unwrap();
        assert_eq!(est, l(1));
    }

    #[test]
    fn reset_clears_history() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        t.observe(&fp(&[-40.0, -70.0]), None).unwrap();
        t.reset();
        assert!(t.candidates().is_none());
    }

    #[test]
    fn query_length_error() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        let err = t.observe(&fp(&[-40.0]), None).unwrap_err();
        assert_eq!(
            err,
            TrackError::QueryLength {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn bad_measurement_error() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        t.observe(&fp(&[-40.0, -70.0]), None).unwrap();
        let err = t
            .observe(
                &fp(&[-40.0, -70.0]),
                Some(MotionMeasurement {
                    direction_deg: f64::NAN,
                    offset_m: 1.0,
                }),
            )
            .unwrap_err();
        assert_eq!(err, TrackError::BadMeasurement);
    }

    #[test]
    fn kernel_shared_and_exact_backends_agree() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let kernel = crate::matching::build_kernel(&mdb, &config);
        let queries: Vec<(Fingerprint, Option<MotionMeasurement>)> = vec![
            (fp(&[-40.0, -70.0]), None),
            (
                fp(&[-50.0, -50.05]),
                Some(MotionMeasurement {
                    direction_deg: 91.0,
                    offset_m: 4.1,
                }),
            ),
            (
                fp(&[-41.0, -69.5]),
                Some(MotionMeasurement {
                    direction_deg: 270.0,
                    offset_m: 4.0,
                }),
            ),
        ];
        let run = |mut t: MoLocTracker| -> Vec<LocationId> {
            queries
                .iter()
                .map(|(q, m)| t.observe(q, *m).unwrap())
                .collect()
        };
        let owned = run(MoLocTracker::new(&fdb, &mdb, config));
        let shared = run(MoLocTracker::new(&fdb, &mdb, config).with_shared_kernel(&kernel));
        let exact = run(MoLocTracker::new(&fdb, &mdb, config).with_exact_matching());
        assert_eq!(owned, exact);
        assert_eq!(shared, exact);
    }

    #[test]
    fn index_shared_and_exact_scans_agree() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let index = FingerprintIndex::build(&fdb);
        let queries: Vec<(Fingerprint, Option<MotionMeasurement>)> = vec![
            (fp(&[-40.0, -70.0]), None),
            (
                fp(&[-50.0, -50.05]),
                Some(MotionMeasurement {
                    direction_deg: 91.0,
                    offset_m: 4.1,
                }),
            ),
            (fp(&[-50.0, -50.0]), None),
        ];
        let run = |mut t: MoLocTracker| -> Vec<(LocationId, Vec<(LocationId, f64)>)> {
            queries
                .iter()
                .map(|(q, m)| {
                    let est = t.observe(q, *m).unwrap();
                    (est, t.candidates().unwrap().iter().collect())
                })
                .collect()
        };
        let owned = run(MoLocTracker::new(&fdb, &mdb, config));
        let shared = run(MoLocTracker::new(&fdb, &mdb, config).with_shared_index(&index));
        let exact = run(MoLocTracker::new(&fdb, &mdb, config).with_exact_scan());
        assert_eq!(owned, exact);
        assert_eq!(shared, exact);
    }

    #[test]
    fn observe_trace_matches_per_step_observe() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let queries: Vec<(Fingerprint, Option<MotionMeasurement>)> = vec![
            (fp(&[-40.0, -70.0]), None),
            (
                fp(&[-50.0, -50.05]),
                Some(MotionMeasurement {
                    direction_deg: 91.0,
                    offset_m: 4.1,
                }),
            ),
            (
                fp(&[-41.0, -69.5]),
                Some(MotionMeasurement {
                    direction_deg: 270.0,
                    offset_m: 4.0,
                }),
            ),
            (fp(&[-50.0, -50.0]), None),
        ];
        let mut stepwise = MoLocTracker::new(&fdb, &mdb, config);
        let expected: Vec<LocationId> = queries
            .iter()
            .map(|(q, m)| stepwise.observe(q, *m).unwrap())
            .collect();
        let mut batched = MoLocTracker::new(&fdb, &mdb, config);
        assert_eq!(batched.observe_trace(&queries).unwrap(), expected);
        let step_cands: Vec<(LocationId, f64)> = stepwise.candidates().unwrap().iter().collect();
        let batch_cands: Vec<(LocationId, f64)> = batched.candidates().unwrap().iter().collect();
        assert_eq!(step_cands, batch_cands);
        // The exact-scan backend takes the per-step fallback inside
        // observe_trace and must agree too.
        let mut exact = MoLocTracker::new(&fdb, &mdb, config).with_exact_scan();
        assert_eq!(exact.observe_trace(&queries).unwrap(), expected);
    }

    #[test]
    fn observe_trace_surfaces_mid_trace_errors_in_order() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        // A length-mismatched query at step 1 ends the blocked prefix;
        // the error must surface exactly as the stepwise loop's would.
        let err = t
            .observe_trace(&[
                (fp(&[-40.0, -70.0]), None),
                (fp(&[-40.0]), None),
                (fp(&[-50.0, -50.0]), None),
            ])
            .unwrap_err();
        assert_eq!(
            err,
            TrackError::QueryLength {
                expected: 2,
                found: 1
            }
        );
        // Step 0 was processed before the error hit.
        assert!(t.candidates().is_some());
    }

    #[test]
    fn candidate_set_is_retained_with_posterior_probabilities() {
        let (fdb, mdb) = world();
        let mut t = MoLocTracker::new(&fdb, &mdb, MoLocConfig::default());
        t.observe(&fp(&[-40.0, -70.0]), None).unwrap();
        t.observe(
            &fp(&[-50.0, -50.05]),
            Some(MotionMeasurement {
                direction_deg: 90.0,
                offset_m: 4.0,
            }),
        )
        .unwrap();
        let cands = t.candidates().unwrap();
        assert!((cands.total_probability() - 1.0).abs() < 1e-9);
        assert!(cands.probability_of(l(3)) > 0.9);
    }
}
