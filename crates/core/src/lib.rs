#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! MoLoc: motion-assisted indoor localization (ICDCS 2013).
//!
//! This crate is the paper's primary contribution — the serving-stage
//! algorithm of Sec. V that fuses RSS fingerprint matching with motion
//! matching against the crowdsourced motion database:
//!
//! * [`config`] — the algorithm's knobs: candidate count `k`,
//!   discretization windows `α`/`β`, and robustness floors.
//! * [`error`] — the typed [`error::MolocError`] hierarchy and the
//!   [`error::DegradationFlags`] surfaced when serving paths fall back
//!   (masked k-NN, fingerprint-only prior, candidate reset).
//! * [`env`] — strict parsing for `MOLOC_*` environment knobs:
//!   malformed values are typed [`error::MolocError::InvalidConfig`]
//!   errors carrying the offending string, never silent fallbacks.
//! * [`matching`] — motion matching (Eq. 5: `P_{i,j}(d, o) =
//!   D_{i,j}(d)·O_{i,j}(o)`) and its extension over candidate sets
//!   (Eq. 6).
//! * [`evaluate`] — the posterior candidate evaluation (Eq. 7).
//! * [`tracker`] — [`tracker::MoLocTracker`], the stateful localizer
//!   that retains the candidate set between queries.
//! * [`batch`] — [`batch::BatchLocalizer`], the trace-oriented engine
//!   with reusable scratch buffers (zero allocations after warm-up).
//! * [`engine`] — [`engine::MoLoc`], the owning facade bundling the
//!   fingerprint database, motion database, and configuration.
//! * [`viterbi`] — an offline HMM comparator over the same databases
//!   (the related-work baseline the paper argues against).
//! * [`particle`] — a sequential Monte Carlo comparator: the "delicate"
//!   end of the efficiency trade-off Sec. V mentions.
//!
//! # Examples
//!
//! ```
//! use moloc_core::engine::MoLoc;
//! use moloc_core::tracker::MotionMeasurement;
//! use moloc_fingerprint::db::FingerprintDb;
//! use moloc_fingerprint::fingerprint::Fingerprint;
//! use moloc_geometry::LocationId;
//! use moloc_motion::matrix::{MotionDb, PairStats};
//! use moloc_stats::gaussian::Gaussian;
//!
//! // A two-location world: L1 and L2, 5 m apart going east.
//! let fdb = FingerprintDb::from_fingerprints(vec![
//!     (LocationId::new(1), Fingerprint::new(vec![-40.0, -60.0])),
//!     (LocationId::new(2), Fingerprint::new(vec![-60.0, -40.0])),
//! ])?;
//! let mut mdb = MotionDb::new(2);
//! mdb.insert(LocationId::new(1), LocationId::new(2), PairStats {
//!     direction: Gaussian::new(90.0, 5.0).unwrap(),
//!     offset: Gaussian::new(5.0, 0.3).unwrap(),
//!     sample_count: 10,
//! });
//!
//! let moloc = MoLoc::builder(fdb, mdb).build();
//! let mut tracker = moloc.tracker();
//! let first = tracker.observe(&Fingerprint::new(vec![-41.0, -59.0]), None)?;
//! assert_eq!(first, LocationId::new(1));
//! let second = tracker.observe(
//!     &Fingerprint::new(vec![-59.0, -41.0]),
//!     Some(MotionMeasurement { direction_deg: 88.0, offset_m: 5.1 }),
//! )?;
//! assert_eq!(second, LocationId::new(2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod config;
pub mod engine;
pub mod env;
pub mod error;
pub mod evaluate;
pub mod matching;
pub mod particle;
pub mod tracker;
pub mod viterbi;

pub use batch::BatchLocalizer;
pub use config::MoLocConfig;
pub use engine::MoLoc;
pub use error::{DegradationFlags, MolocError};
pub use tracker::{MoLocTracker, MotionMeasurement};
