//! A particle-filter localizer — the "delicate" comparator.
//!
//! Sec. V states that MoLoc deliberately "makes a compromise on the
//! delicacy of the localization algorithm" to stay cheap on a phone.
//! This module implements the delicate end of that trade-off: a
//! sequential Monte Carlo localizer over *continuous* positions, with
//! the same inputs MoLoc consumes (a fingerprint query per interval and
//! the measured direction/offset). It lets the benchmark suite quantify
//! what the compromise costs and buys.
//!
//! Model:
//! * particles carry a position and a weight;
//! * the motion update dead-reckons each particle along the measured
//!   direction/offset with Gaussian jitter (walls and bounds are
//!   handled by the emission — a particle drifting into an
//!   RF-implausible spot loses weight and dies at the next resample);
//! * the emission weight interpolates fingerprint similarity over the
//!   nearest reference locations (inverse squared dissimilarity);
//! * systematic resampling triggers when the effective sample size
//!   drops below half the particle count;
//! * optionally (see [`ParticleLocalizer::with_motion_kernel`]) the
//!   crowdsourced motion database further reweights each particle by
//!   the Eq. 5 probability of its reference-location hop, read from a
//!   precomputed [`MotionKernel`].

use crate::tracker::MotionMeasurement;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, SquaredEuclidean};
use moloc_fingerprint::metric::{Dissimilarity, Euclidean};
use moloc_geometry::{LocationId, ReferenceGrid, Vec2};
use moloc_motion::kernel::MotionKernel;
use moloc_stats::sampling::normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Particle-filter tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticleConfig {
    /// Number of particles.
    pub particles: usize,
    /// Direction jitter per motion update, degrees.
    pub direction_sigma_deg: f64,
    /// Offset jitter per motion update, meters.
    pub offset_sigma_m: f64,
    /// Positional jitter when no motion is available, meters.
    pub idle_sigma_m: f64,
    /// Resample when `ESS < resample_fraction × particles`.
    pub resample_fraction: f64,
    /// RNG seed (the filter owns its randomness so runs reproduce).
    pub seed: u64,
}

impl Default for ParticleConfig {
    fn default() -> Self {
        Self {
            particles: 500,
            direction_sigma_deg: 8.0,
            offset_sigma_m: 0.5,
            idle_sigma_m: 0.5,
            resample_fraction: 0.5,
            seed: 0,
        }
    }
}

impl ParticleConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero particles, non-positive sigmas, or a resample
    /// fraction outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.particles > 0, "need at least one particle");
        assert!(
            self.direction_sigma_deg > 0.0 && self.offset_sigma_m > 0.0 && self.idle_sigma_m > 0.0,
            "sigmas must be positive"
        );
        assert!(
            self.resample_fraction > 0.0 && self.resample_fraction <= 1.0,
            "resample fraction must be in (0, 1]"
        );
    }
}

#[derive(Debug, Clone, Copy)]
struct Particle {
    position: Vec2,
    weight: f64,
}

/// The sequential Monte Carlo localizer.
#[derive(Debug)]
pub struct ParticleLocalizer<'a> {
    fdb: &'a FingerprintDb,
    grid: &'a ReferenceGrid,
    config: ParticleConfig,
    metric: Euclidean,
    particles: Vec<Particle>,
    rng: StdRng,
    kernel: Option<&'a MotionKernel>,
    /// Columnar scan for the per-particle emission weights; `None`
    /// falls back to the per-fingerprint metric lookup.
    index: Option<FingerprintIndex>,
    /// Per-observation distance table: `emission_table[row]` is the
    /// query's dissimilarity to the index's `row`-th fingerprint,
    /// computed once per observation so the emission reweighting loop
    /// does a table lookup per particle instead of an O(APs) scan.
    emission_table: Vec<f64>,
}

impl<'a> ParticleLocalizer<'a> {
    /// Creates an (empty) filter; particles spawn on the first
    /// observation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(fdb: &'a FingerprintDb, grid: &'a ReferenceGrid, config: ParticleConfig) -> Self {
        config.validate();
        Self {
            fdb,
            grid,
            config,
            metric: Euclidean,
            particles: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
            kernel: None,
            index: Some(FingerprintIndex::build(fdb)),
            emission_table: Vec::new(),
        }
    }

    /// Disables the columnar index: emission weights come from the
    /// per-fingerprint metric lookup (the pre-index reference path).
    pub fn with_exact_emissions(mut self) -> Self {
        self.index = None;
        self
    }

    /// Adds crowdsourced motion evidence: on every motion update, each
    /// particle's weight is also multiplied by the kernel's Eq. 5
    /// probability of hopping between the reference locations nearest
    /// its previous and proposed positions. Without this, the filter
    /// dead-reckons on the raw measurement alone (the default, which
    /// reproduces the paper's "delicate comparator" baseline).
    pub fn with_motion_kernel(mut self, kernel: &'a MotionKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Number of live particles (0 before the first observation).
    pub fn particle_count(&self) -> usize {
        self.particles.len()
    }

    /// The effective sample size of the current weights.
    pub fn effective_sample_size(&self) -> f64 {
        let sum_sq: f64 = self.particles.iter().map(|p| p.weight * p.weight).sum();
        if sum_sq == 0.0 {
            0.0
        } else {
            1.0 / sum_sq
        }
    }

    /// Ranks the query against every index row once per observation:
    /// each row's value equals the per-row kernel evaluation the old
    /// per-particle path performed, so the table lookup is bit-exact.
    fn precompute_emissions(&mut self, query: &Fingerprint) {
        if let Some(index) = &self.index {
            index.rank_all_into::<SquaredEuclidean>(query.values(), &mut self.emission_table);
        }
    }

    fn emission_weight(&self, query: &Fingerprint, position: Vec2) -> f64 {
        // Inverse-square dissimilarity against the nearest surveyed
        // location, softened by the distance to it so positions between
        // reference points are not over-penalized.
        let nearest = self.grid.nearest(position);
        let m = if let Some(index) = &self.index {
            let Some(row) = index.position_of(nearest) else {
                return 1e-12;
            };
            self.emission_table[row]
        } else {
            let Some(fp) = self.fdb.fingerprint(nearest) else {
                return 1e-12;
            };
            self.metric.dissimilarity(query, fp)
        };
        let m = m.max(0.1);
        1.0 / (m * m)
    }

    fn spawn(&mut self, query: &Fingerprint) {
        self.precompute_emissions(query);
        let jitter = self.grid.dx().min(self.grid.dy()) / 3.0;
        let mut particles = Vec::with_capacity(self.config.particles);
        for k in 0..self.config.particles {
            let anchor = LocationId::from_index(k % self.fdb.len());
            // Map the k-th anchor index to an actual surveyed location.
            let id = self
                .fdb
                .locations()
                .nth(anchor.index())
                .expect("index within db");
            let base = self.grid.position(id);
            let position = Vec2::new(
                normal(&mut self.rng, base.x, jitter),
                normal(&mut self.rng, base.y, jitter),
            );
            let weight = self.emission_weight(query, position);
            particles.push(Particle { position, weight });
        }
        self.particles = particles;
        self.normalize();
    }

    fn normalize(&mut self) {
        let total: f64 = self.particles.iter().map(|p| p.weight).sum();
        if total <= 0.0 || !total.is_finite() {
            let uniform = 1.0 / self.particles.len() as f64;
            for p in &mut self.particles {
                p.weight = uniform;
            }
        } else {
            for p in &mut self.particles {
                p.weight /= total;
            }
        }
    }

    fn systematic_resample(&mut self) {
        let n = self.particles.len();
        let step = 1.0 / n as f64;
        let start: f64 = self.rng.gen::<f64>() * step;
        let mut cumulative = 0.0;
        let mut source = 0usize;
        let mut resampled = Vec::with_capacity(n);
        for k in 0..n {
            let target = start + k as f64 * step;
            while cumulative + self.particles[source].weight < target && source + 1 < n {
                cumulative += self.particles[source].weight;
                source += 1;
            }
            resampled.push(Particle {
                position: self.particles[source].position,
                weight: step,
            });
        }
        self.particles = resampled;
    }

    /// Processes one observation; returns the reference location
    /// nearest the weighted particle centroid.
    pub fn observe(
        &mut self,
        query: &Fingerprint,
        motion: Option<MotionMeasurement>,
    ) -> LocationId {
        let _span = moloc_obs::span("core.particle.observe");
        if self.particles.is_empty() {
            self.spawn(query);
            return self.estimate();
        }
        // Motion update.
        let (dir_sigma, off_sigma, idle_sigma) = (
            self.config.direction_sigma_deg,
            self.config.offset_sigma_m,
            self.config.idle_sigma_m,
        );
        for i in 0..self.particles.len() {
            let p = self.particles[i].position;
            let proposed = match motion {
                Some(m) => {
                    let d = normal(&mut self.rng, m.direction_deg, dir_sigma);
                    let o = normal(&mut self.rng, m.offset_m, off_sigma).max(0.0);
                    p.walk(d, o)
                }
                None => Vec2::new(
                    normal(&mut self.rng, p.x, idle_sigma),
                    normal(&mut self.rng, p.y, idle_sigma),
                ),
            };
            if let (Some(kernel), Some(m)) = (self.kernel, motion) {
                // Crowdsourced motion evidence: weight the hop between
                // the nearest reference locations by Eq. 5. Floored so
                // an untrained hop dampens rather than kills a particle.
                let from = self.grid.nearest(p);
                let to = self.grid.nearest(proposed);
                let p_hop = kernel
                    .pair_probability(from, to, m.direction_deg, m.offset_m)
                    .max(1e-9);
                self.particles[i].weight *= p_hop;
            }
            self.particles[i].position = proposed;
        }
        // Emission reweighting off the per-observation distance table.
        self.precompute_emissions(query);
        for i in 0..self.particles.len() {
            let w = self.emission_weight(query, self.particles[i].position);
            self.particles[i].weight *= w;
        }
        self.normalize();
        if self.effective_sample_size()
            < self.config.resample_fraction * self.particles.len() as f64
        {
            self.systematic_resample();
        }
        self.estimate()
    }

    /// The current estimate: the reference location nearest the
    /// weighted centroid.
    ///
    /// # Panics
    ///
    /// Panics if called before any observation.
    pub fn estimate(&self) -> LocationId {
        assert!(!self.particles.is_empty(), "no observations yet");
        let mut centroid = Vec2::ZERO;
        for p in &self.particles {
            centroid += p.position * p.weight;
        }
        self.grid.nearest(centroid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    /// 3×1 grid, 4 m spacing, going east; L1/L3 twins.
    fn world() -> (FingerprintDb, ReferenceGrid) {
        let fdb = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-50.0, -50.0])),
            (l(2), fp(&[-40.0, -70.0])),
            (l(3), fp(&[-50.0, -50.1])),
        ])
        .unwrap();
        let grid = ReferenceGrid::new(Vec2::new(2.0, 2.0), 3, 1, 4.0, 4.0).unwrap();
        (fdb, grid)
    }

    fn east(offset: f64) -> Option<MotionMeasurement> {
        Some(MotionMeasurement {
            direction_deg: 90.0,
            offset_m: offset,
        })
    }

    #[test]
    fn first_observation_spawns_and_localizes() {
        let (fdb, grid) = world();
        let mut pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default());
        assert_eq!(pf.particle_count(), 0);
        let est = pf.observe(&fp(&[-41.0, -69.0]), None);
        assert_eq!(est, l(2));
        assert_eq!(pf.particle_count(), 500);
    }

    #[test]
    fn motion_disambiguates_the_twins() {
        let (fdb, grid) = world();
        let mut pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default());
        pf.observe(&fp(&[-40.0, -70.0]), None);
        let est = pf.observe(&fp(&[-50.0, -50.05]), east(4.0));
        assert_eq!(est, l(3), "eastward particles land on L3");
    }

    #[test]
    fn westward_motion_picks_the_other_twin() {
        let (fdb, grid) = world();
        let mut pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default());
        pf.observe(&fp(&[-40.0, -70.0]), None);
        let est = pf.observe(
            &fp(&[-50.0, -50.05]),
            Some(MotionMeasurement {
                direction_deg: 270.0,
                offset_m: 4.0,
            }),
        );
        assert_eq!(est, l(1));
    }

    #[test]
    fn motion_kernel_reweighting_still_disambiguates_the_twins() {
        use crate::config::MoLocConfig;
        use moloc_motion::matrix::{MotionDb, PairStats};
        use moloc_stats::gaussian::Gaussian;

        let (fdb, grid) = world();
        let mut mdb = MotionDb::new(3);
        let east_pair = PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(4.0, 0.3).unwrap(),
            sample_count: 10,
        };
        mdb.insert(l(1), l(2), east_pair);
        mdb.insert(l(2), l(3), east_pair);
        let kernel = crate::matching::build_kernel(&mdb, &MoLocConfig::default());
        let mut pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default())
            .with_motion_kernel(&kernel);
        pf.observe(&fp(&[-40.0, -70.0]), None);
        let est = pf.observe(&fp(&[-50.0, -50.05]), east(4.0));
        assert_eq!(est, l(3), "kernel evidence agrees with the walk east");
    }

    #[test]
    fn indexed_emissions_match_exact_path() {
        // The columnar emission weights are bit-identical to the
        // per-fingerprint metric path, and neither consumes RNG, so the
        // whole particle evolution must coincide.
        let (fdb, grid) = world();
        let run = |exact: bool| {
            let mut pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default());
            if exact {
                pf = pf.with_exact_emissions();
            }
            let a = pf.observe(&fp(&[-40.0, -70.0]), None);
            let b = pf.observe(&fp(&[-50.0, -50.05]), east(4.0));
            let c = pf.observe(&fp(&[-41.0, -69.0]), east(4.0));
            (a, b, c, pf.effective_sample_size())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn runs_are_reproducible_via_seed() {
        let (fdb, grid) = world();
        let run = |seed| {
            let config = ParticleConfig {
                seed,
                ..ParticleConfig::default()
            };
            let mut pf = ParticleLocalizer::new(&fdb, &grid, config);
            pf.observe(&fp(&[-40.0, -70.0]), None);
            pf.observe(&fp(&[-50.0, -50.05]), east(4.0))
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn ess_stays_positive_and_resampling_bounds_degeneracy() {
        let (fdb, grid) = world();
        let mut pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default());
        pf.observe(&fp(&[-40.0, -70.0]), None);
        for _ in 0..10 {
            pf.observe(&fp(&[-50.0, -50.05]), east(4.0));
            let ess = pf.effective_sample_size();
            assert!(ess > 1.0, "ESS collapsed to {ess}");
        }
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn estimate_before_observe_panics() {
        let (fdb, grid) = world();
        let pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default());
        let _ = pf.estimate();
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn zero_particles_rejected() {
        let (fdb, grid) = world();
        let config = ParticleConfig {
            particles: 0,
            ..ParticleConfig::default()
        };
        let _ = ParticleLocalizer::new(&fdb, &grid, config);
    }
}
