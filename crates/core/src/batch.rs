//! The zero-allocation batched localization engine.
//!
//! [`crate::tracker::MoLocTracker`] allocates per observation: a fresh
//! neighbor vector from k-NN, a [`CandidateSet`] for Eq. 4, a weight
//! vector plus another set for Eq. 7. Fine for one query; wasteful for
//! trace-driven evaluation and the "millions of users" serving target,
//! where the same small buffers are needed over and over.
//!
//! [`BatchLocalizer`] owns every per-step buffer — the k-NN selection
//! heap, the neighbor list, the candidate and posterior tables — and
//! reuses them across observations: after the first observation warms
//! the buffers up, a full trace of localization steps performs **zero
//! heap allocations** (asserted by `tests/zero_alloc.rs` with a
//! counting allocator).
//!
//! The arithmetic replicates the tracker's kernel path exactly — same
//! expressions, same iteration order, same tie-breaks — so estimates
//! are bit-identical to `MoLocTracker::observe` with the Euclidean
//! metric (proven by the digest test in `crates/eval/tests/`).

use crate::config::MoLocConfig;
use crate::error::DegradationFlags;
use crate::matching::build_kernel;
use crate::tracker::{MotionMeasurement, TrackError};
use moloc_fingerprint::block::{BlockNeighbors, BlockScratch, QueryBlock};
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, SquaredEuclidean};
use moloc_fingerprint::knn::Neighbor;
use moloc_geometry::LocationId;
use moloc_motion::kernel::MotionKernel;
use moloc_motion::matrix::MotionDb;
use std::cmp::Ordering;
use std::sync::Arc;

#[cfg(doc)]
use moloc_fingerprint::candidates::CandidateSet;

/// A resource the engine either owns, borrows from a caller who shares
/// it across engines (one build per setting, not per trace), or holds
/// reference-counted so a live-update publisher can retire the backing
/// snapshot while readers finish their current step on it.
#[derive(Debug)]
enum Resource<'a, T> {
    Owned(Box<T>),
    Shared(&'a T),
    Counted(Arc<T>),
}

impl<T> Resource<'_, T> {
    fn get(&self) -> &T {
        match self {
            Resource::Owned(v) => v,
            Resource::Shared(v) => v,
            Resource::Counted(v) => v,
        }
    }
}

/// The complete working set of a [`BatchLocalizer`]: k-NN heap slots,
/// the neighbor list, and the Eq. 4/Eq. 7 candidate tables.
///
/// Detached from the engine so worker arenas can recycle one warmed
/// scratch across many short-lived engines (one per trace): check the
/// scratch out of an arena, build an engine with
/// [`BatchLocalizer::with_scratch`], run the trace, and reclaim the
/// buffers with [`BatchLocalizer::into_scratch`]. After the first trace
/// warms the buffers, every later engine built over them performs zero
/// hot-path allocation.
#[derive(Debug)]
pub struct BatchScratch {
    scratch: KnnScratch,
    neighbors: Vec<Neighbor>,
    current: Vec<(LocationId, f64)>,
    weights: Vec<(LocationId, f64)>,
    previous: Vec<(LocationId, f64)>,
    /// Per-trace query batch for the blocked k-NN precompute
    /// (DESIGN.md §15): all of a trace's steps localize as one
    /// cache-blocked scan before the sequential Eq. 4/7 recursion.
    block: QueryBlock,
    block_scratch: BlockScratch,
    block_out: BlockNeighbors,
}

impl BatchScratch {
    /// A fresh working set sized for `k` neighbors.
    pub fn for_k(k: usize) -> Self {
        BatchScratch {
            scratch: KnnScratch::with_k(k),
            neighbors: Vec::with_capacity(k),
            current: Vec::with_capacity(k),
            weights: Vec::with_capacity(k),
            previous: Vec::with_capacity(k),
            block: QueryBlock::default(),
            block_scratch: BlockScratch::new(),
            block_out: BlockNeighbors::new(),
        }
    }

    /// Clears every buffer's contents, keeping capacity. Engines call
    /// this on checkout so recycled scratch can never leak one trace's
    /// posterior into the next.
    fn clear(&mut self) {
        self.neighbors.clear();
        self.current.clear();
        self.weights.clear();
        self.previous.clear();
        self.block.reset(0);
        self.block_out.clear();
    }
}

/// Locally accumulated histogram batches for the engine's two hot
/// metrics: Eq. 7 pair products and per-observation latency. Plain
/// fields — no atomics, no thread-local — published once per trace
/// (or per call on the single-shot path) via `moloc_obs::record_fold`.
#[derive(Debug, Default)]
struct ObsFolds {
    eq7_pair_products: moloc_obs::Fold,
    observe_seconds: moloc_obs::Fold,
}

impl ObsFolds {
    fn publish(&mut self) {
        moloc_obs::record_fold("core.eq7.pair_products", &self.eq7_pair_products);
        self.eq7_pair_products.clear();
        moloc_obs::record_fold("core.batch.observe", &self.observe_seconds);
        self.observe_seconds.clear();
    }
}

/// The reusable-buffer localization engine (Euclidean metric, motion
/// kernel — the production configuration).
#[derive(Debug)]
pub struct BatchLocalizer<'a> {
    index: Resource<'a, FingerprintIndex>,
    kernel: Resource<'a, MotionKernel>,
    config: MoLocConfig,
    buf: BatchScratch,
    has_previous: bool,
    last_flags: DegradationFlags,
    folds: ObsFolds,
}

impl BatchLocalizer<'static> {
    /// Builds a self-contained engine: flattens `fingerprint_db` into a
    /// [`FingerprintIndex`] and precomputes a [`MotionKernel`] over
    /// `motion_db`. When running many traces over one setting, build
    /// those once and use [`BatchLocalizer::new_with_index`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(
        fingerprint_db: &FingerprintDb,
        motion_db: &MotionDb,
        config: MoLocConfig,
    ) -> BatchLocalizer<'static> {
        config.validate();
        let index = FingerprintIndex::build(fingerprint_db);
        let kernel = build_kernel(motion_db, &config);
        BatchLocalizer {
            index: Resource::Owned(Box::new(index)),
            kernel: Resource::Owned(Box::new(kernel)),
            config,
            buf: BatchScratch::for_k(config.k),
            has_previous: false,
            last_flags: DegradationFlags::empty(),
            folds: ObsFolds::default(),
        }
    }

    /// An engine over reference-counted artifacts — the live-update
    /// path. Unlike [`BatchLocalizer::new_with_index`], the engine is
    /// `'static`: it co-owns the index and kernel, so a snapshot
    /// publisher can retire the epoch that produced them while this
    /// engine finishes its trace on the old data.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new_counted(
        index: Arc<FingerprintIndex>,
        kernel: Arc<MotionKernel>,
        config: MoLocConfig,
    ) -> BatchLocalizer<'static> {
        config.validate();
        BatchLocalizer {
            index: Resource::Counted(index),
            kernel: Resource::Counted(kernel),
            config,
            buf: BatchScratch::for_k(config.k),
            has_previous: false,
            last_flags: DegradationFlags::empty(),
            folds: ObsFolds::default(),
        }
    }
}

impl<'a> BatchLocalizer<'a> {
    /// An engine over caller-shared artifacts: the index and kernel are
    /// built once per `(fingerprint db, motion db, config)` and shared
    /// across the per-trace engines, exactly like
    /// `MoLocTracker::new_with_kernel`. The kernel must have been built
    /// from the same motion database and config (see [`build_kernel`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new_with_index(
        index: &'a FingerprintIndex,
        kernel: &'a MotionKernel,
        config: MoLocConfig,
    ) -> BatchLocalizer<'a> {
        Self::with_scratch(index, kernel, config, BatchScratch::for_k(config.k))
    }

    /// [`BatchLocalizer::new_with_index`] over a recycled working set —
    /// the arena path. The scratch is cleared on entry (capacity kept),
    /// so a recycled checkout behaves exactly like a fresh one, and an
    /// already-warm scratch makes engine construction allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_scratch(
        index: &'a FingerprintIndex,
        kernel: &'a MotionKernel,
        config: MoLocConfig,
        mut buf: BatchScratch,
    ) -> BatchLocalizer<'a> {
        config.validate();
        buf.clear();
        BatchLocalizer {
            index: Resource::Shared(index),
            kernel: Resource::Shared(kernel),
            config,
            buf,
            has_previous: false,
            last_flags: DegradationFlags::empty(),
            folds: ObsFolds::default(),
        }
    }

    /// Dismantles the engine, handing its warmed working set back for
    /// recycling (the counterpart of [`BatchLocalizer::with_scratch`]).
    pub fn into_scratch(self) -> BatchScratch {
        self.buf
    }

    /// Swaps the engine onto a newer epoch's index and kernel, keeping
    /// the retained posterior, degradation flags, and warmed buffers —
    /// the live-update reader's epoch transition. The posterior is a
    /// list of `(LocationId, probability)` pairs, so it stays
    /// meaningful across the swap as long as the new snapshot keeps the
    /// same location-id space (the live-update contract: crowdsourced
    /// deltas refine locations, they never renumber them). Call only at
    /// a step boundary — one localization step must never mix epochs.
    pub fn adopt_counted(&mut self, index: Arc<FingerprintIndex>, kernel: Arc<MotionKernel>) {
        self.index = Resource::Counted(index);
        self.kernel = Resource::Counted(kernel);
    }

    /// The engine's fingerprint index.
    pub fn index(&self) -> &FingerprintIndex {
        self.index.get()
    }

    /// The retained posterior from the last observation:
    /// `(location, probability)` in candidate order, empty before the
    /// first observation.
    pub fn posterior(&self) -> &[(LocationId, f64)] {
        if self.has_previous {
            &self.buf.previous
        } else {
            &[]
        }
    }

    /// Forgets all history, keeping the warmed buffers.
    pub fn reset(&mut self) {
        self.buf.previous.clear();
        self.has_previous = false;
        self.last_flags = DegradationFlags::empty();
    }

    /// Restores the engine's complete recursion state from a
    /// checkpoint: the retained posterior (as returned by
    /// [`BatchLocalizer::posterior`]) and the degradation flags of the
    /// observation that produced it.
    ///
    /// Eq. 7 consumes nothing but the previous posterior, so an engine
    /// restored this way continues **bit-identically** to the engine
    /// that produced the checkpoint — the crash-recovery contract of
    /// `moloc-session` (proven by its kill-and-replay digest tests). An
    /// empty `posterior` restores the pre-first-observation state.
    pub fn restore_posterior(&mut self, posterior: &[(LocationId, f64)], flags: DegradationFlags) {
        self.buf.previous.clear();
        self.buf.previous.extend_from_slice(posterior);
        self.has_previous = !posterior.is_empty();
        self.last_flags = flags;
    }

    /// Which graceful fallbacks fired during the most recent
    /// observation (empty when the estimate came from the clean
    /// full-fusion path). See [`DegradationFlags`] for the ladder.
    pub fn last_flags(&self) -> DegradationFlags {
        self.last_flags
    }

    /// Processes one localization query; same contract as
    /// `MoLocTracker::observe`.
    ///
    /// # Errors
    ///
    /// Returns [`TrackError`] for mismatched query lengths or
    /// non-finite measurements.
    pub fn observe(
        &mut self,
        query: &Fingerprint,
        motion: Option<MotionMeasurement>,
    ) -> Result<LocationId, TrackError> {
        self.observe_slice(query.values(), motion)
    }

    /// [`BatchLocalizer::observe`] over a raw RSS slice — lets trace
    /// pipelines feed scan buffers directly, with no per-observation
    /// [`Fingerprint`] allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TrackError`] for mismatched query lengths or
    /// non-finite measurements.
    pub fn observe_slice(
        &mut self,
        query: &[f64],
        motion: Option<MotionMeasurement>,
    ) -> Result<LocationId, TrackError> {
        let _span = moloc_obs::span("core.batch.observe");
        let estimate = self.observe_slice_uncounted(query, motion)?;
        if moloc_obs::is_enabled() {
            record_rung_occupancy(self.last_flags);
            self.folds.publish();
        }
        Ok(estimate)
    }

    /// [`BatchLocalizer::observe_slice`] minus the metric emission: no
    /// timing span, rung occupancy left in `last_flags`, and the Eq. 7
    /// sample parked in `folds`. The trace loop accumulates all three
    /// locally and publishes per-trace batches instead of
    /// per-observation recorder calls (same totals, same
    /// distributions, a fraction of the recorder traffic).
    fn observe_slice_uncounted(
        &mut self,
        query: &[f64],
        motion: Option<MotionMeasurement>,
    ) -> Result<LocationId, TrackError> {
        self.last_flags = DegradationFlags::empty();
        let index = self.index.get();
        if query.len() != index.ap_count() {
            return Err(TrackError::QueryLength {
                expected: index.ap_count(),
                found: query.len(),
            });
        }
        if let Some(m) = motion {
            if !m.direction_deg.is_finite() || !m.offset_m.is_finite() || m.offset_m < 0.0 {
                return Err(TrackError::BadMeasurement);
            }
        }

        // Degradation rung 0 (masked k-NN): queries with missing
        // (non-finite) APs rank on the observed dimensions only. Clean
        // queries keep the bit-exact monomorphized hot path — the
        // branch condition, not the arithmetic, is the only addition.
        if query.iter().all(|v| v.is_finite()) {
            index.k_nearest_into::<SquaredEuclidean>(
                query,
                self.config.k,
                &mut self.buf.scratch,
                &mut self.buf.neighbors,
            );
        } else {
            self.last_flags.insert(DegradationFlags::MASKED_QUERY);
            let observed = index.k_nearest_masked_into(
                query,
                self.config.k,
                &mut self.buf.scratch,
                &mut self.buf.neighbors,
            );
            if observed == 0 {
                // Every AP missing: all ranks are 0, so Eq. 4's
                // exact-match branch below yields a uniform prior over
                // the k lowest-id locations.
                self.last_flags.insert(DegradationFlags::NO_OBSERVED_APS);
            }
        }
        Ok(self.posterior_step(motion))
    }

    /// [`BatchLocalizer::observe_slice_uncounted`] for a step whose
    /// k-NN already ran in the trace's blocked precompute: copies the
    /// step's precomputed neighbors into the working buffer, rebuilds
    /// the same degradation flags the per-query path would have set
    /// (the block records clean/observed per query), and runs the
    /// shared posterior stage. Query length was validated when the
    /// block was built; motion is validated here, preserving the
    /// first-error contract.
    fn observe_precomputed_uncounted(
        &mut self,
        step: usize,
        motion: Option<MotionMeasurement>,
    ) -> Result<LocationId, TrackError> {
        self.last_flags = DegradationFlags::empty();
        if let Some(m) = motion {
            if !m.direction_deg.is_finite() || !m.offset_m.is_finite() || m.offset_m < 0.0 {
                return Err(TrackError::BadMeasurement);
            }
        }
        {
            let BatchScratch {
                block_out,
                neighbors,
                ..
            } = &mut self.buf;
            neighbors.clear();
            neighbors.extend_from_slice(block_out.query(step));
        }
        if !self.buf.block.is_clean(step) {
            self.last_flags.insert(DegradationFlags::MASKED_QUERY);
            if self.buf.block_out.observed(step) == 0 {
                self.last_flags.insert(DegradationFlags::NO_OBSERVED_APS);
            }
        }
        Ok(self.posterior_step(motion))
    }

    /// The posterior stage shared by the per-query and precomputed
    /// paths: Eq. 4 over `buf.neighbors`, Eq. 7 against the retained
    /// history, top pick, and the posterior buffer swap. Inputs are
    /// the neighbor buffer and the k-NN degradation flags, both set by
    /// the caller.
    fn posterior_step(&mut self, motion: Option<MotionMeasurement>) -> LocationId {
        // Eq. 4 into the reusable candidate table — the same arithmetic
        // as `CandidateSet::from_neighbors`, including the exact-match
        // branch and the iterator summation order.
        self.buf.current.clear();
        let exact = self
            .buf
            .neighbors
            .iter()
            .filter(|n| n.dissimilarity <= f64::EPSILON)
            .count();
        if exact > 0 {
            let p = 1.0 / exact as f64;
            for n in &self.buf.neighbors {
                let probability = if n.dissimilarity <= f64::EPSILON {
                    p
                } else {
                    0.0
                };
                self.buf.current.push((n.location, probability));
            }
        } else {
            let total: f64 = self
                .buf
                .neighbors
                .iter()
                .map(|n| 1.0 / n.dissimilarity)
                .sum();
            if total.is_finite() && total > 0.0 {
                for n in &self.buf.neighbors {
                    self.buf
                        .current
                        .push((n.location, (1.0 / n.dissimilarity) / total));
                }
            } else {
                // Degradation rung 2 (candidate reset): the fingerprint
                // evidence itself collapsed — reset to a uniform prior
                // over the retrieved neighbors and drop history, which
                // refers to a posterior that no longer means anything.
                self.last_flags.insert(DegradationFlags::CANDIDATE_RESET);
                let p = 1.0 / self.buf.neighbors.len() as f64;
                for n in &self.buf.neighbors {
                    self.buf.current.push((n.location, p));
                }
                self.buf.previous.clear();
                self.has_previous = false;
            }
        }

        // Eq. 7 when both history and motion exist — mirrors
        // `evaluate_candidates_kernel` over the retained buffers.
        let reweighted = match motion {
            Some(m) if self.has_previous => {
                // Eq. 7 propagation cost: the k x k transition products
                // this step evaluates. Advisory only — recording never
                // feeds back into the weights. Folded locally; the
                // caller publishes the batch.
                if moloc_obs::is_enabled() {
                    self.folds
                        .eq7_pair_products
                        .record((self.buf.current.len() * self.buf.previous.len()) as f64);
                }
                let kernel = self.kernel.get();
                // The stay-in-place mass ignores the pair, so hoist it
                // out of the k x k product (consecutive candidate sets
                // overlap heavily, hitting the diagonal up to k times).
                let stay = kernel.stay_probability(m.offset_m);
                self.buf.weights.clear();
                for &(loc, p_fingerprint) in &self.buf.current {
                    let p_motion: f64 = self
                        .buf
                        .previous
                        .iter()
                        .map(|&(from, p)| {
                            p * if from == loc {
                                stay
                            } else {
                                kernel.pair_probability(from, loc, m.direction_deg, m.offset_m)
                            }
                        })
                        .sum();
                    self.buf.weights.push((loc, p_fingerprint * p_motion));
                }
                let total: f64 = self.buf.weights.iter().map(|(_, w)| w).sum();
                // Degradation rung 1 (fingerprint-only): degenerate or
                // non-finite totals fall back to the fingerprint-only
                // distribution, as `evaluate_candidates_kernel` does. A
                // NaN total would slip past a plain `<=` floor check
                // and normalize into a NaN posterior.
                if total.is_finite() && total > self.config.degenerate_total_floor {
                    for entry in &mut self.buf.weights {
                        entry.1 /= total;
                    }
                    true
                } else {
                    self.last_flags.insert(DegradationFlags::MOTION_FALLBACK);
                    false
                }
            }
            _ => false,
        };
        let posterior: &[(LocationId, f64)] = if reweighted {
            &self.buf.weights
        } else {
            &self.buf.current
        };
        moloc_verify::check_posterior("core.batch.posterior", posterior.iter().copied());

        // `CandidateSet::top`: highest probability, ties to lower id.
        // `total_cmp` orders identically to `partial_cmp` here (the
        // guards above keep every retained probability finite and
        // non-negative, and no path produces -0.0) without a panicking
        // `expect` on the comparison.
        let mut best = 0usize;
        for i in 1..posterior.len() {
            let ord = posterior[i]
                .1
                .total_cmp(&posterior[best].1)
                .then_with(|| posterior[best].0.cmp(&posterior[i].0));
            if ord == Ordering::Greater {
                best = i;
            }
        }
        let estimate = posterior[best].0;

        // Retain the posterior by swapping buffers (no copy, no alloc).
        if reweighted {
            std::mem::swap(&mut self.buf.previous, &mut self.buf.weights);
        } else {
            std::mem::swap(&mut self.buf.previous, &mut self.buf.current);
        }
        self.has_previous = true;
        estimate
    }

    /// Localizes a whole trace into `out` (cleared first), resetting
    /// history beforehand. With warmed buffers and a pre-sized `out`,
    /// the entire call performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrackError`] encountered; `out` then holds
    /// the estimates produced before the failure.
    pub fn localize_trace_into(
        &mut self,
        queries: &[(Fingerprint, Option<MotionMeasurement>)],
        out: &mut Vec<LocationId>,
    ) -> Result<(), TrackError> {
        self.localize_steps_into(
            queries.len(),
            |i| queries[i].0.values(),
            |i| queries[i].1,
            out,
        )
    }

    /// [`BatchLocalizer::localize_trace_into`] over raw RSS slices —
    /// the trace-level counterpart of [`BatchLocalizer::observe_slice`],
    /// letting pipelines feed scan buffers directly (no per-pass
    /// [`Fingerprint`] allocation) while still batching the whole
    /// trace's k-NN through the blocked multi-query scan. `motions[i]`
    /// is the interval measured *before* `scans[i]` (`None` for the
    /// first pass).
    ///
    /// # Errors
    ///
    /// Returns the first [`TrackError`] encountered; `out` then holds
    /// the estimates produced before the failure.
    ///
    /// # Panics
    ///
    /// Panics when `scans` and `motions` have different lengths.
    pub fn localize_scans_into(
        &mut self,
        scans: &[&[f64]],
        motions: &[Option<MotionMeasurement>],
        out: &mut Vec<LocationId>,
    ) -> Result<(), TrackError> {
        assert_eq!(scans.len(), motions.len(), "one motion interval per scan");
        self.localize_steps_into(scans.len(), |i| scans[i], |i| motions[i], out)
    }

    /// The shared trace driver behind [`BatchLocalizer::localize_trace_into`]
    /// and [`BatchLocalizer::localize_scans_into`]: steps are addressed
    /// by index through the two accessors so both entry points share
    /// one monomorphized loop per closure pair.
    fn localize_steps_into<'q>(
        &mut self,
        len: usize,
        query_at: impl Fn(usize) -> &'q [f64],
        motion_at: impl Fn(usize) -> Option<MotionMeasurement>,
        out: &mut Vec<LocationId>,
    ) -> Result<(), TrackError> {
        // Trace-level span: besides timing the whole trace, it pins the
        // thread-local obs buffer open across every observation, so the
        // few remaining per-trace recorder calls merge locally and hit
        // the registry once when it closes.
        let _span = moloc_obs::span("core.batch.localize_trace");
        self.reset();
        out.clear();
        // Blocked k-NN precompute (DESIGN.md §15): candidate
        // generation depends only on the query, so the whole trace's
        // k-NN runs as one cache-blocked multi-query scan before the
        // sequential Eq. 4/7 recursion — bit-identical results, one
        // streaming pass over the index instead of one per step. The
        // block stops at the first length-invalid query so the
        // first-error-with-partial-results contract is untouched
        // (later steps, if any run, use the per-query path and report
        // the error exactly where the serial loop would).
        let precomputed = if moloc_fingerprint::block::block_enabled() && len > 0 {
            let index = self.index.get();
            let ap = index.ap_count();
            let block = &mut self.buf.block;
            block.reset(ap);
            for i in 0..len {
                let query = query_at(i);
                if query.len() != ap {
                    break;
                }
                block.push(query);
            }
            if block.is_empty() {
                0
            } else {
                index.k_nearest_block_into::<SquaredEuclidean>(
                    block,
                    self.config.k,
                    &mut self.buf.block_scratch,
                    &mut self.buf.block_out,
                );
                self.buf.block_out.query_count()
            }
        } else {
            0
        };
        // All per-observation metrics accumulate in plain locals across
        // the trace and publish once at the end — identical totals and
        // distributions to per-observation emission, without recorder
        // round trips on the hottest loop in the workspace. Timing uses
        // chained timestamps: the end of one observation starts the
        // next, one clock read per pass where a span would pay two.
        let mut occupancy = RungOccupancy::default();
        let counting = moloc_obs::is_enabled();
        let mut prev = counting.then(std::time::Instant::now);
        let mut result = Ok(());
        for step in 0..len {
            let motion = motion_at(step);
            let outcome = if step < precomputed {
                self.observe_precomputed_uncounted(step, motion)
            } else {
                self.observe_slice_uncounted(query_at(step), motion)
            };
            match outcome {
                Ok(estimate) => {
                    out.push(estimate);
                    if let Some(p) = prev {
                        let now = std::time::Instant::now();
                        self.folds
                            .observe_seconds
                            .record(now.duration_since(p).as_secs_f64());
                        prev = Some(now);
                    }
                    if counting {
                        occupancy.add(self.last_flags);
                    }
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        occupancy.emit();
        self.folds.publish();
        result
    }

    /// Convenience wrapper over
    /// [`BatchLocalizer::localize_trace_into`] allocating the output.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrackError`] encountered.
    pub fn localize_trace(
        &mut self,
        queries: &[(Fingerprint, Option<MotionMeasurement>)],
    ) -> Result<Vec<LocationId>, TrackError> {
        let mut out = Vec::with_capacity(queries.len());
        self.localize_trace_into(queries, &mut out)?;
        Ok(out)
    }
}

/// Locally summed degradation-ladder occupancy for one trace: the same
/// taxonomy [`record_rung_occupancy`] emits per observation, folded
/// into plain integers and published as one `counter_add` per touched
/// name when the trace ends.
#[derive(Debug, Default)]
struct RungOccupancy {
    observations: u64,
    clean: u64,
    masked_query: u64,
    no_observed_aps: u64,
    motion_fallback: u64,
    candidate_reset: u64,
}

impl RungOccupancy {
    fn add(&mut self, flags: DegradationFlags) {
        self.observations += 1;
        if flags.is_empty() {
            self.clean += 1;
            return;
        }
        self.masked_query += u64::from(flags.contains(DegradationFlags::MASKED_QUERY));
        self.no_observed_aps += u64::from(flags.contains(DegradationFlags::NO_OBSERVED_APS));
        self.motion_fallback += u64::from(flags.contains(DegradationFlags::MOTION_FALLBACK));
        self.candidate_reset += u64::from(flags.contains(DegradationFlags::CANDIDATE_RESET));
    }

    fn emit(&self) {
        for (name, count) in [
            ("core.degradation.observations", self.observations),
            ("core.degradation.clean", self.clean),
            ("core.degradation.masked_query", self.masked_query),
            ("core.degradation.no_observed_aps", self.no_observed_aps),
            ("core.degradation.motion_fallback", self.motion_fallback),
            ("core.degradation.candidate_reset", self.candidate_reset),
        ] {
            if count > 0 {
                moloc_obs::counter_add(name, count);
            }
        }
    }
}

/// Counts one observation against the degradation-ladder occupancy
/// counters (DESIGN.md §13): the total, the clean path, and one counter
/// per rung that fired. Rungs are not exclusive — a blind query counts
/// under both `masked_query` and `no_observed_aps`, mirroring
/// [`DegradationFlags`] semantics.
fn record_rung_occupancy(flags: DegradationFlags) {
    moloc_obs::counter_add("core.degradation.observations", 1);
    if flags.is_empty() {
        moloc_obs::counter_add("core.degradation.clean", 1);
        return;
    }
    for (flag, name) in [
        (
            DegradationFlags::MASKED_QUERY,
            "core.degradation.masked_query",
        ),
        (
            DegradationFlags::NO_OBSERVED_APS,
            "core.degradation.no_observed_aps",
        ),
        (
            DegradationFlags::MOTION_FALLBACK,
            "core.degradation.motion_fallback",
        ),
        (
            DegradationFlags::CANDIDATE_RESET,
            "core.degradation.candidate_reset",
        ),
    ] {
        if flags.contains(flag) {
            moloc_obs::counter_add(name, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::MoLocTracker;
    use moloc_motion::matrix::PairStats;
    use moloc_stats::gaussian::Gaussian;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    /// The tracker module's twin world: L1/L3 fingerprint twins on an
    /// eastward corridor through L2.
    fn world() -> (FingerprintDb, MotionDb) {
        let fdb = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-50.0, -50.0])),
            (l(2), fp(&[-40.0, -70.0])),
            (l(3), fp(&[-50.0, -50.1])),
        ])
        .unwrap();
        let mut mdb = MotionDb::new(3);
        let east = |mu_o: f64| PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(mu_o, 0.3).unwrap(),
            sample_count: 10,
        };
        mdb.insert(l(1), l(2), east(4.0));
        mdb.insert(l(2), l(3), east(4.0));
        mdb.insert(l(1), l(3), east(8.0));
        (fdb, mdb)
    }

    fn queries() -> Vec<(Fingerprint, Option<MotionMeasurement>)> {
        vec![
            (fp(&[-40.0, -70.0]), None),
            (
                fp(&[-50.0, -50.05]),
                Some(MotionMeasurement {
                    direction_deg: 91.0,
                    offset_m: 4.1,
                }),
            ),
            (
                fp(&[-41.0, -69.5]),
                Some(MotionMeasurement {
                    direction_deg: 270.0,
                    offset_m: 4.0,
                }),
            ),
            (fp(&[-50.0, -50.0]), None),
        ]
    }

    #[test]
    fn matches_tracker_estimates() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let mut tracker = MoLocTracker::new(&fdb, &mdb, config);
        let expected: Vec<LocationId> = queries()
            .iter()
            .map(|(q, m)| tracker.observe(q, *m).unwrap())
            .collect();
        let mut engine = BatchLocalizer::new(&fdb, &mdb, config);
        assert_eq!(engine.localize_trace(&queries()).unwrap(), expected);
    }

    #[test]
    fn shared_index_matches_owned() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let index = FingerprintIndex::build(&fdb);
        let kernel = build_kernel(&mdb, &config);
        let mut owned = BatchLocalizer::new(&fdb, &mdb, config);
        let mut shared = BatchLocalizer::new_with_index(&index, &kernel, config);
        assert_eq!(
            owned.localize_trace(&queries()).unwrap(),
            shared.localize_trace(&queries()).unwrap()
        );
    }

    #[test]
    fn posterior_matches_tracker_candidates() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let mut tracker = MoLocTracker::new(&fdb, &mdb, config);
        let mut engine = BatchLocalizer::new(&fdb, &mdb, config);
        assert!(engine.posterior().is_empty());
        for (q, m) in &queries() {
            tracker.observe(q, *m).unwrap();
            engine.observe(q, *m).unwrap();
            let tracked: Vec<(LocationId, f64)> = tracker.candidates().unwrap().iter().collect();
            assert_eq!(engine.posterior(), tracked.as_slice());
        }
    }

    #[test]
    fn reset_clears_history_and_reuse_is_stable() {
        let (fdb, mdb) = world();
        let mut engine = BatchLocalizer::new(&fdb, &mdb, MoLocConfig::default());
        let first = engine.localize_trace(&queries()).unwrap();
        // localize_trace resets internally: a second run must agree.
        let second = engine.localize_trace(&queries()).unwrap();
        assert_eq!(first, second);
        engine.reset();
        assert!(engine.posterior().is_empty());
    }

    #[test]
    fn restore_posterior_resumes_bit_identically() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let queries = queries();
        // Uninterrupted reference run.
        let mut reference = BatchLocalizer::new(&fdb, &mdb, config);
        let mut expected = Vec::new();
        for (q, m) in &queries {
            expected.push(reference.observe(q, *m).unwrap());
        }
        // Cut the run at every boundary, checkpoint the posterior, and
        // resume on a fresh engine: estimates and retained posteriors
        // must match the uninterrupted run bit-for-bit.
        for cut in 0..=queries.len() {
            let mut first = BatchLocalizer::new(&fdb, &mdb, config);
            let mut estimates = Vec::new();
            for (q, m) in &queries[..cut] {
                estimates.push(first.observe(q, *m).unwrap());
            }
            let saved: Vec<(LocationId, f64)> = first.posterior().to_vec();
            let flags = first.last_flags();
            let mut resumed = BatchLocalizer::new(&fdb, &mdb, config);
            resumed.restore_posterior(&saved, flags);
            assert_eq!(resumed.posterior(), saved.as_slice());
            assert_eq!(resumed.last_flags(), flags);
            for (q, m) in &queries[cut..] {
                estimates.push(resumed.observe(q, *m).unwrap());
            }
            assert_eq!(estimates, expected, "cut at {cut} diverged");
            if cut == queries.len() {
                let bits = |p: &[(LocationId, f64)]| {
                    p.iter().map(|(l, v)| (*l, v.to_bits())).collect::<Vec<_>>()
                };
                assert_eq!(bits(resumed.posterior()), bits(reference.posterior()));
            }
        }
    }

    #[test]
    fn counted_engine_matches_owned_and_adopt_preserves_posterior() {
        let (fdb, mdb) = world();
        let config = MoLocConfig::default();
        let index = Arc::new(FingerprintIndex::build(&fdb));
        let kernel = Arc::new(build_kernel(&mdb, &config));
        let mut owned = BatchLocalizer::new(&fdb, &mdb, config);
        let mut counted = BatchLocalizer::new_counted(Arc::clone(&index), Arc::clone(&kernel), config);
        assert_eq!(
            owned.localize_trace(&queries()).unwrap(),
            counted.localize_trace(&queries()).unwrap()
        );

        // Mid-trace adoption of the *same* artifacts behind fresh Arcs
        // must be invisible: identical posterior before and after, and
        // the continuation matches an unswapped engine bit-for-bit.
        let queries = queries();
        let mut reference =
            BatchLocalizer::new_counted(Arc::clone(&index), Arc::clone(&kernel), config);
        let mut swapped =
            BatchLocalizer::new_counted(Arc::clone(&index), Arc::clone(&kernel), config);
        for (q, m) in &queries[..2] {
            reference.observe(q, *m).unwrap();
            swapped.observe(q, *m).unwrap();
        }
        let before: Vec<(LocationId, u64)> = swapped
            .posterior()
            .iter()
            .map(|&(l, p)| (l, p.to_bits()))
            .collect();
        swapped.adopt_counted(Arc::new(FingerprintIndex::build(&fdb)), Arc::clone(&kernel));
        let after: Vec<(LocationId, u64)> = swapped
            .posterior()
            .iter()
            .map(|&(l, p)| (l, p.to_bits()))
            .collect();
        assert_eq!(before, after, "adopt must not touch the posterior");
        for (q, m) in &queries[2..] {
            assert_eq!(
                reference.observe(q, *m).unwrap(),
                swapped.observe(q, *m).unwrap()
            );
        }
    }

    #[test]
    fn error_contract_matches_tracker() {
        let (fdb, mdb) = world();
        let mut engine = BatchLocalizer::new(&fdb, &mdb, MoLocConfig::default());
        assert_eq!(
            engine.observe(&fp(&[-40.0]), None).unwrap_err(),
            TrackError::QueryLength {
                expected: 2,
                found: 1
            }
        );
        assert_eq!(
            engine
                .observe(
                    &fp(&[-40.0, -70.0]),
                    Some(MotionMeasurement {
                        direction_deg: f64::NAN,
                        offset_m: 1.0,
                    })
                )
                .unwrap_err(),
            TrackError::BadMeasurement
        );
    }

    fn assert_normalized(engine: &BatchLocalizer<'_>) {
        let posterior = engine.posterior();
        let total: f64 = posterior.iter().map(|(_, p)| p).sum();
        assert!(
            posterior.iter().all(|(_, p)| p.is_finite() && *p >= 0.0),
            "non-finite posterior {posterior:?}"
        );
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn nan_query_degrades_to_masked_ranking() {
        let (fdb, mdb) = world();
        let mut engine = BatchLocalizer::new(&fdb, &mdb, MoLocConfig::default());
        // AP 0 missing: ranking happens on AP 1 alone, where L2's
        // -70 dBm is the unambiguous nearest to the query's -69.
        let estimate = engine
            .observe_slice(&[f64::NAN, -69.0], None)
            .expect("masked query localizes");
        assert_eq!(estimate, l(2));
        assert!(engine.last_flags().contains(DegradationFlags::MASKED_QUERY));
        assert!(!engine
            .last_flags()
            .contains(DegradationFlags::NO_OBSERVED_APS));
        assert_normalized(&engine);
    }

    #[test]
    fn all_nan_query_yields_uniform_prior() {
        let (fdb, mdb) = world();
        let mut engine = BatchLocalizer::new(&fdb, &mdb, MoLocConfig::default());
        let estimate = engine
            .observe_slice(&[f64::NAN, f64::NAN], None)
            .expect("blind query still localizes");
        let flags = engine.last_flags();
        assert!(flags.contains(DegradationFlags::MASKED_QUERY));
        assert!(flags.contains(DegradationFlags::NO_OBSERVED_APS));
        // Uniform over the k lowest-id locations; ties go to L1.
        assert_eq!(estimate, l(1));
        assert_normalized(&engine);
    }

    #[test]
    fn clean_queries_report_clean_flags() {
        let (fdb, mdb) = world();
        let mut engine = BatchLocalizer::new(&fdb, &mdb, MoLocConfig::default());
        for (query, motion) in queries() {
            engine.observe(&query, motion).unwrap();
            assert!(engine.last_flags().is_empty(), "{}", engine.last_flags());
            assert_normalized(&engine);
        }
    }

    #[test]
    fn motion_fallback_flag_fires_on_empty_motion_db() {
        let (fdb, _) = world();
        // An empty motion database with a zero missing-pair probability
        // collapses every Eq. 7 total to zero: the engine must fall
        // back to the fingerprint-only prior and say so.
        let mdb = MotionDb::new(3);
        let config = MoLocConfig {
            missing_pair_prob: 0.0,
            ..MoLocConfig::default()
        };
        let mut engine = BatchLocalizer::new(&fdb, &mdb, config);
        engine.observe_slice(&[-40.0, -70.0], None).unwrap();
        let estimate = engine
            .observe_slice(
                &[-50.0, -50.05],
                Some(MotionMeasurement {
                    direction_deg: 91.0,
                    offset_m: 4.1,
                }),
            )
            .unwrap();
        assert!(engine
            .last_flags()
            .contains(DegradationFlags::MOTION_FALLBACK));
        // Fingerprint-only: the nearer twin wins.
        assert_eq!(estimate, l(1));
        assert_normalized(&engine);
    }

    #[test]
    fn masked_sequence_with_motion_stays_normalized() {
        let (fdb, mdb) = world();
        let mut engine = BatchLocalizer::new(&fdb, &mdb, MoLocConfig::default());
        let traces: [(&[f64], Option<MotionMeasurement>); 4] = [
            (&[-40.0, -70.0], None),
            (
                &[f64::NAN, -50.05],
                Some(MotionMeasurement {
                    direction_deg: 91.0,
                    offset_m: 4.1,
                }),
            ),
            (
                &[f64::NAN, f64::NAN],
                Some(MotionMeasurement {
                    direction_deg: 270.0,
                    offset_m: 4.0,
                }),
            ),
            (&[-50.0, -50.0], None),
        ];
        for (query, motion) in traces {
            engine.observe_slice(query, motion).expect("never errors");
            assert_normalized(&engine);
        }
    }
}
