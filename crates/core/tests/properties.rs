//! Property-based tests for the MoLoc algorithm's probabilistic
//! invariants.

use moloc_core::config::MoLocConfig;
use moloc_core::evaluate::{evaluate_candidates, evaluate_candidates_kernel};
use moloc_core::matching::{build_kernel, pair_motion_probability, set_motion_probability};
use moloc_fingerprint::candidates::CandidateSet;
use moloc_geometry::LocationId;
use moloc_motion::matrix::{MotionDb, PairStats};
use moloc_stats::gaussian::Gaussian;
use proptest::prelude::*;

const N: usize = 10;

fn weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01..10.0f64, 2..N)
}

fn candidate_set(ws: &[f64]) -> CandidateSet {
    CandidateSet::from_weights(
        ws.iter()
            .enumerate()
            .map(|(i, &w)| (LocationId::from_index(i), w))
            .collect(),
    )
    .expect("positive weights")
}

fn arbitrary_db() -> impl Strategy<Value = MotionDb> {
    prop::collection::vec(
        (
            0usize..N,
            0usize..N,
            0.0..360.0f64,
            1.0..20.0f64,
            0.5..15.0f64,
            0.05..1.0f64,
        ),
        0..12,
    )
    .prop_map(|entries| {
        let mut db = MotionDb::new(N);
        for (a, b, dir, dir_std, off, off_std) in entries {
            if a == b {
                continue;
            }
            db.insert(
                LocationId::from_index(a),
                LocationId::from_index(b),
                PairStats {
                    direction: Gaussian::new(dir, dir_std).unwrap(),
                    offset: Gaussian::new(off, off_std).unwrap(),
                    sample_count: 4,
                },
            );
        }
        db
    })
}

proptest! {
    #[test]
    fn pair_probability_is_in_unit_interval(
        db in arbitrary_db(),
        from in 0usize..N,
        to in 0usize..N,
        d in 0.0..360.0f64,
        o in 0.0..30.0f64,
    ) {
        let p = pair_motion_probability(
            &db,
            LocationId::from_index(from),
            LocationId::from_index(to),
            d,
            o,
            &MoLocConfig::paper(),
        );
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "p = {p}");
    }

    #[test]
    fn pair_probability_symmetric_under_joint_reversal(
        db in arbitrary_db(),
        from in 0usize..N,
        to in 0usize..N,
        d in 0.0..360.0f64,
        o in 0.0..30.0f64,
    ) {
        // Walking i → j with direction d has the same probability as
        // walking j → i with direction d + 180 (mutual reachability).
        prop_assume!(from != to);
        let config = MoLocConfig::paper();
        let (i, j) = (LocationId::from_index(from), LocationId::from_index(to));
        let fwd = pair_motion_probability(&db, i, j, d, o, &config);
        let rev = pair_motion_probability(&db, j, i, d + 180.0, o, &config);
        prop_assert!((fwd - rev).abs() < 1e-9, "fwd {fwd} vs rev {rev}");
    }

    #[test]
    fn set_probability_is_convex_combination(
        db in arbitrary_db(),
        ws in weights(),
        to in 0usize..N,
        d in 0.0..360.0f64,
        o in 0.0..30.0f64,
    ) {
        let config = MoLocConfig::paper();
        let prev = candidate_set(&ws);
        let to = LocationId::from_index(to);
        let p_set = set_motion_probability(&db, &prev, to, d, o, &config);
        let bounds: Vec<f64> = prev
            .iter()
            .map(|(i, _)| pair_motion_probability(&db, i, to, d, o, &config))
            .collect();
        let min = bounds.iter().copied().fold(f64::INFINITY, f64::min);
        let max = bounds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_set >= min - 1e-12 && p_set <= max + 1e-12,
            "set probability {p_set} outside [{min}, {max}]");
    }

    #[test]
    fn posterior_is_normalized_over_current_candidates(
        db in arbitrary_db(),
        prev_ws in weights(),
        cur_ws in weights(),
        d in 0.0..360.0f64,
        o in 0.0..30.0f64,
    ) {
        let config = MoLocConfig::paper();
        let prev = candidate_set(&prev_ws);
        let current = candidate_set(&cur_ws);
        let posterior = evaluate_candidates(&db, &prev, &current, d, o, &config);
        prop_assert!((posterior.total_probability() - 1.0).abs() < 1e-9);
        prop_assert_eq!(posterior.len(), current.len());
        // The posterior's support is the current candidate set.
        for (loc, _) in posterior.iter() {
            prop_assert!(current.probability_of(loc) > 0.0);
        }
    }

    #[test]
    fn kernel_matches_exact_probability_within_tolerance(
        db in arbitrary_db(),
        from in 0usize..N,
        to in 0usize..N,
        d in 0.0..360.0f64,
        o in 0.0..30.0f64,
    ) {
        // The precomputed kernel's documented accuracy contract: every
        // pair probability agrees with the direct Eq. 5 evaluation to
        // within 1e-6 (see DESIGN.md, "Performance architecture").
        let config = MoLocConfig::paper();
        let kernel = build_kernel(&db, &config);
        let (i, j) = (LocationId::from_index(from), LocationId::from_index(to));
        let exact = pair_motion_probability(&db, i, j, d, o, &config);
        let fast = kernel.pair_probability(i, j, d, o);
        prop_assert!(
            (exact - fast).abs() <= 1e-6,
            "({from}→{to}, {d}°, {o} m): exact {exact} vs kernel {fast}"
        );
    }

    #[test]
    fn posterior_survives_random_rlm_deletions(
        db in arbitrary_db(),
        deletions in prop::collection::vec((0usize..N, 0usize..N), 0..20),
        prev_ws in weights(),
        cur_ws in weights(),
        d in 0.0..360.0f64,
        o in 0.0..30.0f64,
    ) {
        // Corrupted motion databases — arbitrary cells deleted after
        // training — must still yield a finite, normalized posterior
        // through both the exact and the kernel evaluation paths
        // (untrained pairs fall back to the missing-pair probability,
        // and a fully-degenerate total falls back to the
        // fingerprint-only prior).
        let config = MoLocConfig::paper();
        let mut db = db;
        for (a, b) in deletions {
            db.remove(LocationId::from_index(a), LocationId::from_index(b));
        }
        let prev = candidate_set(&prev_ws);
        let current = candidate_set(&cur_ws);
        let kernel = build_kernel(&db, &config);
        for posterior in [
            evaluate_candidates(&db, &prev, &current, d, o, &config),
            evaluate_candidates_kernel(&kernel, &prev, &current, d, o, &config),
        ] {
            prop_assert!(
                (posterior.total_probability() - 1.0).abs() < 1e-9,
                "total {}",
                posterior.total_probability()
            );
            for (loc, p) in posterior.iter() {
                prop_assert!(p.is_finite() && p >= 0.0, "p({loc}) = {p}");
            }
        }
    }

    #[test]
    fn zero_fingerprint_mass_stays_zero(
        db in arbitrary_db(),
        prev_ws in weights(),
        d in 0.0..360.0f64,
        o in 0.0..30.0f64,
    ) {
        // A candidate with zero fingerprint probability can never gain
        // posterior mass (Eq. 7 multiplies the evidences).
        let config = MoLocConfig::paper();
        let prev = candidate_set(&prev_ws);
        let current = CandidateSet::from_neighbors(&[
            moloc_fingerprint::knn::Neighbor {
                location: LocationId::new(1),
                dissimilarity: 0.0, // exact match takes all mass
            },
            moloc_fingerprint::knn::Neighbor {
                location: LocationId::new(2),
                dissimilarity: 5.0,
            },
        ])
        .unwrap();
        let posterior = evaluate_candidates(&db, &prev, &current, d, o, &config);
        prop_assert_eq!(posterior.probability_of(LocationId::new(2)), 0.0);
    }
}
