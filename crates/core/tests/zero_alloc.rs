//! Proof of the `BatchLocalizer` zero-allocation contract: after one
//! warm-up trace fills the scratch buffers, localizing further traces
//! must not touch the heap at all. A counting global allocator wraps
//! the system allocator; this file holds exactly one test so no
//! concurrent test can perturb the counter.

use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::tracker::MotionMeasurement;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_geometry::LocationId;
use moloc_motion::matrix::{MotionDb, PairStats};
use moloc_stats::gaussian::Gaussian;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

fn fp(v: &[f64]) -> Fingerprint {
    Fingerprint::new(v.to_vec())
}

fn world() -> (FingerprintDb, MotionDb) {
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), fp(&[-50.0, -50.0])),
        (l(2), fp(&[-40.0, -70.0])),
        (l(3), fp(&[-50.0, -50.1])),
        (l(4), fp(&[-65.0, -45.0])),
    ])
    .unwrap();
    let mut mdb = MotionDb::new(4);
    let east = |mu_o: f64| PairStats {
        direction: Gaussian::new(90.0, 5.0).unwrap(),
        offset: Gaussian::new(mu_o, 0.3).unwrap(),
        sample_count: 10,
    };
    mdb.insert(l(1), l(2), east(4.0));
    mdb.insert(l(2), l(3), east(4.0));
    mdb.insert(l(1), l(3), east(8.0));
    mdb.insert(l(3), l(4), east(4.0));
    (fdb, mdb)
}

#[test]
fn warm_batch_localizer_trace_allocates_nothing() {
    let (fdb, mdb) = world();
    let mut engine = BatchLocalizer::new(&fdb, &mdb, MoLocConfig::default());
    let east = |o: f64| {
        Some(MotionMeasurement {
            direction_deg: 90.0,
            offset_m: o,
        })
    };
    let queries = vec![
        (fp(&[-40.0, -70.0]), None),
        (fp(&[-50.0, -50.05]), east(4.1)),
        (fp(&[-64.0, -46.0]), east(4.0)),
        (fp(&[-50.0, -50.0]), None),
        (fp(&[-41.0, -69.0]), east(3.9)),
    ];
    let mut out = Vec::with_capacity(queries.len());

    // Warm-up: first trace may grow heap, candidate, and output
    // buffers to capacity.
    engine.localize_trace_into(&queries, &mut out).unwrap();
    let warm = out.clone();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        engine.localize_trace_into(&queries, &mut out).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm BatchLocalizer traces must not allocate"
    );
    assert_eq!(out, warm, "repeated traces must reproduce the estimates");
}
