//! Concurrent-reader epoch-swap test (ISSUE 9 acceptance): a
//! background thread publishes new epochs while a [`LiveLocalizer`]
//! localizes a trace mid-stream. The contract under test:
//!
//! * every step runs on exactly one epoch (the one reported back),
//! * the epoch sequence a reader observes is monotone non-decreasing
//!   and never skips past the publisher (lag is always honest),
//! * the reader eventually adopts the final epoch, and
//! * the final published snapshot is bit-identical to a from-scratch
//!   rebuild over everything the publisher folded in.

use moloc_core::config::MoLocConfig;
use moloc_geometry::polygon::Aabb;
use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
use moloc_live::{LiveLocalizer, SnapshotPublisher, UpdateLog};
use moloc_motion::builder::MapReference;
use moloc_motion::filter::SanitationConfig;
use moloc_motion::rlm::Rlm;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const AP_COUNT: usize = 3;
const LOCATIONS: u32 = 6;
const EPOCHS: u64 = 5;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

fn map() -> MapReference {
    let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
    let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
    let graph = WalkGraph::from_grid(&grid, &plan);
    MapReference::new(&grid, &graph)
}

fn seeded_log() -> UpdateLog {
    let mut log = UpdateLog::new(AP_COUNT, map(), SanitationConfig::paper()).unwrap();
    for i in 1..=LOCATIONS {
        let base = -30.0 - 8.0 * f64::from(i);
        log.observe_survey_sample(l(i), &[base, base - 12.0, base - 25.0])
            .unwrap();
    }
    for k in 0..5 {
        log.observe_rlm(Rlm::new(l(1), l(2), 89.0 + f64::from(k), 2.0).unwrap());
    }
    log
}

/// The deterministic delta folded before publish number `n` (1-based).
/// Returned as data so the verification rebuild can replay it exactly.
fn epoch_delta(n: u64) -> (LocationId, [f64; AP_COUNT]) {
    let id = (n % u64::from(LOCATIONS)) as u32 + 1;
    let base = -31.0 - 8.0 * f64::from(id) - 0.25 * n as f64;
    (l(id), [base, base - 12.0, base - 25.0])
}

#[test]
fn concurrent_reader_swaps_epochs_only_at_step_boundaries() {
    let mut log = seeded_log();
    let initial = log.build_snapshot(0).unwrap();
    let publisher = SnapshotPublisher::new(initial.clone());
    log.mark_published();
    let scan: Vec<f64> = initial.fdb.fingerprint(l(1)).unwrap().values().to_vec();

    let mut live = LiveLocalizer::new(publisher.reader(), MoLocConfig::paper());

    // Publisher thread: EPOCHS publishes, one deterministic survey
    // delta each, paced so the reader localizes across the swaps.
    let writer = {
        let publisher = Arc::clone(&publisher);
        thread::spawn(move || {
            for n in 1..=EPOCHS {
                let (id, values) = epoch_delta(n);
                log.observe_survey_sample(id, &values).unwrap();
                let report = publisher.publish(&mut log).unwrap();
                assert!(report.published);
                assert_eq!(report.epoch, n);
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Reader loop: localize until the final epoch is adopted. The scan
    // is a location-1 fingerprint of the *initial* database; only the
    // epoch pin is under test, not the estimate trajectory.
    let mut observed_epochs = Vec::new();
    let mut last_epoch = 0u64;
    for step in 0..200_000u64 {
        let (location, epoch) = live.observe(&scan, None).expect("step succeeds");
        assert!(location.get() >= 1 && location.get() <= LOCATIONS);
        assert!(
            epoch >= last_epoch,
            "step {step}: epoch went backwards ({last_epoch} -> {epoch})"
        );
        assert_eq!(
            epoch,
            live.epoch(),
            "step {step}: the reported epoch must be the one the step ran on"
        );
        assert!(
            epoch <= publisher.current_epoch(),
            "step {step}: reader ahead of the publisher"
        );
        if epoch != last_epoch {
            observed_epochs.push(epoch);
            last_epoch = epoch;
        }
        if epoch == EPOCHS {
            break;
        }
        if step % 64 == 63 {
            thread::sleep(Duration::from_micros(200));
        }
    }
    writer.join().expect("publisher thread");

    assert_eq!(last_epoch, EPOCHS, "reader never reached the final epoch");
    assert!(
        observed_epochs.windows(2).all(|w| w[0] < w[1]),
        "adopted epochs must be strictly increasing: {observed_epochs:?}"
    );

    // The concurrently-published end state is bit-identical to a
    // from-scratch rebuild over seed + every epoch delta.
    let mut rebuilt = seeded_log();
    for n in 1..=EPOCHS {
        let (id, values) = epoch_delta(n);
        rebuilt.observe_survey_sample(id, &values).unwrap();
    }
    assert_eq!(
        publisher.snapshot().digest(),
        rebuilt.build_snapshot(0).unwrap().digest(),
        "concurrent publishes diverged from the sequential rebuild"
    );
}

#[test]
fn mid_trace_swap_preserves_tracking_continuity() {
    // Sequential variant pinning down the step-boundary rule without
    // scheduler nondeterminism: observe, publish, observe. The second
    // observation must run wholly on the new epoch and still see the
    // posterior from the first.
    let mut log = seeded_log();
    let initial = log.build_snapshot(0).unwrap();
    let publisher = SnapshotPublisher::new(initial.clone());
    log.mark_published();
    let mut live = LiveLocalizer::new(publisher.reader(), MoLocConfig::paper());

    let scan1: Vec<f64> = initial.fdb.fingerprint(l(1)).unwrap().values().to_vec();
    let (loc, epoch) = live.observe(&scan1, None).unwrap();
    assert_eq!((loc, epoch), (l(1), 0));

    let (id, values) = epoch_delta(1);
    log.observe_survey_sample(id, &values).unwrap();
    publisher.publish(&mut log).unwrap();

    let scan2: Vec<f64> = publisher
        .snapshot()
        .fdb
        .fingerprint(l(2))
        .unwrap()
        .values()
        .to_vec();
    let east = Some(moloc_core::tracker::MotionMeasurement {
        direction_deg: 90.0,
        offset_m: 2.0,
    });
    let (loc, epoch) = live.observe(&scan2, east).unwrap();
    assert_eq!(epoch, 1, "new epoch adopted at the boundary");
    assert_eq!(loc, l(2), "motion-fused tracking survived the swap");
    assert!(live.last_flags().is_empty(), "clean full-fusion step");
}
