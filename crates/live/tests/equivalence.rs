//! The live-update determinism contract (ISSUE 9 acceptance):
//!
//! 1. **Incremental ≡ rebuild** — publishing N crowdsourced delta
//!    batches through an [`UpdateLog`] produces a snapshot whose
//!    content digest is *bit-identical* to a from-scratch rebuild over
//!    the merged delta sequence. Property-tested over random
//!    interleavings of survey samples and RLMs (including coarse
//!    rejects, which must still count — the build-report counters are
//!    part of the digest).
//! 2. **Zero-delta publish is a no-op** — no epoch bump, no digest
//!    change, `published: false`.

use moloc_geometry::polygon::Aabb;
use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
use moloc_live::{SnapshotPublisher, UpdateLog};
use moloc_motion::builder::MapReference;
use moloc_motion::filter::SanitationConfig;
use moloc_motion::rlm::Rlm;
use proptest::prelude::*;

const AP_COUNT: usize = 2;
const LOCATIONS: u32 = 6;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

/// 3×2 grid spaced 2 m in an open hall; ids 1..=6.
fn map() -> MapReference {
    let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
    let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
    let graph = WalkGraph::from_grid(&grid, &plan);
    MapReference::new(&grid, &graph)
}

/// One crowdsourced contribution.
#[derive(Debug, Clone)]
enum Delta {
    Survey(LocationId, [f64; AP_COUNT]),
    Rlm(Rlm),
}

fn apply(log: &mut UpdateLog, delta: &Delta) {
    match delta {
        Delta::Survey(id, values) => log
            .observe_survey_sample(*id, values)
            .expect("ap count matches"),
        Delta::Rlm(rlm) => {
            log.observe_rlm(*rlm);
        }
    }
}

/// The site-survey seed: one sample per location, so every snapshot
/// build succeeds regardless of what the random deltas touch.
fn seed_deltas() -> Vec<Delta> {
    (1..=LOCATIONS)
        .map(|i| {
            let base = -30.0 - 8.0 * f64::from(i);
            Delta::Survey(l(i), [base, base - 13.0])
        })
        .collect()
}

/// Random survey samples and RLMs. Directions and offsets span well
/// past the coarse thresholds, so rejected RLMs are generated too.
fn delta_strategy() -> impl Strategy<Value = Delta> {
    (
        (0u32..3, 1u32..=LOCATIONS, 1u32..=LOCATIONS),
        (-90.0..-30.0f64, -90.0..-30.0f64),
        (0.0..360.0f64, 0.0..8.0f64),
    )
        .prop_map(|((kind, a, b), (rss0, rss1), (dir, off))| {
            if kind == 0 {
                let to = if a == b { a % LOCATIONS + 1 } else { b };
                Delta::Rlm(Rlm::new(l(a), l(to), dir, off).expect("valid rlm"))
            } else {
                Delta::Survey(l(a), [rss0, rss1])
            }
        })
}

proptest! {
    #[test]
    fn incremental_publishes_are_bit_identical_to_rebuild(
        batches in prop::collection::vec(
            prop::collection::vec(delta_strategy(), 1..10),
            1..5,
        ),
    ) {
        // Incremental side: seed, publish epoch 0, then publish once
        // per batch.
        let mut log = UpdateLog::new(AP_COUNT, map(), SanitationConfig::paper())
            .expect("valid config");
        let mut merged = seed_deltas();
        for delta in &merged {
            apply(&mut log, delta);
        }
        let publisher = SnapshotPublisher::new(
            log.build_snapshot(0).expect("seed snapshot builds"),
        );
        log.mark_published();

        for (n, batch) in batches.iter().enumerate() {
            for delta in batch {
                apply(&mut log, delta);
                merged.push(delta.clone());
            }
            let report = publisher.publish(&mut log).expect("publish succeeds");
            prop_assert!(report.published);
            prop_assert_eq!(report.epoch, n as u64 + 1);
            prop_assert_eq!(report.deltas_folded, batch.len() as u64);

            // Rebuild side: a fresh log fed the merged sequence.
            let mut fresh = UpdateLog::new(AP_COUNT, map(), SanitationConfig::paper())
                .expect("valid config");
            for delta in &merged {
                apply(&mut fresh, delta);
            }
            let rebuilt = fresh.build_snapshot(0).expect("rebuild succeeds");
            prop_assert_eq!(
                publisher.snapshot().digest(),
                rebuilt.digest(),
                "epoch {} diverged from the from-scratch rebuild",
                n + 1,
            );
        }
    }

    #[test]
    fn zero_delta_publish_is_a_digest_noop(
        batch in prop::collection::vec(delta_strategy(), 0..8),
    ) {
        let mut log = UpdateLog::new(AP_COUNT, map(), SanitationConfig::paper())
            .expect("valid config");
        for delta in seed_deltas().iter().chain(&batch) {
            apply(&mut log, delta);
        }
        let publisher = SnapshotPublisher::new(
            log.build_snapshot(0).expect("snapshot builds"),
        );
        log.mark_published();
        let digest = publisher.snapshot().digest();

        let report = publisher.publish(&mut log).expect("skip succeeds");
        prop_assert!(!report.published);
        prop_assert_eq!(report.epoch, 0);
        prop_assert_eq!(report.deltas_folded, 0);
        prop_assert_eq!(publisher.current_epoch(), 0);
        prop_assert_eq!(publisher.snapshot().digest(), digest);
    }
}
