#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Dynamic crowdsourced database updates (paper Sec. IV-B, taken live).
//!
//! The paper's MoLoc system is described over a *static* pair of
//! databases: the site-survey fingerprint database and the
//! crowdsourced motion database. In deployment both keep growing —
//! every positioned user contributes RSS samples and RLMs — and the
//! serving stack must fold those contributions in without pausing the
//! sessions that are localizing right now. This crate is that
//! subsystem:
//!
//! * [`snapshot`] — [`snapshot::DbSnapshot`], one immutable
//!   epoch-stamped world: fingerprint database, its query index, and
//!   the sanitized motion database, with a content [`digest`] used by
//!   the determinism contract (`digest` ignores the epoch stamp on
//!   purpose — two epochs with identical content hash identically).
//! * [`update`] — [`update::UpdateLog`], the ingestion side: survey
//!   samples stream into per-location per-AP [Welford] accumulators,
//!   RLMs stream into the existing [`MotionDbBuilder`] (coarse filter
//!   on ingestion, fine filter at build). Folding N deltas
//!   incrementally is **bit-identical** to rebuilding from scratch on
//!   the merged sample set — the equivalence proptest in
//!   `tests/equivalence.rs` enforces this digest-for-digest.
//! * [`publisher`] — [`publisher::SnapshotPublisher`] /
//!   [`publisher::SnapshotReader`], the atomic swap: readers pay one
//!   `Acquire` load per localization step and take a lock **only** on
//!   the step where the epoch actually changed; publishing a zero-delta
//!   log is skipped outright (digest no-op by construction).
//! * [`localizer`] — [`localizer::LiveLocalizer`], an epoch-pinned
//!   serving loop over `BatchLocalizer`: each step runs entirely on one
//!   snapshot, and a newly published epoch is adopted only at the next
//!   step boundary (the posterior is id-keyed, so tracking state
//!   carries across the swap).
//!
//! [`digest`]: snapshot::DbSnapshot::digest
//! [Welford]: moloc_stats::online::Welford
//! [`MotionDbBuilder`]: moloc_motion::builder::MotionDbBuilder

pub mod localizer;
pub mod publisher;
pub mod snapshot;
pub mod update;

pub use localizer::LiveLocalizer;
pub use publisher::{PublishReport, SnapshotPublisher, SnapshotReader};
pub use snapshot::DbSnapshot;
pub use update::UpdateLog;

use moloc_fingerprint::db::DbError;
use moloc_motion::filter::SanitationError;

/// A live-update failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// A survey sample's AP count does not match the log's.
    ApCount {
        /// The AP count the log was created with.
        expected: usize,
        /// The offending sample's AP count.
        found: usize,
    },
    /// The accumulated survey could not produce a valid database.
    Db(DbError),
    /// The motion sanitation configuration is invalid.
    Sanitation(SanitationError),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::ApCount { expected, found } => write!(
                f,
                "survey sample has {found} APs, update log expects {expected}"
            ),
            LiveError::Db(e) => write!(f, "snapshot build failed: {e}"),
            LiveError::Sanitation(e) => write!(f, "invalid sanitation config: {e}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::ApCount { .. } => None,
            LiveError::Db(e) => Some(e),
            LiveError::Sanitation(e) => Some(e),
        }
    }
}

impl From<DbError> for LiveError {
    fn from(e: DbError) -> Self {
        LiveError::Db(e)
    }
}

impl From<SanitationError> for LiveError {
    fn from(e: SanitationError) -> Self {
        LiveError::Sanitation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;

    #[test]
    fn error_display_and_sources() {
        let e = LiveError::ApCount {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("3 APs"));
        assert!(e.to_string().contains("expects 4"));
        assert!(std::error::Error::source(&e).is_none());

        let e: LiveError = DbError::NonFinite(LocationId::new(2)).into();
        assert!(e.to_string().contains("snapshot build failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
