//! The ingestion side of live updates: [`UpdateLog`].
//!
//! Crowdsourced contributions arrive as two delta kinds:
//!
//! * **Survey samples** — a positioned device reports one RSS vector
//!   for a known reference location. Folded into per-location per-AP
//!   [`Welford`] accumulators with *sequential* pushes in arrival
//!   order — exactly the accumulation
//!   [`FingerprintDb::from_samples`] performs — so the snapshot built
//!   from N incremental deltas is bit-identical to a from-scratch
//!   rebuild over the merged sample list. (Parallel `Welford::merge`
//!   is deliberately avoided: mathematically equivalent, not
//!   bit-identical.)
//! * **RLMs** — reassembled location measurements for the motion
//!   database, offered straight to the long-lived
//!   [`MotionDbBuilder`], which applies the paper's coarse map filter
//!   on ingestion and the fine 2σ filter at build time.
//!
//! [`UpdateLog::build_snapshot`] is non-destructive: it condenses the
//! accumulated state into a [`DbSnapshot`] and leaves the log open for
//! further deltas, so epochs compound.

use crate::snapshot::DbSnapshot;
use crate::LiveError;
use moloc_fingerprint::db::{DbError, FingerprintDb};
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::FingerprintIndex;
use moloc_geometry::LocationId;
use moloc_motion::builder::{MapReference, MotionDbBuilder};
use moloc_motion::filter::SanitationConfig;
use moloc_motion::rlm::Rlm;
use moloc_stats::online::Welford;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Accumulates crowdsourced deltas between snapshot publishes.
#[derive(Debug)]
pub struct UpdateLog {
    ap_count: usize,
    /// Per location: one Welford accumulator per AP, pushed in sample
    /// arrival order (the bit-identity anchor — see module docs).
    survey: BTreeMap<LocationId, Vec<Welford>>,
    motion: MotionDbBuilder,
    deltas_since_publish: u64,
}

impl UpdateLog {
    /// Creates an empty log for `ap_count`-AP fingerprints over the
    /// given map reference and sanitation policy.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::Sanitation`] when the sanitation
    /// configuration fails validation.
    pub fn new(
        ap_count: usize,
        map: MapReference,
        sanitation: SanitationConfig,
    ) -> Result<Self, LiveError> {
        Ok(Self {
            ap_count,
            survey: BTreeMap::new(),
            motion: MotionDbBuilder::new(map, sanitation)?,
            deltas_since_publish: 0,
        })
    }

    /// The AP count every survey sample must carry.
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// Deltas accepted since the last [`UpdateLog::mark_published`].
    pub fn pending_deltas(&self) -> u64 {
        self.deltas_since_publish
    }

    /// Folds one survey sample for `location` into the accumulators.
    ///
    /// Non-finite values are accepted here (matching
    /// [`FingerprintDb::from_samples`], which defers the check to the
    /// condensed mean) and surface as [`DbError::NonFinite`] at
    /// [`UpdateLog::build_snapshot`] time.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::ApCount`] when the sample length does not
    /// match the log's AP count; the sample is not folded.
    pub fn observe_survey_sample(
        &mut self,
        location: LocationId,
        values: &[f64],
    ) -> Result<(), LiveError> {
        if values.len() != self.ap_count {
            return Err(LiveError::ApCount {
                expected: self.ap_count,
                found: values.len(),
            });
        }
        let accumulators = self
            .survey
            .entry(location)
            .or_insert_with(|| vec![Welford::new(); self.ap_count]);
        for (acc, &value) in accumulators.iter_mut().zip(values) {
            acc.push(value);
        }
        self.deltas_since_publish += 1;
        Ok(())
    }

    /// Offers one crowdsourced RLM to the motion builder. Returns
    /// whether the coarse filter accepted it.
    ///
    /// A *rejected* RLM still counts as a pending delta: the builder's
    /// report counters changed, and those counters are part of the
    /// snapshot digest, so the next publish must not be skipped.
    pub fn observe_rlm(&mut self, rlm: Rlm) -> bool {
        let accepted = self.motion.observe(rlm);
        self.deltas_since_publish += 1;
        accepted
    }

    /// Condenses the accumulated state into an epoch-stamped snapshot
    /// without consuming the log.
    ///
    /// The fingerprint side reproduces
    /// [`FingerprintDb::from_samples`] exactly: per-AP Welford means
    /// in id order, non-finite means rejected per location. The motion
    /// side is [`MotionDbBuilder::build_snapshot`], proven
    /// prefix-bit-identical to a consuming build.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError::Db`] when no survey samples have been
    /// observed ([`DbError::Empty`]) or a location's mean went
    /// non-finite ([`DbError::NonFinite`]).
    pub fn build_snapshot(&self, epoch: u64) -> Result<DbSnapshot, LiveError> {
        let mut entries = Vec::with_capacity(self.survey.len());
        for (&id, accumulators) in &self.survey {
            let values: Vec<f64> = accumulators.iter().map(Welford::mean).collect();
            if values.iter().any(|v| !v.is_finite()) {
                return Err(LiveError::Db(DbError::NonFinite(id)));
            }
            entries.push((id, Fingerprint::new(values)));
        }
        let fdb = FingerprintDb::from_fingerprints(entries)?;
        let index = FingerprintIndex::build(&fdb);
        let (motion_db, motion_report) = self.motion.build_snapshot();
        Ok(DbSnapshot {
            epoch,
            fdb: Arc::new(fdb),
            index: Arc::new(index),
            motion_db: Arc::new(motion_db),
            motion_report,
        })
    }

    /// Resets the pending-delta counter after a successful publish.
    /// The accumulated survey and motion state is retained — epochs
    /// compound over the full contribution history.
    pub fn mark_published(&mut self) {
        self.deltas_since_publish = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, ReferenceGrid, Vec2, WalkGraph};

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    /// 3×2 grid spaced 2 m in an open hall (same world as the motion
    /// builder tests; 1→2 runs east at 90°, 2 m apart).
    fn map() -> MapReference {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
        let graph = WalkGraph::from_grid(&grid, &plan);
        MapReference::new(&grid, &graph)
    }

    fn log() -> UpdateLog {
        UpdateLog::new(2, map(), SanitationConfig::paper()).unwrap()
    }

    #[test]
    fn ap_count_mismatch_is_rejected_without_folding() {
        let mut log = log();
        let err = log.observe_survey_sample(l(1), &[-40.0]).unwrap_err();
        assert_eq!(
            err,
            LiveError::ApCount {
                expected: 2,
                found: 1
            }
        );
        assert_eq!(log.pending_deltas(), 0);
    }

    #[test]
    fn incremental_survey_means_match_from_samples_bitwise() {
        let mut log = log();
        let samples = [
            (1u32, [-40.0, -60.1]),
            (2, [-70.0, -30.0]),
            (1, [-44.3, -56.2]),
            (1, [-41.7, -58.9]),
            (2, [-69.2, -31.4]),
        ];
        for (id, s) in &samples {
            log.observe_survey_sample(l(*id), s).unwrap();
        }
        let snap = log.build_snapshot(3).unwrap();

        let reference = FingerprintDb::from_samples(vec![
            (
                l(1),
                samples
                    .iter()
                    .filter(|(id, _)| *id == 1)
                    .map(|(_, s)| Fingerprint::new(s.to_vec()))
                    .collect::<Vec<_>>(),
            ),
            (
                l(2),
                samples
                    .iter()
                    .filter(|(id, _)| *id == 2)
                    .map(|(_, s)| Fingerprint::new(s.to_vec()))
                    .collect::<Vec<_>>(),
            ),
        ])
        .unwrap();
        assert_eq!(*snap.fdb, reference, "bit-identical condensed database");
        assert_eq!(snap.epoch, 3);
    }

    #[test]
    fn rejected_rlm_still_counts_as_a_delta() {
        let mut log = log();
        // 1→2 map direction is 90°; 10° is a wild coarse reject.
        let accepted = log.observe_rlm(Rlm::new(l(1), l(2), 10.0, 2.0).unwrap());
        assert!(!accepted);
        assert_eq!(
            log.pending_deltas(),
            1,
            "the report counters changed, so the digest will too"
        );
    }

    #[test]
    fn empty_log_cannot_build() {
        let log = log();
        assert_eq!(
            log.build_snapshot(0).unwrap_err(),
            LiveError::Db(DbError::Empty)
        );
    }

    #[test]
    fn nan_sample_surfaces_as_nonfinite_at_build() {
        let mut log = log();
        log.observe_survey_sample(l(1), &[-40.0, f64::NAN]).unwrap();
        assert_eq!(
            log.build_snapshot(0).unwrap_err(),
            LiveError::Db(DbError::NonFinite(l(1)))
        );
    }

    #[test]
    fn mark_published_keeps_history() {
        let mut log = log();
        log.observe_survey_sample(l(1), &[-40.0, -60.0]).unwrap();
        log.mark_published();
        assert_eq!(log.pending_deltas(), 0);
        // History survives: the next snapshot still sees the sample.
        let snap = log.build_snapshot(1).unwrap();
        assert_eq!(snap.fdb.len(), 1);
    }
}
