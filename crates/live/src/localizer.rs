//! Epoch-pinned serving loop: [`LiveLocalizer`].
//!
//! Wraps a `'static` [`BatchLocalizer`] behind a [`SnapshotReader`].
//! Each localization step checks for a newer epoch **before** touching
//! the engine, adopts it if one is out (rebuilding the motion kernel
//! for the new motion database, swapping the fingerprint index), and
//! then runs the whole step on that single snapshot. The retained
//! posterior is id-keyed, so tracking state carries across the swap —
//! a user mid-corridor keeps their motion-fused history when the
//! database underneath them is refreshed.

use crate::publisher::SnapshotReader;
use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::matching::build_kernel;
use moloc_core::tracker::{MotionMeasurement, TrackError};
use moloc_core::DegradationFlags;
use moloc_geometry::LocationId;
use std::sync::Arc;

/// A continuously-serving localizer that follows published epochs.
#[derive(Debug)]
pub struct LiveLocalizer {
    reader: SnapshotReader,
    engine: BatchLocalizer<'static>,
    config: MoLocConfig,
}

impl LiveLocalizer {
    /// Builds a localizer pinned to the reader's current snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (same contract as
    /// [`BatchLocalizer::new_counted`]).
    pub fn new(reader: SnapshotReader, config: MoLocConfig) -> Self {
        let snapshot = Arc::clone(reader.snapshot());
        let kernel = Arc::new(build_kernel(&snapshot.motion_db, &config));
        let engine = BatchLocalizer::new_counted(Arc::clone(&snapshot.index), kernel, config);
        Self {
            reader,
            engine,
            config,
        }
    }

    /// The epoch the *next* observation would run on if no newer one
    /// is published in between.
    pub fn epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// Degradation flags of the most recent observation.
    pub fn last_flags(&self) -> DegradationFlags {
        self.engine.last_flags()
    }

    /// Forgets tracking history (the posterior), keeping the epoch pin.
    pub fn reset(&mut self) {
        self.engine.reset();
    }

    /// Processes one localization step, returning the estimate and the
    /// epoch it was computed on. A newly published snapshot is adopted
    /// here, at the step boundary, before the query runs — one step
    /// never mixes epochs.
    ///
    /// # Errors
    ///
    /// Returns [`TrackError`] for mismatched query lengths or
    /// non-finite measurements, exactly like
    /// [`BatchLocalizer::observe_slice`].
    pub fn observe(
        &mut self,
        scan: &[f64],
        motion: Option<MotionMeasurement>,
    ) -> Result<(LocationId, u64), TrackError> {
        self.observe_held(scan, motion, false)
    }

    /// [`LiveLocalizer::observe`] with an explicit stale-hold: when
    /// `hold` is true, a pending epoch swap is deferred and the step
    /// runs on the current pin (the `StaleSnapshot` fault injector's
    /// entry point — correctness-preserving by design, since every
    /// published epoch is a valid database).
    ///
    /// # Errors
    ///
    /// Same contract as [`LiveLocalizer::observe`].
    pub fn observe_held(
        &mut self,
        scan: &[f64],
        motion: Option<MotionMeasurement>,
        hold: bool,
    ) -> Result<(LocationId, u64), TrackError> {
        if self.reader.refresh_unless(hold) {
            let snapshot = Arc::clone(self.reader.snapshot());
            let kernel = Arc::new(build_kernel(&snapshot.motion_db, &self.config));
            self.engine
                .adopt_counted(Arc::clone(&snapshot.index), kernel);
        }
        let location = self.engine.observe_slice(scan, motion)?;
        Ok((location, self.reader.epoch()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::SnapshotPublisher;
    use crate::update::UpdateLog;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, ReferenceGrid, Vec2, WalkGraph};
    use moloc_motion::builder::MapReference;
    use moloc_motion::filter::SanitationConfig;
    use moloc_motion::rlm::Rlm;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    /// 3×2 grid spaced 2 m in an open hall; ids 1..=6, 1→2 east.
    fn map() -> MapReference {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
        let graph = WalkGraph::from_grid(&grid, &plan);
        MapReference::new(&grid, &graph)
    }

    /// Well-separated 3-AP survey over all six grid locations, plus
    /// enough clean RLMs on 1→2 and 2→3 to build motion pairs.
    fn seeded_log() -> UpdateLog {
        let mut log = UpdateLog::new(3, map(), SanitationConfig::paper()).unwrap();
        for i in 1..=6u32 {
            let base = -30.0 - 8.0 * f64::from(i);
            log.observe_survey_sample(l(i), &[base, base - 12.0, base - 25.0])
                .unwrap();
        }
        for k in 0..5 {
            log.observe_rlm(Rlm::new(l(1), l(2), 89.0 + f64::from(k), 2.0).unwrap());
            log.observe_rlm(Rlm::new(l(2), l(3), 89.0 + f64::from(k), 2.0).unwrap());
        }
        log
    }

    fn scan_for(log: &UpdateLog, id: u32) -> Vec<f64> {
        log.build_snapshot(0)
            .unwrap()
            .fdb
            .fingerprint(l(id))
            .unwrap()
            .values()
            .to_vec()
    }

    fn east() -> Option<MotionMeasurement> {
        Some(MotionMeasurement {
            direction_deg: 90.0,
            offset_m: 2.0,
        })
    }

    #[test]
    fn live_matches_static_engine_when_nothing_publishes() {
        let mut log = seeded_log();
        let snapshot = log.build_snapshot(0).unwrap();
        let publisher = SnapshotPublisher::new(snapshot.clone());
        log.mark_published();
        let config = MoLocConfig::paper();
        let mut live = LiveLocalizer::new(publisher.reader(), config);
        let kernel = build_kernel(&snapshot.motion_db, &config);
        let mut reference =
            BatchLocalizer::new_with_index(&snapshot.index, &kernel, config);

        for (id, motion) in [(1u32, None), (2, east()), (3, east())] {
            let scan = scan_for(&log, id);
            let (got, epoch) = live.observe(&scan, motion).unwrap();
            let want = reference.observe_slice(&scan, motion).unwrap();
            assert_eq!(got, want, "step at {id}");
            assert_eq!(epoch, 0);
        }
    }

    #[test]
    fn published_epoch_is_adopted_at_the_next_step_boundary() {
        let mut log = seeded_log();
        let publisher = SnapshotPublisher::new(log.build_snapshot(0).unwrap());
        log.mark_published();
        let mut live = LiveLocalizer::new(publisher.reader(), MoLocConfig::paper());

        let scan1 = scan_for(&log, 1);
        let (loc, epoch) = live.observe(&scan1, None).unwrap();
        assert_eq!((loc, epoch), (l(1), 0));

        // A mid-trace publish: more survey weight on location 2.
        log.observe_survey_sample(l(2), &[-46.1, -58.0, -71.2]).unwrap();
        assert!(publisher.publish(&mut log).unwrap().published);
        assert_eq!(live.epoch(), 0, "not adopted until a step runs");

        let scan2 = scan_for(&log, 2);
        let (loc, epoch) = live.observe(&scan2, east()).unwrap();
        assert_eq!(epoch, 1, "adopted at the step boundary");
        assert_eq!(loc, l(2), "tracking continues across the swap");
    }

    #[test]
    fn stale_hold_defers_adoption_without_breaking_tracking() {
        let mut log = seeded_log();
        let publisher = SnapshotPublisher::new(log.build_snapshot(0).unwrap());
        log.mark_published();
        let mut live = LiveLocalizer::new(publisher.reader(), MoLocConfig::paper());

        live.observe(&scan_for(&log, 1), None).unwrap();
        log.observe_survey_sample(l(3), &[-54.2, -65.9, -79.1]).unwrap();
        publisher.publish(&mut log).unwrap();

        let (loc, epoch) = live
            .observe_held(&scan_for(&log, 2), east(), true)
            .unwrap();
        assert_eq!(epoch, 0, "held step serves the old epoch");
        assert_eq!(loc, l(2));

        let (loc, epoch) = live.observe(&scan_for(&log, 3), east()).unwrap();
        assert_eq!(epoch, 1, "released step adopts");
        assert_eq!(loc, l(3));
    }
}
