//! An epoch-stamped immutable database snapshot.
//!
//! One [`DbSnapshot`] is the complete read-side world for a
//! localization epoch: the condensed fingerprint database, the query
//! index built over it, and the sanitized motion database with its
//! construction report. Snapshots are shared behind `Arc`s by the
//! publisher, every in-flight reader, and every live localizer — they
//! are never mutated, only replaced wholesale at an epoch boundary.

use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::index::FingerprintIndex;
use moloc_motion::builder::BuildReport;
use moloc_motion::matrix::MotionDb;
use std::sync::Arc;

/// The immutable databases one epoch serves from.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    /// The publish generation this snapshot belongs to. Epoch 0 is the
    /// initial (pre-update) database; every successful publish
    /// increments it by one.
    pub epoch: u64,
    /// The condensed per-location fingerprint database.
    pub fdb: Arc<FingerprintDb>,
    /// The k-NN query index built over `fdb`.
    pub index: Arc<FingerprintIndex>,
    /// The sanitized crowdsourced motion database.
    pub motion_db: Arc<MotionDb>,
    /// Construction counters for the motion database (coarse/fine
    /// rejections, underpopulated pairs). Part of the content digest:
    /// two logs that saw different RLM streams must hash differently
    /// even when every difference was filtered out.
    pub motion_report: BuildReport,
}

impl DbSnapshot {
    /// FNV-1a digest over the snapshot's *content* — every fingerprint
    /// bit, every motion pair's fitted Gaussian bits, and the build
    /// report counters. The `epoch` stamp is deliberately excluded:
    /// the incremental-vs-rebuild equivalence contract compares a
    /// published epoch-N snapshot against a from-scratch epoch-0
    /// rebuild, and those must collide exactly when their databases
    /// are bit-identical.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(self.fdb.ap_count() as u64);
        for (id, fp) in self.fdb.iter() {
            h.eat(u64::from(id.get()));
            for &v in fp.values() {
                h.eat(v.to_bits());
            }
        }
        h.eat(self.motion_db.pair_count() as u64);
        for (a, b, stats) in self.motion_db.iter() {
            h.eat(u64::from(a.get()));
            h.eat(u64::from(b.get()));
            h.eat(stats.direction.mean().to_bits());
            h.eat(stats.direction.std().to_bits());
            h.eat(stats.offset.mean().to_bits());
            h.eat(stats.offset.std().to_bits());
            h.eat(stats.sample_count);
        }
        let r = &self.motion_report;
        for counter in [
            r.observed,
            r.rejected_coarse,
            r.rejected_unmapped,
            r.rejected_fine,
            r.underpopulated_pairs,
            r.pairs_built,
        ] {
            h.eat(counter);
        }
        h.finish()
    }
}

/// Minimal FNV-1a accumulator (same constants as the checkpoint and
/// chaos digests elsewhere in the workspace).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, value: u64) {
        for b in value.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_fingerprint::fingerprint::Fingerprint;
    use moloc_geometry::LocationId;

    fn snap(epoch: u64, values: &[f64]) -> DbSnapshot {
        let fdb = FingerprintDb::from_fingerprints(vec![
            (LocationId::new(1), Fingerprint::new(values.to_vec())),
            (LocationId::new(2), Fingerprint::new(vec![-70.0; values.len()])),
        ])
        .expect("valid db");
        let index = FingerprintIndex::build(&fdb);
        DbSnapshot {
            epoch,
            fdb: Arc::new(fdb),
            index: Arc::new(index),
            motion_db: Arc::new(MotionDb::new(4)),
            motion_report: BuildReport::default(),
        }
    }

    #[test]
    fn digest_ignores_epoch_but_sees_content() {
        let a = snap(0, &[-40.0, -55.0]);
        let b = snap(17, &[-40.0, -55.0]);
        assert_eq!(a.digest(), b.digest(), "epoch must not enter the digest");

        let c = snap(0, &[-40.0, -55.5]);
        assert_ne!(a.digest(), c.digest(), "a changed RSS bit must change it");
    }

    #[test]
    fn digest_sees_report_counters() {
        let a = snap(0, &[-40.0]);
        let mut b = snap(0, &[-40.0]);
        b.motion_report.rejected_coarse = 1;
        assert_ne!(
            a.digest(),
            b.digest(),
            "a filtered-out RLM still distinguishes the streams"
        );

        let mut c = snap(0, &[-40.0]);
        c.motion_report.rejected_unmapped = 1;
        assert_ne!(a.digest(), c.digest(), "unmapped drops are content too");
        assert_ne!(
            b.digest(),
            c.digest(),
            "coarse and unmapped rejections must hash differently"
        );
    }
}
