//! Atomic snapshot publication: [`SnapshotPublisher`] and
//! [`SnapshotReader`].
//!
//! The concurrency contract mirrors the paper's serving reality: many
//! sessions localize continuously while the databases grow underneath
//! them. The design keeps the query path lock-free:
//!
//! * The publisher holds the current [`DbSnapshot`] in a slot guarded
//!   by a mutex, plus the current epoch in an [`AtomicU64`].
//! * A reader caches an `Arc` to the snapshot it is pinned to. Per
//!   localization step it performs **one** `Acquire` load of the epoch
//!   counter; only when the value moved does it take the slot lock to
//!   swap its cached `Arc`. Steps that straddle a publish finish on the
//!   old snapshot — an epoch change is only ever picked up at a step
//!   boundary.
//! * Publishing builds the next snapshot *outside* the lock, swaps the
//!   slot, then advances the epoch counter with `Release` ordering, so
//!   a reader that observes the new epoch is guaranteed to find the new
//!   snapshot in the slot.
//! * A zero-delta publish is skipped outright — no epoch bump, no
//!   rebuild — which makes "publish with nothing pending" a digest
//!   no-op by construction.

use crate::snapshot::DbSnapshot;
use crate::update::UpdateLog;
use crate::LiveError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What one [`SnapshotPublisher::publish`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// Whether a new epoch was actually published (false when the log
    /// had no pending deltas).
    pub published: bool,
    /// The epoch current after the call.
    pub epoch: u64,
    /// How many pending deltas the published snapshot folded in (0 on
    /// a skip).
    pub deltas_folded: u64,
}

/// The write side: owns the current snapshot and its epoch.
#[derive(Debug)]
pub struct SnapshotPublisher {
    epoch: AtomicU64,
    slot: Mutex<Arc<DbSnapshot>>,
}

impl SnapshotPublisher {
    /// Starts publishing from `initial` (its `epoch` field becomes the
    /// current epoch — conventionally 0 for the site-survey seed).
    pub fn new(initial: DbSnapshot) -> Arc<Self> {
        let epoch = initial.epoch;
        Arc::new(Self {
            epoch: AtomicU64::new(epoch),
            slot: Mutex::new(Arc::new(initial)),
        })
    }

    /// The epoch readers observing now would pin to.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (takes the slot lock; meant for setup and
    /// diagnostics, not the per-step query path — readers cache).
    pub fn snapshot(&self) -> Arc<DbSnapshot> {
        Arc::clone(&self.slot.lock().expect("snapshot slot poisoned"))
    }

    /// A reader pinned to the current snapshot.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader {
            publisher: Arc::clone(self),
            current: self.snapshot(),
        }
    }

    /// Folds the log's pending deltas into a new epoch and publishes
    /// it. With zero pending deltas the call is a no-op skip: no
    /// rebuild, no epoch bump, `published: false`.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError`] when the snapshot build fails (empty
    /// survey, non-finite mean); the current epoch stays live and the
    /// log keeps its pending deltas, so the caller can repair and
    /// retry.
    pub fn publish(&self, log: &mut UpdateLog) -> Result<PublishReport, LiveError> {
        let pending = log.pending_deltas();
        if pending == 0 {
            moloc_obs::counter_add("live.publish.skipped_empty", 1);
            return Ok(PublishReport {
                published: false,
                epoch: self.current_epoch(),
                deltas_folded: 0,
            });
        }
        let next = self.current_epoch() + 1;
        moloc_verify::check_epoch("live.publisher.epoch", self.current_epoch(), next);
        let started = Instant::now();
        let snapshot = Arc::new(log.build_snapshot(next)?);
        moloc_obs::record(
            "live.publish.build_seconds",
            started.elapsed().as_secs_f64(),
        );
        {
            let mut slot = self.slot.lock().expect("snapshot slot poisoned");
            *slot = snapshot;
        }
        // Release: a reader that Acquire-loads `next` must see the new
        // snapshot in the slot.
        self.epoch.store(next, Ordering::Release);
        log.mark_published();
        moloc_obs::counter_add("live.publish.count", 1);
        moloc_obs::counter_add("live.publish.deltas_folded", pending);
        moloc_obs::gauge_set("live.publish.epoch", next);
        Ok(PublishReport {
            published: true,
            epoch: next,
            deltas_folded: pending,
        })
    }
}

/// The read side: a cached pin on one epoch's snapshot.
///
/// Cheap to clone conceptually but deliberately *not* `Clone` — each
/// concurrent session should take its own reader from
/// [`SnapshotPublisher::reader`] so refresh accounting stays per-user.
#[derive(Debug)]
pub struct SnapshotReader {
    publisher: Arc<SnapshotPublisher>,
    current: Arc<DbSnapshot>,
}

impl SnapshotReader {
    /// The snapshot this reader is pinned to.
    pub fn snapshot(&self) -> &Arc<DbSnapshot> {
        &self.current
    }

    /// The epoch this reader is pinned to.
    pub fn epoch(&self) -> u64 {
        self.current.epoch
    }

    /// How many epochs behind the publisher this reader currently is.
    pub fn lag(&self) -> u64 {
        self.publisher
            .current_epoch()
            .saturating_sub(self.current.epoch)
    }

    /// Adopts the latest published snapshot if the epoch moved.
    /// Returns whether the pin changed. One atomic load on the fast
    /// path; the slot lock is taken only on an actual epoch change.
    pub fn refresh(&mut self) -> bool {
        self.refresh_unless(false)
    }

    /// [`SnapshotReader::refresh`], except a `hold` (the
    /// `StaleSnapshot` fault injector's hook) pins the reader to its
    /// current epoch for this step even if a newer one is out.
    pub fn refresh_unless(&mut self, hold: bool) -> bool {
        let published = self.publisher.epoch.load(Ordering::Acquire);
        if published == self.current.epoch {
            return false;
        }
        moloc_obs::gauge_set(
            "live.reader.epoch_lag",
            published.saturating_sub(self.current.epoch),
        );
        if hold {
            moloc_obs::counter_add("live.reader.stale_holds", 1);
            return false;
        }
        // A reader only ever moves forward: the publisher's epoch
        // counter is monotone, so adopting a published snapshot below
        // the pinned epoch means torn publication.
        moloc_verify::check_epoch("live.reader.epoch", self.current.epoch, published);
        self.current = self.publisher.snapshot();
        moloc_obs::counter_add("live.reader.refreshes", 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
    use moloc_motion::builder::MapReference;
    use moloc_motion::filter::SanitationConfig;
    use moloc_motion::rlm::Rlm;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn map() -> MapReference {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
        let graph = WalkGraph::from_grid(&grid, &plan);
        MapReference::new(&grid, &graph)
    }

    fn seeded_log() -> UpdateLog {
        let mut log = UpdateLog::new(2, map(), SanitationConfig::paper()).unwrap();
        log.observe_survey_sample(l(1), &[-40.0, -60.0]).unwrap();
        log.observe_survey_sample(l(2), &[-70.0, -30.0]).unwrap();
        log
    }

    #[test]
    fn zero_delta_publish_is_a_skip() {
        let mut log = seeded_log();
        let publisher = SnapshotPublisher::new(log.build_snapshot(0).unwrap());
        log.mark_published();
        let before = publisher.snapshot().digest();

        let report = publisher.publish(&mut log).unwrap();
        assert_eq!(
            report,
            PublishReport {
                published: false,
                epoch: 0,
                deltas_folded: 0
            }
        );
        assert_eq!(publisher.current_epoch(), 0);
        assert_eq!(publisher.snapshot().digest(), before, "digest no-op");
    }

    #[test]
    fn publish_bumps_epoch_and_folds_deltas() {
        let mut log = seeded_log();
        let publisher = SnapshotPublisher::new(log.build_snapshot(0).unwrap());
        log.mark_published();

        log.observe_survey_sample(l(1), &[-42.0, -58.0]).unwrap();
        log.observe_rlm(Rlm::new(l(1), l(2), 90.0, 2.0).unwrap());
        let report = publisher.publish(&mut log).unwrap();
        assert_eq!(
            report,
            PublishReport {
                published: true,
                epoch: 1,
                deltas_folded: 2
            }
        );
        assert_eq!(publisher.current_epoch(), 1);
        assert_eq!(log.pending_deltas(), 0);
        assert_eq!(publisher.snapshot().epoch, 1);
    }

    #[test]
    fn failed_publish_keeps_epoch_and_deltas() {
        let mut log = seeded_log();
        let publisher = SnapshotPublisher::new(log.build_snapshot(0).unwrap());
        log.mark_published();
        let before = publisher.snapshot().digest();

        log.observe_survey_sample(l(3), &[f64::NAN, -50.0]).unwrap();
        assert!(publisher.publish(&mut log).is_err());
        assert_eq!(publisher.current_epoch(), 0, "old epoch stays live");
        assert_eq!(publisher.snapshot().digest(), before);
        assert_eq!(log.pending_deltas(), 1, "deltas retained for retry");
    }

    #[test]
    fn reader_refreshes_once_per_epoch_change() {
        let mut log = seeded_log();
        let publisher = SnapshotPublisher::new(log.build_snapshot(0).unwrap());
        log.mark_published();
        let mut reader = publisher.reader();
        assert_eq!(reader.epoch(), 0);
        assert!(!reader.refresh(), "no publish yet");

        log.observe_survey_sample(l(2), &[-71.0, -29.0]).unwrap();
        publisher.publish(&mut log).unwrap();
        assert_eq!(reader.lag(), 1);
        assert!(reader.refresh(), "epoch moved");
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.lag(), 0);
        assert!(!reader.refresh(), "already current");
    }

    #[test]
    fn held_reader_stays_pinned_until_released() {
        let mut log = seeded_log();
        let publisher = SnapshotPublisher::new(log.build_snapshot(0).unwrap());
        log.mark_published();
        let mut reader = publisher.reader();

        log.observe_survey_sample(l(1), &[-39.0, -61.0]).unwrap();
        publisher.publish(&mut log).unwrap();
        assert!(!reader.refresh_unless(true), "held");
        assert_eq!(reader.epoch(), 0, "still serving the old epoch");
        assert!(reader.refresh_unless(false), "released");
        assert_eq!(reader.epoch(), 1);
    }
}
