//! Data reassembling (paper Sec. IV-B2).
//!
//! Under the *mutual reachability* assumption — if one can walk `i → j`,
//! one can walk `j → i` with the reversed direction and the same
//! offset — every crowdsourced RLM is stored with the smaller-id
//! location first, so a single measurement trains the pair in both
//! directions and the motion database fills up twice as fast.

use crate::rlm::Rlm;

/// Reassembles a batch of RLMs into canonical orientation.
///
/// # Examples
///
/// ```
/// use moloc_geometry::LocationId;
/// use moloc_motion::reassemble::reassemble;
/// use moloc_motion::rlm::Rlm;
///
/// let raw = vec![
///     Rlm::new(LocationId::new(4), LocationId::new(1), 0.0, 2.0).unwrap(),
///     Rlm::new(LocationId::new(1), LocationId::new(4), 180.0, 2.0).unwrap(),
/// ];
/// let out = reassemble(raw);
/// // Both now describe 1 → 4 walking south.
/// assert!(out.iter().all(|r| r.from == LocationId::new(1)));
/// assert!(out.iter().all(|r| (r.direction_deg - 180.0).abs() < 1e-9));
/// ```
pub fn reassemble<I: IntoIterator<Item = Rlm>>(rlms: I) -> Vec<Rlm> {
    rlms.into_iter().map(|r| r.canonical()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    #[test]
    fn all_outputs_are_canonical() {
        let raw = vec![
            Rlm::new(l(3), l(1), 45.0, 1.0).unwrap(),
            Rlm::new(l(1), l(3), 225.0, 1.0).unwrap(),
            Rlm::new(l(2), l(9), 10.0, 2.0).unwrap(),
        ];
        let out = reassemble(raw);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Rlm::is_canonical));
    }

    #[test]
    fn forward_and_backward_collapse_to_same_measurement() {
        let forward = Rlm::new(l(1), l(3), 225.0, 1.5).unwrap();
        let backward = Rlm::new(l(3), l(1), 45.0, 1.5).unwrap();
        let out = reassemble(vec![forward, backward]);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(reassemble(Vec::new()).is_empty());
    }
}
