//! Crowdsourced motion-database construction (paper Sec. IV-B).
//!
//! [`MotionDbBuilder`] ingests raw RLMs — whose endpoints are *location
//! estimates* from the fingerprint engine and whose direction/offset
//! come from noisy sensors — reassembles them, applies the coarse
//! map-based filter on ingestion, and at [`MotionDbBuilder::build`] time
//! applies the fine Gaussian filter and fits the per-pair statistics.

use crate::filter::{SanitationConfig, SanitationError};
use crate::matrix::{MotionDb, PairStats};
use crate::rlm::Rlm;
use moloc_geometry::shortest_path::all_pairs;
use moloc_geometry::{LocationId, ReferenceGrid, WalkGraph};
use moloc_stats::circular::{abs_diff_deg, CircularWelford};
use moloc_stats::gaussian::Gaussian;
use moloc_stats::online::Welford;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Map-derived reference values for the coarse filter: straight-line
/// bearings from location coordinates and walkable offsets from the
/// aisle graph (falling back to straight-line distance for unreachable
/// pairs).
#[derive(Debug, Clone)]
pub struct MapReference {
    grid: ReferenceGrid,
    walk_dist: Vec<Vec<Option<f64>>>,
}

impl MapReference {
    /// Builds the reference from the grid and its walkable graph.
    pub fn new(grid: &ReferenceGrid, graph: &WalkGraph) -> Self {
        Self {
            grid: grid.clone(),
            walk_dist: all_pairs(graph),
        }
    }

    /// Whether the reference covers this pair at all: both endpoints on
    /// the grid. Crowdsourced RLMs carry *estimated* endpoints, so ids
    /// outside the surveyed grid are expected hostile input, not a
    /// programming error.
    pub fn covers(&self, a: LocationId, b: LocationId) -> bool {
        self.grid.contains(a) && self.grid.contains(b)
    }

    /// The map direction from `a` to `b` (straight-line compass
    /// bearing), `None` for identical locations or endpoints off the
    /// grid.
    pub fn direction_deg(&self, a: LocationId, b: LocationId) -> Option<f64> {
        if !self.covers(a, b) {
            return None;
        }
        self.grid.bearing_deg(a, b)
    }

    /// The map offset from `a` to `b`: walkable distance when the graph
    /// connects them, straight-line distance otherwise. Infinite for
    /// endpoints off the grid (no measured offset can sit within a
    /// finite threshold of it).
    pub fn offset_m(&self, a: LocationId, b: LocationId) -> f64 {
        if !self.covers(a, b) {
            return f64::INFINITY;
        }
        self.walk_dist[a.index()][b.index()].unwrap_or_else(|| self.grid.distance(a, b))
    }

    /// Whether the pair is connected on the walkable graph (always
    /// false for endpoints off the grid).
    pub fn walkably_connected(&self, a: LocationId, b: LocationId) -> bool {
        self.covers(a, b) && self.walk_dist[a.index()][b.index()].is_some()
    }

    /// The reference grid.
    pub fn grid(&self) -> &ReferenceGrid {
        &self.grid
    }
}

/// Counters describing a construction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BuildReport {
    /// RLMs offered to the builder.
    pub observed: u64,
    /// RLMs dropped by the coarse filter for exceeding the direction or
    /// offset thresholds of a pair the map *does* cover.
    pub rejected_coarse: u64,
    /// RLMs dropped because the map reference has no entry for the pair
    /// at all (an endpoint off the surveyed grid). Previously
    /// misattributed to `rejected_coarse`, which made threshold tuning
    /// runs look far stricter than they were on corrupt-endpoint data.
    pub rejected_unmapped: u64,
    /// Measurements dropped by the fine (2σ) filter.
    pub rejected_fine: u64,
    /// Pairs dropped for having fewer than `min_samples` measurements.
    pub underpopulated_pairs: u64,
    /// Pairs that made it into the database.
    pub pairs_built: u64,
}

/// Accumulates crowdsourced RLMs into a [`MotionDb`].
///
/// # Examples
///
/// ```
/// use moloc_geometry::polygon::Aabb;
/// use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
/// use moloc_motion::builder::{MapReference, MotionDbBuilder};
/// use moloc_motion::filter::SanitationConfig;
/// use moloc_motion::rlm::Rlm;
///
/// let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0)?;
/// let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
/// let graph = WalkGraph::from_grid(&grid, &plan);
/// let map = MapReference::new(&grid, &graph);
/// let mut builder = MotionDbBuilder::new(map, SanitationConfig::paper())?;
/// for _ in 0..5 {
///     builder.observe(Rlm::new(LocationId::new(1), LocationId::new(2), 91.0, 2.05).unwrap());
/// }
/// let (db, report) = builder.build();
/// assert_eq!(report.pairs_built, 1);
/// assert!(db.get(LocationId::new(1), LocationId::new(2)).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MotionDbBuilder {
    map: MapReference,
    config: SanitationConfig,
    /// Per canonical pair: direction accumulator and raw offsets.
    pending: BTreeMap<(u32, u32), (CircularWelford, Vec<f64>)>,
    report: BuildReport,
}

impl MotionDbBuilder {
    /// Creates a builder.
    ///
    /// # Errors
    ///
    /// Returns [`SanitationError`] when the configuration fails
    /// [`SanitationConfig::validate`] — an invalid threshold is a
    /// caller-input problem, reported as a value rather than a panic.
    pub fn new(map: MapReference, config: SanitationConfig) -> Result<Self, SanitationError> {
        config.validate()?;
        Ok(Self {
            map,
            config,
            pending: BTreeMap::new(),
            report: BuildReport::default(),
        })
    }

    /// The map reference used for coarse filtering.
    pub fn map(&self) -> &MapReference {
        &self.map
    }

    /// Offers one crowdsourced RLM. Reassembles it, applies the coarse
    /// filter, and accumulates it. Returns whether it was accepted.
    pub fn observe(&mut self, rlm: Rlm) -> bool {
        self.report.observed += 1;
        let canon = rlm.canonical();
        // A pair the map cannot represent is dropped regardless of the
        // coarse toggle — its endpoints index nothing in the grid-sized
        // database — and attributed to its own counter: it says nothing
        // about the coarse thresholds.
        if !self.map.covers(canon.from, canon.to) {
            self.report.rejected_unmapped += 1;
            return false;
        }
        if self.config.coarse_enabled && !self.coarse_accepts(&canon) {
            self.report.rejected_coarse += 1;
            return false;
        }
        let key = (canon.from.get(), canon.to.get());
        let entry = self
            .pending
            .entry(key)
            .or_insert_with(|| (CircularWelford::new(), Vec::new()));
        entry.0.push(canon.direction_deg);
        entry.1.push(canon.offset_m);
        true
    }

    fn coarse_accepts(&self, canon: &Rlm) -> bool {
        let Some(map_dir) = self.map.direction_deg(canon.from, canon.to) else {
            return false;
        };
        if abs_diff_deg(canon.direction_deg, map_dir) > self.config.coarse_direction_deg {
            return false;
        }
        let map_off = self.map.offset_m(canon.from, canon.to);
        (canon.offset_m - map_off).abs() <= self.config.coarse_offset_m
    }

    /// Applies the fine filter, fits per-pair Gaussians, and produces
    /// the database plus a construction report.
    pub fn build(self) -> (MotionDb, BuildReport) {
        self.build_snapshot()
    }

    /// [`MotionDbBuilder::build`] without consuming the builder: fits a
    /// database from the measurements accumulated *so far*, leaving the
    /// builder open for more. The live-update path calls this once per
    /// published epoch; because the fine filter and the Gaussian fits
    /// run over cloned accumulators in the same order as `build`, the
    /// result is bit-identical to consuming a builder fed the same RLM
    /// sequence (the incremental-vs-rebuild equivalence contract).
    pub fn build_snapshot(&self) -> (MotionDb, BuildReport) {
        let mut report = self.report;
        let mut db = MotionDb::new(self.map.grid.len());
        for (&(i, j), (dirs, offsets)) in &self.pending {
            let mut dirs = dirs.clone();
            let mut offsets = offsets.clone();
            if self.config.fine_enabled {
                report.rejected_fine +=
                    Self::fine_filter(&mut dirs, &mut offsets, self.config.fine_sigma) as u64;
            }
            if dirs.count() < self.config.min_samples {
                report.underpopulated_pairs += 1;
                continue;
            }
            let Some(mu_d) = dirs.mean() else {
                report.underpopulated_pairs += 1;
                continue;
            };
            let sigma_d = dirs
                .std()
                .unwrap_or(0.0)
                .max(self.config.min_direction_std_deg);
            let off_acc: Welford = offsets.iter().copied().collect();
            let sigma_o = off_acc.std().max(self.config.min_offset_std_m);
            let stats = PairStats {
                direction: Gaussian::new(mu_d, sigma_d).expect("floored std"),
                offset: Gaussian::new(off_acc.mean(), sigma_o).expect("floored std"),
                sample_count: dirs.count() as u64,
            };
            db.insert(LocationId::new(i), LocationId::new(j), stats);
            report.pairs_built += 1;
        }
        (db, report)
    }

    /// Drops direction/offset measurements beyond `k·σ` of their means;
    /// a measurement index is removed from *both* channels if either
    /// channel flags it (the RLM as a whole is the outlier). Returns how
    /// many measurements were removed.
    fn fine_filter(dirs: &mut CircularWelford, offsets: &mut Vec<f64>, k: f64) -> usize {
        let Some(mu_d) = dirs.mean() else {
            return 0;
        };
        let sigma_d = dirs.std().unwrap_or(0.0);
        let off_acc: Welford = offsets.iter().copied().collect();
        let (mu_o, sigma_o) = (off_acc.mean(), off_acc.std());

        let dir_values: Vec<f64> = dirs.iter().collect();
        let keep: Vec<bool> = dir_values
            .iter()
            .zip(offsets.iter())
            .map(|(&d, &o)| {
                let dir_ok = sigma_d == 0.0 || abs_diff_deg(d, mu_d) <= k * sigma_d;
                let off_ok = sigma_o == 0.0 || (o - mu_o).abs() <= k * sigma_o;
                dir_ok && off_ok
            })
            .collect();
        let removed = keep.iter().filter(|&&b| !b).count();
        if removed > 0 {
            let mut kept_dirs = CircularWelford::new();
            let mut kept_offsets = Vec::with_capacity(offsets.len() - removed);
            for ((d, o), &k) in dir_values.iter().zip(offsets.iter()).zip(&keep) {
                if k {
                    kept_dirs.push(*d);
                    kept_offsets.push(*o);
                }
            }
            *dirs = kept_dirs;
            *offsets = kept_offsets;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, Vec2};

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    /// 3×2 grid spaced 2 m in an open hall; 1→2 runs east (90°).
    fn map() -> MapReference {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
        let graph = WalkGraph::from_grid(&grid, &plan);
        MapReference::new(&grid, &graph)
    }

    fn rlm(from: u32, to: u32, d: f64, o: f64) -> Rlm {
        Rlm::new(l(from), l(to), d, o).unwrap()
    }

    #[test]
    fn map_reference_values() {
        let m = map();
        assert!((m.direction_deg(l(1), l(2)).unwrap() - 90.0).abs() < 1e-9);
        assert!((m.offset_m(l(1), l(2)) - 2.0).abs() < 1e-9);
        // Non-adjacent but reachable: walkable distance (L-shaped).
        assert!((m.offset_m(l(1), l(5)) - 4.0).abs() < 1e-9);
        assert!(m.walkably_connected(l(1), l(6)));
    }

    #[test]
    fn clean_measurements_build_a_pair() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        for k in 0..6 {
            assert!(b.observe(rlm(1, 2, 88.0 + k as f64, 2.0 + 0.02 * k as f64)));
        }
        let (db, report) = b.build();
        assert_eq!(report.pairs_built, 1);
        assert_eq!(report.rejected_coarse, 0);
        let s = db.get(l(1), l(2)).unwrap();
        assert!((s.direction.mean() - 90.5).abs() < 1.0);
        assert!((s.offset.mean() - 2.05).abs() < 0.05);
        assert_eq!(s.sample_count, 6);
    }

    #[test]
    fn coarse_filter_drops_wild_directions_and_offsets() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        // 1→2 map direction is 90°; 150° is 60° off → rejected.
        assert!(!b.observe(rlm(1, 2, 150.0, 2.0)));
        // Offset 6 m differs from map 2 m by 4 m > 3 m → rejected.
        assert!(!b.observe(rlm(1, 2, 90.0, 6.0)));
        assert_eq!(b.report.rejected_coarse, 2);
    }

    #[test]
    fn coarse_filter_can_be_disabled() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::disabled()).unwrap();
        assert!(b.observe(rlm(1, 2, 150.0, 6.0)));
    }

    #[test]
    fn fine_filter_removes_2_sigma_outliers() {
        let mut cfg = SanitationConfig::paper();
        cfg.coarse_enabled = false; // isolate the fine filter
        let mut b = MotionDbBuilder::new(map(), cfg).unwrap();
        // Cluster at 90° / 2 m with one wild outlier.
        for _ in 0..10 {
            b.observe(rlm(1, 2, 90.0, 2.0));
        }
        for _ in 0..10 {
            b.observe(rlm(1, 2, 94.0, 2.1));
        }
        b.observe(rlm(1, 2, 140.0, 2.05));
        let (db, report) = b.build();
        assert_eq!(report.rejected_fine, 1);
        let s = db.get(l(1), l(2)).unwrap();
        assert_eq!(s.sample_count, 20);
        assert!(s.direction.mean() < 95.0);
    }

    #[test]
    fn reversed_observations_train_the_same_pair() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        for _ in 0..3 {
            b.observe(rlm(1, 2, 90.0, 2.0)); // east
            b.observe(rlm(2, 1, 270.0, 2.0)); // back west
        }
        let (db, report) = b.build();
        assert_eq!(report.pairs_built, 1);
        assert_eq!(db.get(l(1), l(2)).unwrap().sample_count, 6);
    }

    #[test]
    fn underpopulated_pairs_are_dropped() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        b.observe(rlm(1, 2, 90.0, 2.0));
        b.observe(rlm(1, 2, 90.0, 2.0)); // only 2 < min_samples = 3
        let (db, report) = b.build();
        assert!(db.is_empty());
        assert_eq!(report.underpopulated_pairs, 1);
        assert_eq!(report.pairs_built, 0);
    }

    #[test]
    fn std_floors_apply() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        for _ in 0..5 {
            b.observe(rlm(1, 2, 90.0, 2.0)); // identical → zero variance
        }
        let (db, _) = b.build();
        let s = db.get(l(1), l(2)).unwrap();
        assert_eq!(s.direction.std(), 2.0);
        assert_eq!(s.offset.std(), 0.05);
    }

    #[test]
    fn build_snapshot_matches_consuming_build_at_every_prefix() {
        // The live-update contract: a non-consuming snapshot after N
        // observations is bit-identical to consuming a fresh builder
        // fed the same N observations, and the builder stays open.
        let all: Vec<Rlm> = (0..8)
            .map(|k| rlm(1, 2, 88.0 + f64::from(k), 2.0 + 0.02 * f64::from(k)))
            .chain((0..4).map(|k| rlm(2, 3, 89.0 + f64::from(k), 2.01 * f64::from(k + 1))))
            .chain(std::iter::once(rlm(1, 2, 10.0, 2.0))) // coarse reject
            .collect();
        let digest = |db: &MotionDb| -> Vec<(u32, u32, u64, u64, u64, u64, u64)> {
            db.iter()
                .map(|(a, b, s)| {
                    (
                        a.get(),
                        b.get(),
                        s.direction.mean().to_bits(),
                        s.direction.std().to_bits(),
                        s.offset.mean().to_bits(),
                        s.offset.std().to_bits(),
                        s.sample_count,
                    )
                })
                .collect()
        };
        let mut live = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        for (n, r) in all.iter().enumerate() {
            live.observe(*r);
            let (snap_db, snap_report) = live.build_snapshot();
            let mut fresh = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
            for r in &all[..=n] {
                fresh.observe(*r);
            }
            let (fresh_db, fresh_report) = fresh.build();
            assert_eq!(digest(&snap_db), digest(&fresh_db), "prefix {}", n + 1);
            assert_eq!(snap_report, fresh_report, "prefix {}", n + 1);
        }
    }

    #[test]
    fn map_reference_is_total_for_off_grid_ids() {
        // The 3×2 fixture covers ids 1..=6; 7 is a corrupt estimate.
        let m = map();
        assert!(m.covers(l(1), l(6)));
        assert!(!m.covers(l(1), l(7)));
        assert_eq!(m.direction_deg(l(1), l(7)), None);
        assert_eq!(m.offset_m(l(7), l(1)), f64::INFINITY);
        assert!(!m.walkably_connected(l(1), l(7)));
    }

    #[test]
    fn off_grid_rlms_count_as_unmapped_not_coarse() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        assert!(!b.observe(rlm(1, 7, 90.0, 2.0)));
        assert_eq!(b.report.rejected_unmapped, 1);
        assert_eq!(
            b.report.rejected_coarse, 0,
            "unmapped must not masquerade as a threshold rejection"
        );
        // A genuine threshold rejection still lands in rejected_coarse.
        assert!(!b.observe(rlm(1, 2, 150.0, 2.0)));
        assert_eq!(b.report.rejected_coarse, 1);
        assert_eq!(b.report.rejected_unmapped, 1);
        let (db, report) = b.build();
        assert!(db.is_empty());
        assert_eq!(report.observed, 2);
    }

    #[test]
    fn unmapped_rlms_are_dropped_even_with_coarse_disabled() {
        // With the coarse filter off an off-grid pair used to flow into
        // the accumulator and blow up the grid-sized database at build.
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::disabled()).unwrap();
        assert!(!b.observe(rlm(6, 7, 90.0, 2.0)));
        assert_eq!(b.report.rejected_unmapped, 1);
        let (db, report) = b.build();
        assert!(db.is_empty());
        assert_eq!(report.pairs_built, 0);
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut b = MotionDbBuilder::new(map(), SanitationConfig::paper()).unwrap();
        for _ in 0..5 {
            b.observe(rlm(1, 2, 90.0, 2.0));
        }
        b.observe(rlm(1, 2, 10.0, 2.0)); // coarse reject
        let (_, report) = b.build();
        assert_eq!(report.observed, 6);
        assert_eq!(report.rejected_coarse, 1);
        assert_eq!(report.pairs_built, 1);
    }
}
