//! A precomputed lookup kernel for the motion-matching hot path.
//!
//! [`crate::matrix::MotionDb::get`] resolves a `BTreeMap` keyed by
//! canonical pairs, mirrors reversed entries on every call, and the
//! caller then builds throwaway `Gaussian`s and evaluates two
//! `erfc`-based CDFs per pair. That is fine for a handful of queries,
//! but Eq. 6 evaluates `k²` pairs per localization step and the
//! evaluation pipeline runs millions of steps.
//!
//! [`MotionKernel`] flattens the database once per `(MotionDb, config)`
//! into dense per-pair parameter tables — both orientations
//! materialized, ids resolved by direct indexing — and evaluates window
//! masses through the tabulated CDF of [`moloc_stats::normcdf`].
//!
//! # Accuracy
//!
//! For every pair and measurement, [`MotionKernel::pair_probability`]
//! agrees with the exact Gaussian-window computation (the
//! `pair_motion_probability` path in `moloc-core`) within `1e-6`
//! absolute: each window mass is a difference of two interpolated CDF
//! reads (each within `1.3e-7` of the exact CDF), and the
//! direction/offset masses are both at most 1, so their product
//! deviates by less than `5e-7`. A property test in `moloc-core`
//! enforces the bound against randomly generated databases.

use crate::matrix::MotionDb;
use moloc_geometry::LocationId;
use moloc_stats::circular::signed_diff_deg;
use moloc_stats::normcdf::fast_std_normal_cdf;

/// The matching parameters the kernel bakes in, mirroring the fields of
/// `moloc-core`'s `MoLocConfig` that Eq. 5 consumes. (A standalone type
/// because `moloc-motion` sits below `moloc-core` in the crate graph.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelConfig {
    /// Direction window width `α` in degrees.
    pub alpha_deg: f64,
    /// Offset window width `β` in meters.
    pub beta_m: f64,
    /// Probability assigned to untrained pairs.
    pub missing_pair_prob: f64,
    /// Offset standard deviation of the stay-in-place model, meters.
    pub stationary_offset_std_m: f64,
}

/// Scaled parameters of one directed trained pair.
#[derive(Debug, Clone, Copy)]
struct PairParams {
    /// Mean direction, compass degrees.
    dir_mean: f64,
    /// `1 / σᵈ`.
    dir_inv_std: f64,
    /// Mean offset, meters.
    off_mean: f64,
    /// `1 / σᵒ`.
    off_inv_std: f64,
}

/// Untrained-pair sentinel in the dense index.
const UNTRAINED: u32 = u32::MAX;

/// A flattened, precomputed view of a [`MotionDb`] for one matching
/// configuration. Build once, query millions of times.
#[derive(Debug, Clone)]
pub struct MotionKernel {
    location_count: usize,
    alpha_deg: f64,
    beta_m: f64,
    missing_pair_prob: f64,
    /// `(α/360) · 1`, the uninformative direction mass of the stay model.
    stay_direction_mass: f64,
    /// `1 / stationary_offset_std_m`.
    stay_inv_std: f64,
    /// Dense directed-pair index: `from.index() * n + to.index()` →
    /// offset into `params`, or [`UNTRAINED`].
    pair_index: Vec<u32>,
    params: Vec<PairParams>,
}

impl MotionKernel {
    /// Precomputes the kernel for `db` under `config`.
    ///
    /// Cost is `O(n² + pairs)` time and `O(n²)` memory in the location
    /// count — for the paper's 28-location hall this is a few kilobytes.
    ///
    /// # Panics
    ///
    /// Panics if `config` has non-positive `alpha_deg`, `beta_m`, or
    /// `stationary_offset_std_m`, or a negative `missing_pair_prob`
    /// (mirroring `MoLocConfig::validate`).
    pub fn build(db: &MotionDb, config: &KernelConfig) -> Self {
        assert!(
            config.alpha_deg > 0.0 && config.alpha_deg.is_finite(),
            "alpha_deg must be positive"
        );
        assert!(
            config.beta_m > 0.0 && config.beta_m.is_finite(),
            "beta_m must be positive"
        );
        assert!(
            config.stationary_offset_std_m > 0.0 && config.stationary_offset_std_m.is_finite(),
            "stationary_offset_std_m must be positive"
        );
        assert!(
            config.missing_pair_prob >= 0.0 && config.missing_pair_prob.is_finite(),
            "missing_pair_prob must be non-negative"
        );
        let n = db.location_count();
        let mut pair_index = vec![UNTRAINED; n * n];
        let mut params = Vec::with_capacity(2 * db.pair_count());
        for (i, j, _) in db.iter() {
            for (from, to) in [(i, j), (j, i)] {
                let stats = db.get(from, to).expect("iterated pair exists");
                let slot = params.len() as u32;
                params.push(PairParams {
                    dir_mean: stats.direction.mean(),
                    dir_inv_std: 1.0 / stats.direction.std(),
                    off_mean: stats.offset.mean(),
                    off_inv_std: 1.0 / stats.offset.std(),
                });
                pair_index[from.index() * n + to.index()] = slot;
            }
        }
        Self {
            location_count: n,
            alpha_deg: config.alpha_deg,
            beta_m: config.beta_m,
            missing_pair_prob: config.missing_pair_prob,
            stay_direction_mass: (config.alpha_deg / 360.0).min(1.0),
            stay_inv_std: 1.0 / config.stationary_offset_std_m,
            pair_index,
            params,
        }
    }

    /// Number of reference locations the kernel covers.
    pub fn location_count(&self) -> usize {
        self.location_count
    }

    /// Number of directed trained pairs materialized.
    pub fn directed_pair_count(&self) -> usize {
        self.params.len()
    }

    /// Mass of `[center - width/2, center + width/2]` under `N(mean, σ²)`
    /// with `inv_std = 1/σ`, via the tabulated CDF.
    #[inline]
    fn window_mass(mean: f64, inv_std: f64, center: f64, width: f64) -> f64 {
        let lo = (center - width / 2.0 - mean) * inv_std;
        let hi = (center + width / 2.0 - mean) * inv_std;
        (fast_std_normal_cdf(hi) - fast_std_normal_cdf(lo)).max(0.0)
    }

    /// The stay-in-place probability `P_{i,i}(·, o)` — the `from == to`
    /// branch of [`MotionKernel::pair_probability`]. It depends only on
    /// the measured offset, so Eq. 7 loops can evaluate it once per
    /// observation instead of on every diagonal hit of the `k × k`
    /// candidate product.
    #[inline]
    pub fn stay_probability(&self, offset_m: f64) -> f64 {
        let o_mass = Self::window_mass(0.0, self.stay_inv_std, offset_m, self.beta_m);
        self.stay_direction_mass * o_mass
    }

    /// The pairwise motion probability `P_{i,j}(d, o)` (Eq. 5),
    /// matching the exact computation within `1e-6` (see module docs).
    #[inline]
    pub fn pair_probability(
        &self,
        from: LocationId,
        to: LocationId,
        direction_deg: f64,
        offset_m: f64,
    ) -> f64 {
        if from == to {
            return self.stay_probability(offset_m);
        }
        let (fi, ti) = (from.index(), to.index());
        if fi >= self.location_count || ti >= self.location_count {
            return self.missing_pair_prob;
        }
        let slot = self.pair_index[fi * self.location_count + ti];
        if slot == UNTRAINED {
            return self.missing_pair_prob;
        }
        let p = &self.params[slot as usize];
        // Direction windows are evaluated on the wrapped deviation from
        // the pair mean so the 0°/360° seam never splits a window —
        // identical to the exact path.
        let dev = signed_diff_deg(p.dir_mean, direction_deg);
        let d_mass = Self::window_mass(0.0, p.dir_inv_std, dev, self.alpha_deg);
        let o_mass = Self::window_mass(p.off_mean, p.off_inv_std, offset_m, self.beta_m);
        d_mass * o_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::PairStats;
    use moloc_stats::gaussian::Gaussian;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn config() -> KernelConfig {
        KernelConfig {
            alpha_deg: 20.0,
            beta_m: 1.0,
            missing_pair_prob: 1e-6,
            stationary_offset_std_m: 0.5,
        }
    }

    fn db() -> MotionDb {
        let mut db = MotionDb::new(4);
        db.insert(
            l(1),
            l(2),
            PairStats {
                direction: Gaussian::new(90.0, 5.0).unwrap(),
                offset: Gaussian::new(5.0, 0.3).unwrap(),
                sample_count: 10,
            },
        );
        db
    }

    #[test]
    fn materializes_both_orientations() {
        let k = MotionKernel::build(&db(), &config());
        assert_eq!(k.directed_pair_count(), 2);
        assert!(k.pair_probability(l(1), l(2), 90.0, 5.0) > 0.8);
        assert!(k.pair_probability(l(2), l(1), 270.0, 5.0) > 0.8);
        assert!(k.pair_probability(l(2), l(1), 90.0, 5.0) < 1e-6);
    }

    #[test]
    fn untrained_and_out_of_range_pairs_use_epsilon() {
        let k = MotionKernel::build(&db(), &config());
        assert_eq!(k.pair_probability(l(1), l(3), 90.0, 5.0), 1e-6);
        assert_eq!(k.pair_probability(l(1), l(9), 90.0, 5.0), 1e-6);
    }

    #[test]
    fn stay_model_prefers_small_offsets() {
        let k = MotionKernel::build(&db(), &config());
        let near = k.pair_probability(l(1), l(1), 10.0, 0.1);
        let far = k.pair_probability(l(1), l(1), 10.0, 4.0);
        assert!(near > 100.0 * far);
    }

    #[test]
    fn matches_direct_gaussian_masses() {
        let k = MotionKernel::build(&db(), &config());
        let stats = db().get(l(1), l(2)).unwrap();
        for (d, o) in [(90.0, 5.0), (95.0, 4.8), (80.0, 5.5), (270.0, 5.0)] {
            let dev = moloc_stats::circular::signed_diff_deg(stats.direction.mean(), d);
            let exact = Gaussian::new(0.0, stats.direction.std())
                .unwrap()
                .window_mass(dev, 20.0)
                * stats.offset.window_mass(o, 1.0);
            let fast = k.pair_probability(l(1), l(2), d, o);
            assert!(
                (fast - exact).abs() < 1e-6,
                "({d}, {o}): fast {fast} vs exact {exact}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha_deg")]
    fn rejects_bad_config() {
        let bad = KernelConfig {
            alpha_deg: 0.0,
            ..config()
        };
        MotionKernel::build(&db(), &bad);
    }
}
