//! Map-derived motion database — the rejected alternative of Sec. IV-A.
//!
//! Computing RLMs from location coordinates is cheap but violates the
//! *consistency principle*: two locations that are geographically close
//! yet separated by a wall get connected with a straight-line offset no
//! user can actually walk. The reproduction keeps this constructor as an
//! ablation comparator (`abl-mapdb` in DESIGN.md).

use crate::matrix::{MotionDb, PairStats};
use moloc_geometry::ReferenceGrid;
use moloc_stats::gaussian::Gaussian;
use serde::{Deserialize, Serialize};

/// Configuration for the map-based construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapBasedConfig {
    /// Pairs within this straight-line distance are treated as
    /// adjacent (walls ignored — that is the point of the ablation).
    pub adjacency_distance_m: f64,
    /// Direction std assigned to every entry, degrees.
    pub direction_std_deg: f64,
    /// Offset std assigned to every entry, meters.
    pub offset_std_m: f64,
}

impl Default for MapBasedConfig {
    fn default() -> Self {
        Self {
            adjacency_distance_m: 6.5,
            direction_std_deg: 5.0,
            offset_std_m: 0.3,
        }
    }
}

/// Builds a motion database purely from grid coordinates.
///
/// # Panics
///
/// Panics if any configured value is non-positive.
///
/// # Examples
///
/// ```
/// use moloc_geometry::{LocationId, ReferenceGrid, Vec2};
/// use moloc_motion::map_based::{from_coordinates, MapBasedConfig};
///
/// let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0)?;
/// let db = from_coordinates(&grid, MapBasedConfig::default());
/// // Connects straight-line neighbors regardless of walls.
/// assert!(db.get(LocationId::new(1), LocationId::new(2)).is_some());
/// # Ok::<(), moloc_geometry::grid::InvalidGridError>(())
/// ```
pub fn from_coordinates(grid: &ReferenceGrid, config: MapBasedConfig) -> MotionDb {
    assert!(
        config.adjacency_distance_m > 0.0
            && config.direction_std_deg > 0.0
            && config.offset_std_m > 0.0,
        "map-based configuration values must be positive"
    );
    let mut db = MotionDb::new(grid.len());
    let ids: Vec<_> = grid.ids().collect();
    for (idx, &a) in ids.iter().enumerate() {
        for &b in &ids[idx + 1..] {
            let dist = grid.distance(a, b);
            if dist > config.adjacency_distance_m {
                continue;
            }
            let dir = grid
                .bearing_deg(a, b)
                .expect("distinct grid locations have a bearing");
            db.insert(
                a,
                b,
                PairStats {
                    direction: Gaussian::new(dir, config.direction_std_deg).expect("positive std"),
                    offset: Gaussian::new(dist, config.offset_std_m).expect("positive std"),
                    sample_count: 0,
                },
            );
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::{LocationId, Vec2};

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn grid() -> ReferenceGrid {
        ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap()
    }

    #[test]
    fn connects_neighbors_within_radius() {
        let db = from_coordinates(
            &grid(),
            MapBasedConfig {
                adjacency_distance_m: 2.5,
                ..MapBasedConfig::default()
            },
        );
        assert!(db.contains(l(1), l(2)));
        assert!(db.contains(l(1), l(4)));
        assert!(!db.contains(l(1), l(3))); // 4 m away
        assert!(!db.contains(l(1), l(5))); // diagonal 2.83 m > 2.5 m
    }

    #[test]
    fn entries_carry_map_geometry() {
        let db = from_coordinates(&grid(), MapBasedConfig::default());
        let s = db.get(l(1), l(2)).unwrap();
        assert!((s.direction.mean() - 90.0).abs() < 1e-9);
        assert!((s.offset.mean() - 2.0).abs() < 1e-9);
        assert_eq!(s.sample_count, 0);
    }

    #[test]
    fn larger_radius_connects_diagonals() {
        let db = from_coordinates(
            &grid(),
            MapBasedConfig {
                adjacency_distance_m: 3.0,
                ..MapBasedConfig::default()
            },
        );
        assert!(db.contains(l(1), l(5)));
        let s = db.get(l(1), l(5)).unwrap();
        assert!((s.direction.mean() - 135.0).abs() < 1e-9); // SE
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_config_panics() {
        let _ = from_coordinates(
            &grid(),
            MapBasedConfig {
                adjacency_distance_m: 0.0,
                ..MapBasedConfig::default()
            },
        );
    }
}
