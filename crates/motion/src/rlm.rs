//! Relative location measurements.

use moloc_geometry::LocationId;
use moloc_stats::circular::{normalize_deg, reverse_deg};
use serde::{Deserialize, Serialize};

/// A relative location measurement `r_{i,j} = ⟨d, o⟩`: walking from
/// `from` to `to` took direction `d` (compass degrees) and offset `o`
/// meters (Sec. IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rlm {
    /// Starting location `i`.
    pub from: LocationId,
    /// Ending location `j`.
    pub to: LocationId,
    /// Direction measurement in `[0, 360)` degrees.
    pub direction_deg: f64,
    /// Offset (walked distance) in meters.
    pub offset_m: f64,
}

/// Error constructing an invalid [`Rlm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidRlmError {
    /// `from` and `to` are the same location.
    SelfLoop,
    /// The offset is negative or not finite.
    BadOffset,
    /// The direction is not finite.
    BadDirection,
}

impl std::fmt::Display for InvalidRlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidRlmError::SelfLoop => write!(f, "RLM endpoints must differ"),
            InvalidRlmError::BadOffset => write!(f, "RLM offset must be finite and non-negative"),
            InvalidRlmError::BadDirection => write!(f, "RLM direction must be finite"),
        }
    }
}

impl std::error::Error for InvalidRlmError {}

impl Rlm {
    /// Creates an RLM; the direction is normalized into `[0, 360)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRlmError`] for self-loops, negative/non-finite
    /// offsets, or non-finite directions.
    pub fn new(
        from: LocationId,
        to: LocationId,
        direction_deg: f64,
        offset_m: f64,
    ) -> Result<Self, InvalidRlmError> {
        if from == to {
            return Err(InvalidRlmError::SelfLoop);
        }
        if !offset_m.is_finite() || offset_m < 0.0 {
            return Err(InvalidRlmError::BadOffset);
        }
        if !direction_deg.is_finite() {
            return Err(InvalidRlmError::BadDirection);
        }
        Ok(Self {
            from,
            to,
            direction_deg: normalize_deg(direction_deg),
            offset_m,
        })
    }

    /// The mirror RLM `r_{j,i}`: endpoints swapped, direction reversed
    /// (`d + 180° mod 360°`), same offset — the paper's mutual
    /// reachability rule.
    pub fn mirror(&self) -> Rlm {
        Rlm {
            from: self.to,
            to: self.from,
            direction_deg: reverse_deg(self.direction_deg),
            offset_m: self.offset_m,
        }
    }

    /// Whether this RLM is in canonical orientation (smaller id first).
    pub fn is_canonical(&self) -> bool {
        self.from < self.to
    }

    /// The canonical form: mirrored if `from.ID > to.ID`, unchanged
    /// otherwise — the paper's *data reassembling*.
    pub fn canonical(&self) -> Rlm {
        if self.is_canonical() {
            *self
        } else {
            self.mirror()
        }
    }

    /// The unordered pair key `(min, max)` of the endpoints.
    pub fn pair(&self) -> (LocationId, LocationId) {
        if self.from < self.to {
            (self.from, self.to)
        } else {
            (self.to, self.from)
        }
    }
}

impl std::fmt::Display for Rlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} → {}: ⟨{:.1}°, {:.2} m⟩",
            self.from, self.to, self.direction_deg, self.offset_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    #[test]
    fn construction_normalizes_direction() {
        let r = Rlm::new(l(1), l(2), 450.0, 3.0).unwrap();
        assert_eq!(r.direction_deg, 90.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert_eq!(
            Rlm::new(l(1), l(1), 0.0, 1.0),
            Err(InvalidRlmError::SelfLoop)
        );
        assert_eq!(
            Rlm::new(l(1), l(2), 0.0, -1.0),
            Err(InvalidRlmError::BadOffset)
        );
        assert_eq!(
            Rlm::new(l(1), l(2), f64::NAN, 1.0),
            Err(InvalidRlmError::BadDirection)
        );
        assert_eq!(
            Rlm::new(l(1), l(2), 0.0, f64::INFINITY),
            Err(InvalidRlmError::BadOffset)
        );
    }

    #[test]
    fn mirror_swaps_and_reverses() {
        let r = Rlm::new(l(1), l(2), 30.0, 5.8).unwrap();
        let m = r.mirror();
        assert_eq!(m.from, l(2));
        assert_eq!(m.to, l(1));
        assert_eq!(m.direction_deg, 210.0);
        assert_eq!(m.offset_m, 5.8);
    }

    #[test]
    fn mirror_is_involution() {
        let r = Rlm::new(l(3), l(7), 123.4, 2.5).unwrap();
        let back = r.mirror().mirror();
        assert_eq!(
            (back.from, back.to, back.offset_m),
            (r.from, r.to, r.offset_m)
        );
        assert!((back.direction_deg - r.direction_deg).abs() < 1e-9);
    }

    #[test]
    fn canonical_orients_smaller_id_first() {
        let forward = Rlm::new(l(2), l(5), 90.0, 4.0).unwrap();
        assert!(forward.is_canonical());
        assert_eq!(forward.canonical(), forward);

        let backward = Rlm::new(l(5), l(2), 270.0, 4.0).unwrap();
        assert!(!backward.is_canonical());
        let canon = backward.canonical();
        assert_eq!(canon.from, l(2));
        assert_eq!(canon.to, l(5));
        assert_eq!(canon.direction_deg, 90.0);
    }

    #[test]
    fn pair_is_orientation_independent() {
        let a = Rlm::new(l(2), l(5), 90.0, 4.0).unwrap();
        let b = Rlm::new(l(5), l(2), 270.0, 4.0).unwrap();
        assert_eq!(a.pair(), b.pair());
        assert_eq!(a.pair(), (l(2), l(5)));
    }

    #[test]
    fn display_is_informative() {
        let r = Rlm::new(l(1), l(2), 90.0, 5.75).unwrap();
        assert_eq!(r.to_string(), "L1 → L2: ⟨90.0°, 5.75 m⟩");
    }
}
