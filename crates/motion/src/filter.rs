//! Sanitation configuration for the motion database.
//!
//! The paper filters outliers at two granularities (Sec. IV-B2):
//!
//! * **Coarse**: discard an RLM whose direction or offset differs from
//!   the map-derived value by more than a threshold (20° / 3 m).
//! * **Fine**: fit Gaussians to the survivors per pair and drop
//!   measurements beyond `k·σ` of the mean (k = 2).
//!
//! [`SanitationConfig`] carries the thresholds plus the standard-
//! deviation floors that keep the fitted Gaussians non-degenerate.

use serde::{Deserialize, Serialize};

/// A rejected [`SanitationConfig`].
///
/// Configuration errors are caller input, not internal invariants, so
/// validation reports them as values instead of panicking — serving
/// code converts them into the crate-wide error hierarchy (`MolocError`
/// in `moloc-core`) at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitationError {
    /// The named threshold or floor must be positive and finite.
    NonPositive {
        /// Which field was rejected.
        field: &'static str,
    },
    /// `min_samples` must be at least 1.
    ZeroMinSamples,
}

impl SanitationError {
    /// The offending configuration field.
    pub fn field(&self) -> &'static str {
        match self {
            SanitationError::NonPositive { field } => field,
            SanitationError::ZeroMinSamples => "min_samples",
        }
    }
}

impl std::fmt::Display for SanitationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanitationError::NonPositive { field } => {
                write!(f, "sanitation config: {field} must be positive and finite")
            }
            SanitationError::ZeroMinSamples => {
                write!(f, "sanitation config: min_samples must be at least 1")
            }
        }
    }
}

impl std::error::Error for SanitationError {}

/// Thresholds for the two-level sanitation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitationConfig {
    /// Coarse: maximum |measured − map| direction difference, degrees
    /// (paper: 20°).
    pub coarse_direction_deg: f64,
    /// Coarse: maximum |measured − map| offset difference, meters
    /// (paper: 3 m).
    pub coarse_offset_m: f64,
    /// Fine: reject beyond this many standard deviations of the fitted
    /// Gaussian (paper: 2).
    pub fine_sigma: f64,
    /// Minimum measurements a pair needs to enter the database.
    pub min_samples: usize,
    /// Floor for the fitted direction std, degrees.
    pub min_direction_std_deg: f64,
    /// Floor for the fitted offset std, meters.
    pub min_offset_std_m: f64,
    /// Whether the coarse filter is enabled (ablation switch).
    pub coarse_enabled: bool,
    /// Whether the fine filter is enabled (ablation switch).
    pub fine_enabled: bool,
}

impl Default for SanitationConfig {
    fn default() -> Self {
        Self {
            coarse_direction_deg: 20.0,
            coarse_offset_m: 3.0,
            fine_sigma: 2.0,
            min_samples: 3,
            min_direction_std_deg: 2.0,
            min_offset_std_m: 0.05,
            coarse_enabled: true,
            fine_enabled: true,
        }
    }
}

impl SanitationConfig {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A configuration with all filtering disabled, for the sanitation
    /// ablation.
    pub fn disabled() -> Self {
        Self {
            coarse_enabled: false,
            fine_enabled: false,
            ..Self::default()
        }
    }

    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`SanitationError`] naming the first field that is
    /// non-positive, non-finite, or (for `min_samples`) zero. A NaN
    /// threshold fails every `> 0.0` comparison, so it is rejected like
    /// any other non-positive value rather than slipping through.
    pub fn validate(&self) -> Result<(), SanitationError> {
        let positive = |value: f64, field: &'static str| {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(SanitationError::NonPositive { field })
            }
        };
        positive(self.coarse_direction_deg, "coarse_direction_deg")?;
        positive(self.coarse_offset_m, "coarse_offset_m")?;
        positive(self.fine_sigma, "fine_sigma")?;
        if self.min_samples < 1 {
            return Err(SanitationError::ZeroMinSamples);
        }
        positive(self.min_direction_std_deg, "min_direction_std_deg")?;
        positive(self.min_offset_std_m, "min_offset_std_m")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_sec_4b2() {
        let c = SanitationConfig::paper();
        assert_eq!(c.coarse_direction_deg, 20.0);
        assert_eq!(c.coarse_offset_m, 3.0);
        assert_eq!(c.fine_sigma, 2.0);
        assert!(c.coarse_enabled && c.fine_enabled);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn disabled_keeps_thresholds_but_turns_off_filters() {
        let c = SanitationConfig::disabled();
        assert!(!c.coarse_enabled && !c.fine_enabled);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_threshold() {
        let c = SanitationConfig {
            coarse_direction_deg: 0.0,
            ..SanitationConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert_eq!(
            err,
            SanitationError::NonPositive {
                field: "coarse_direction_deg"
            }
        );
        assert_eq!(err.field(), "coarse_direction_deg");
        assert!(err.to_string().contains("coarse_direction_deg"));
    }

    #[test]
    fn validate_rejects_nan_threshold() {
        let c = SanitationConfig {
            fine_sigma: f64::NAN,
            ..SanitationConfig::default()
        };
        assert_eq!(
            c.validate().unwrap_err(),
            SanitationError::NonPositive {
                field: "fine_sigma"
            }
        );
    }

    #[test]
    fn validate_rejects_zero_min_samples() {
        let c = SanitationConfig {
            min_samples: 0,
            ..SanitationConfig::default()
        };
        assert_eq!(c.validate().unwrap_err(), SanitationError::ZeroMinSamples);
        assert_eq!(c.validate().unwrap_err().field(), "min_samples");
    }
}
