//! Sanitation configuration for the motion database.
//!
//! The paper filters outliers at two granularities (Sec. IV-B2):
//!
//! * **Coarse**: discard an RLM whose direction or offset differs from
//!   the map-derived value by more than a threshold (20° / 3 m).
//! * **Fine**: fit Gaussians to the survivors per pair and drop
//!   measurements beyond `k·σ` of the mean (k = 2).
//!
//! [`SanitationConfig`] carries the thresholds plus the standard-
//! deviation floors that keep the fitted Gaussians non-degenerate.

use serde::{Deserialize, Serialize};

/// Thresholds for the two-level sanitation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitationConfig {
    /// Coarse: maximum |measured − map| direction difference, degrees
    /// (paper: 20°).
    pub coarse_direction_deg: f64,
    /// Coarse: maximum |measured − map| offset difference, meters
    /// (paper: 3 m).
    pub coarse_offset_m: f64,
    /// Fine: reject beyond this many standard deviations of the fitted
    /// Gaussian (paper: 2).
    pub fine_sigma: f64,
    /// Minimum measurements a pair needs to enter the database.
    pub min_samples: usize,
    /// Floor for the fitted direction std, degrees.
    pub min_direction_std_deg: f64,
    /// Floor for the fitted offset std, meters.
    pub min_offset_std_m: f64,
    /// Whether the coarse filter is enabled (ablation switch).
    pub coarse_enabled: bool,
    /// Whether the fine filter is enabled (ablation switch).
    pub fine_enabled: bool,
}

impl Default for SanitationConfig {
    fn default() -> Self {
        Self {
            coarse_direction_deg: 20.0,
            coarse_offset_m: 3.0,
            fine_sigma: 2.0,
            min_samples: 3,
            min_direction_std_deg: 2.0,
            min_offset_std_m: 0.05,
            coarse_enabled: true,
            fine_enabled: true,
        }
    }
}

impl SanitationConfig {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A configuration with all filtering disabled, for the sanitation
    /// ablation.
    pub fn disabled() -> Self {
        Self {
            coarse_enabled: false,
            fine_enabled: false,
            ..Self::default()
        }
    }

    /// Validates the thresholds.
    ///
    /// # Panics
    ///
    /// Panics if any threshold is non-positive or non-finite.
    pub fn validate(&self) {
        assert!(
            self.coarse_direction_deg > 0.0 && self.coarse_direction_deg.is_finite(),
            "coarse direction threshold must be positive"
        );
        assert!(
            self.coarse_offset_m > 0.0 && self.coarse_offset_m.is_finite(),
            "coarse offset threshold must be positive"
        );
        assert!(
            self.fine_sigma > 0.0 && self.fine_sigma.is_finite(),
            "fine sigma must be positive"
        );
        assert!(self.min_samples >= 1, "min samples must be at least 1");
        assert!(
            self.min_direction_std_deg > 0.0 && self.min_offset_std_m > 0.0,
            "std floors must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_sec_4b2() {
        let c = SanitationConfig::paper();
        assert_eq!(c.coarse_direction_deg, 20.0);
        assert_eq!(c.coarse_offset_m, 3.0);
        assert_eq!(c.fine_sigma, 2.0);
        assert!(c.coarse_enabled && c.fine_enabled);
        c.validate();
    }

    #[test]
    fn disabled_keeps_thresholds_but_turns_off_filters() {
        let c = SanitationConfig::disabled();
        assert!(!c.coarse_enabled && !c.fine_enabled);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn validate_rejects_zero_threshold() {
        let c = SanitationConfig {
            coarse_direction_deg: 0.0,
            ..SanitationConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "min samples")]
    fn validate_rejects_zero_min_samples() {
        let c = SanitationConfig {
            min_samples: 0,
            ..SanitationConfig::default()
        };
        c.validate();
    }
}
