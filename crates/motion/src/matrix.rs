//! The motion database matrix (paper Sec. IV-C).
//!
//! Conceptually an n×n matrix `M` whose entry `M_{i,j}` is the
//! quadruple `(μᵈ_{i,j}, σᵈ_{i,j}, μᵒ_{i,j}, σᵒ_{i,j})`. Only canonical
//! pairs (`i < j`) are stored; the reverse entry is derived on lookup by
//! the paper's mirror rule (`μᵈ_{j,i} = μᵈ_{i,j} + 180° mod 360°`, all
//! other components unchanged).

use moloc_geometry::LocationId;
use moloc_stats::circular::reverse_deg;
use moloc_stats::gaussian::Gaussian;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The Gaussian statistics of one directed location pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// Direction distribution `N(μᵈ, (σᵈ)²)`, mean in compass degrees.
    pub direction: Gaussian,
    /// Offset distribution `N(μᵒ, (σᵒ)²)`, mean in meters.
    pub offset: Gaussian,
    /// Number of sanitized measurements behind these statistics.
    pub sample_count: u64,
}

impl PairStats {
    /// The statistics for walking the pair in the opposite direction.
    pub fn mirrored(&self) -> PairStats {
        PairStats {
            direction: Gaussian::new(reverse_deg(self.direction.mean()), self.direction.std())
                .expect("mirrored std unchanged"),
            offset: self.offset,
            sample_count: self.sample_count,
        }
    }
}

/// The motion database.
///
/// # Examples
///
/// ```
/// use moloc_geometry::LocationId;
/// use moloc_motion::matrix::{MotionDb, PairStats};
/// use moloc_stats::gaussian::Gaussian;
///
/// let mut db = MotionDb::new(28);
/// db.insert(
///     LocationId::new(1),
///     LocationId::new(2),
///     PairStats {
///         direction: Gaussian::new(90.0, 4.0).unwrap(),
///         offset: Gaussian::new(5.8, 0.2).unwrap(),
///         sample_count: 12,
///     },
/// );
/// // The reverse direction is derived automatically.
/// let rev = db.get(LocationId::new(2), LocationId::new(1)).unwrap();
/// assert_eq!(rev.direction.mean(), 270.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionDb {
    location_count: usize,
    /// Canonical entries keyed by `(i, j)` with `i < j`. Serialized as
    /// an entry list because JSON maps cannot have tuple keys.
    #[serde(with = "entries_as_list")]
    entries: BTreeMap<(u32, u32), PairStats>,
}

mod entries_as_list {
    use super::PairStats;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        entries: &BTreeMap<(u32, u32), PairStats>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let list: Vec<(u32, u32, &PairStats)> =
            entries.iter().map(|(&(i, j), s)| (i, j, s)).collect();
        list.serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<(u32, u32), PairStats>, D::Error> {
        let list = Vec::<(u32, u32, PairStats)>::deserialize(deserializer)?;
        Ok(list.into_iter().map(|(i, j, s)| ((i, j), s)).collect())
    }
}

impl MotionDb {
    /// Creates an empty database over `location_count` reference
    /// locations.
    pub fn new(location_count: usize) -> Self {
        Self {
            location_count,
            entries: BTreeMap::new(),
        }
    }

    /// Number of reference locations.
    pub fn location_count(&self) -> usize {
        self.location_count
    }

    /// Number of stored (undirected) pairs.
    pub fn pair_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts statistics for the directed pair `from → to`; stored in
    /// canonical orientation (mirrored first if `from > to`). Replaces
    /// any existing entry.
    ///
    /// # Panics
    ///
    /// Panics on self-pairs or ids beyond `location_count`.
    pub fn insert(&mut self, from: LocationId, to: LocationId, stats: PairStats) {
        assert!(from != to, "motion database has no self-pairs");
        self.check(from);
        self.check(to);
        if from < to {
            self.entries.insert((from.get(), to.get()), stats);
        } else {
            self.entries
                .insert((to.get(), from.get()), stats.mirrored());
        }
    }

    fn check(&self, id: LocationId) {
        assert!(
            (id.get() as usize) <= self.location_count,
            "{id} out of range for motion database"
        );
    }

    /// The statistics for walking `from → to`, deriving reversed
    /// entries by the mirror rule. `None` when the pair was never
    /// trained or `from == to`.
    pub fn get(&self, from: LocationId, to: LocationId) -> Option<PairStats> {
        if from == to {
            return None;
        }
        if from < to {
            self.entries.get(&(from.get(), to.get())).copied()
        } else {
            self.entries
                .get(&(to.get(), from.get()))
                .map(PairStats::mirrored)
        }
    }

    /// Whether the pair has an entry (in either orientation).
    pub fn contains(&self, a: LocationId, b: LocationId) -> bool {
        self.get(a, b).is_some()
    }

    /// The locations trained as reachable from `from` (have an entry).
    pub fn neighbors_of(&self, from: LocationId) -> Vec<LocationId> {
        (1..=self.location_count as u32)
            .map(LocationId::new)
            .filter(|&other| other != from && self.contains(from, other))
            .collect()
    }

    /// Removes the entry for the (undirected) pair, returning the
    /// stored canonical statistics. `None` when the pair was never
    /// trained or `a == b`. Used by fault injection to model corrupted
    /// or missing RLM cells; lookups of a removed pair fall back to the
    /// kernel's untrained-pair probability.
    pub fn remove(&mut self, a: LocationId, b: LocationId) -> Option<PairStats> {
        if a == b {
            return None;
        }
        let key = if a < b {
            (a.get(), b.get())
        } else {
            (b.get(), a.get())
        };
        self.entries.remove(&key)
    }

    /// Iterates canonical `(i, j, stats)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, LocationId, &PairStats)> {
        self.entries
            .iter()
            .map(|(&(i, j), s)| (LocationId::new(i), LocationId::new(j), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn stats(dir: f64, off: f64) -> PairStats {
        PairStats {
            direction: Gaussian::new(dir, 5.0).unwrap(),
            offset: Gaussian::new(off, 0.3).unwrap(),
            sample_count: 10,
        }
    }

    #[test]
    fn insert_and_lookup_forward() {
        let mut db = MotionDb::new(10);
        db.insert(l(1), l(2), stats(90.0, 5.8));
        let s = db.get(l(1), l(2)).unwrap();
        assert_eq!(s.direction.mean(), 90.0);
        assert_eq!(s.offset.mean(), 5.8);
        assert_eq!(db.pair_count(), 1);
    }

    #[test]
    fn reverse_lookup_mirrors_direction_only() {
        let mut db = MotionDb::new(10);
        db.insert(l(1), l(2), stats(90.0, 5.8));
        let rev = db.get(l(2), l(1)).unwrap();
        assert_eq!(rev.direction.mean(), 270.0);
        assert_eq!(rev.direction.std(), 5.0);
        assert_eq!(rev.offset.mean(), 5.8);
        assert_eq!(rev.sample_count, 10);
    }

    #[test]
    fn insert_reversed_is_canonicalized() {
        let mut db = MotionDb::new(10);
        db.insert(l(5), l(2), stats(270.0, 4.0));
        // Stored canonically as 2 → 5 at 90°.
        let s = db.get(l(2), l(5)).unwrap();
        assert_eq!(s.direction.mean(), 90.0);
        assert_eq!(db.pair_count(), 1);
    }

    #[test]
    fn untrained_pair_is_none() {
        let db = MotionDb::new(10);
        assert_eq!(db.get(l(1), l(2)), None);
        assert!(!db.contains(l(1), l(2)));
        assert!(db.is_empty());
    }

    #[test]
    fn self_pair_lookup_is_none() {
        let mut db = MotionDb::new(10);
        db.insert(l(1), l(2), stats(0.0, 1.0));
        assert_eq!(db.get(l(1), l(1)), None);
    }

    #[test]
    #[should_panic(expected = "no self-pairs")]
    fn self_pair_insert_panics() {
        let mut db = MotionDb::new(10);
        db.insert(l(1), l(1), stats(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_id_panics() {
        let mut db = MotionDb::new(3);
        db.insert(l(1), l(9), stats(0.0, 1.0));
    }

    #[test]
    fn neighbors_of_lists_trained_pairs() {
        let mut db = MotionDb::new(5);
        db.insert(l(1), l(2), stats(90.0, 2.0));
        db.insert(l(3), l(1), stats(0.0, 2.0));
        let n = db.neighbors_of(l(1));
        assert_eq!(n, vec![l(2), l(3)]);
        assert!(db.neighbors_of(l(5)).is_empty());
    }

    #[test]
    fn mirrored_twice_is_identity() {
        let s = stats(37.0, 2.2);
        let back = s.mirrored().mirrored();
        assert!((back.direction.mean() - s.direction.mean()).abs() < 1e-9);
        assert_eq!(back.offset, s.offset);
    }

    #[test]
    fn remove_works_in_either_orientation() {
        let mut db = MotionDb::new(5);
        db.insert(l(1), l(2), stats(90.0, 2.0));
        db.insert(l(2), l(3), stats(0.0, 2.0));
        assert_eq!(db.remove(l(1), l(1)), None);
        assert_eq!(db.remove(l(4), l(5)), None);
        // Reversed orientation hits the canonical entry.
        let removed = db.remove(l(2), l(1)).unwrap();
        assert_eq!(removed.direction.mean(), 90.0);
        assert_eq!(db.get(l(1), l(2)), None);
        assert_eq!(db.pair_count(), 1);
    }

    #[test]
    fn iter_yields_canonical_entries() {
        let mut db = MotionDb::new(5);
        db.insert(l(4), l(2), stats(180.0, 3.0));
        db.insert(l(1), l(2), stats(90.0, 2.0));
        let keys: Vec<_> = db.iter().map(|(a, b, _)| (a, b)).collect();
        assert_eq!(keys, vec![(l(1), l(2)), (l(2), l(4))]);
    }
}
