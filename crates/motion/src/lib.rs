//! The MoLoc motion database (paper Sec. IV).
//!
//! A *relative location measurement* (RLM) is the direction and offset a
//! user traverses between two adjacent reference locations. The motion
//! database stores, for every location pair, Gaussian statistics
//! `(μᵈ, σᵈ, μᵒ, σᵒ)` of the crowdsourced RLMs:
//!
//! * [`rlm`] — the RLM type, its mirror (reverse) and canonical forms.
//! * [`reassemble`] — the paper's *data reassembling*: exploit mutual
//!   reachability so each measurement trains both directions.
//! * [`filter`] — the two-level sanitation: coarse (against map-derived
//!   values, 20°/3 m thresholds) and fine (Gaussian 2σ outlier
//!   rejection).
//! * [`matrix`] — the n×n database with mirror-derived reverse entries.
//! * [`kernel`] — a precomputed flat-table view of the database for the
//!   Eq. 5/6 hot path (dense pair index + tabulated CDF).
//! * [`builder`] — the crowdsourcing pipeline putting it all together.
//! * [`map_based`] — the rejected straight-line alternative of
//!   Sec. IV-A, kept as an ablation comparator.
//!
//! # Examples
//!
//! ```
//! use moloc_geometry::LocationId;
//! use moloc_motion::rlm::Rlm;
//!
//! let r = Rlm::new(LocationId::new(5), LocationId::new(2), 270.0, 5.8)?;
//! let canonical = r.canonical();
//! assert_eq!(canonical.from, LocationId::new(2));
//! assert_eq!(canonical.direction_deg, 90.0);
//! assert_eq!(canonical.offset_m, 5.8);
//! # Ok::<(), moloc_motion::rlm::InvalidRlmError>(())
//! ```

pub mod builder;
pub mod filter;
pub mod kernel;
pub mod map_based;
pub mod matrix;
pub mod reassemble;
pub mod rlm;

pub use builder::{BuildReport, MapReference, MotionDbBuilder};
pub use filter::SanitationConfig;
pub use kernel::{KernelConfig, MotionKernel};
pub use matrix::{MotionDb, PairStats};
pub use rlm::Rlm;
