//! Property-based tests for the motion database.

use moloc_geometry::polygon::Aabb;
use moloc_geometry::{FloorPlan, LocationId, ReferenceGrid, Vec2, WalkGraph};
use moloc_motion::builder::{MapReference, MotionDbBuilder};
use moloc_motion::filter::SanitationConfig;
use moloc_motion::matrix::{MotionDb, PairStats};
use moloc_motion::reassemble::reassemble;
use moloc_motion::rlm::Rlm;
use moloc_stats::circular::abs_diff_deg;
use moloc_stats::gaussian::Gaussian;
use proptest::prelude::*;

fn ids() -> impl Strategy<Value = (u32, u32)> {
    (1u32..30, 1u32..30).prop_filter("distinct endpoints", |(a, b)| a != b)
}

fn rlm_strategy() -> impl Strategy<Value = Rlm> {
    (ids(), 0.0..360.0f64, 0.0..50.0f64).prop_map(|((a, b), d, o)| {
        Rlm::new(LocationId::new(a), LocationId::new(b), d, o).expect("valid rlm")
    })
}

proptest! {
    #[test]
    fn canonical_is_idempotent_and_oriented(rlm in rlm_strategy()) {
        let c = rlm.canonical();
        prop_assert!(c.is_canonical());
        prop_assert_eq!(c.canonical(), c);
        prop_assert_eq!(c.pair(), rlm.pair());
        prop_assert_eq!(c.offset_m, rlm.offset_m);
    }

    #[test]
    fn mirror_preserves_offset_and_reverses_direction(rlm in rlm_strategy()) {
        let m = rlm.mirror();
        prop_assert_eq!(m.offset_m, rlm.offset_m);
        prop_assert_eq!(m.from, rlm.to);
        prop_assert_eq!(m.to, rlm.from);
        prop_assert!((abs_diff_deg(m.direction_deg, rlm.direction_deg) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn reassembled_batches_are_all_canonical(rlms in prop::collection::vec(rlm_strategy(), 0..30)) {
        for r in reassemble(rlms) {
            prop_assert!(r.is_canonical());
        }
    }

    #[test]
    fn motion_db_forward_and_reverse_are_mirrors(
        (a, b) in ids(),
        dir in 0.0..360.0f64,
        dir_std in 0.5..30.0f64,
        off in 0.1..30.0f64,
        off_std in 0.05..2.0f64,
    ) {
        let mut db = MotionDb::new(30);
        let (a, b) = (LocationId::new(a), LocationId::new(b));
        db.insert(a, b, PairStats {
            direction: Gaussian::new(dir, dir_std).unwrap(),
            offset: Gaussian::new(off, off_std).unwrap(),
            sample_count: 5,
        });
        let fwd = db.get(a, b).unwrap();
        let rev = db.get(b, a).unwrap();
        prop_assert!((abs_diff_deg(fwd.direction.mean(), dir)) < 1e-9);
        prop_assert!((abs_diff_deg(rev.direction.mean(), fwd.direction.mean()) - 180.0).abs() < 1e-9);
        prop_assert_eq!(rev.offset, fwd.offset);
        prop_assert_eq!(rev.direction.std(), fwd.direction.std());
        prop_assert_eq!(db.pair_count(), 1);
    }

    #[test]
    fn builder_accepts_clean_edge_measurements(
        noise in prop::collection::vec((-5.0..5.0f64, -0.2..0.2f64), 3..20),
    ) {
        // Clean measurements of the 1 → 2 aisle (east, 2 m) plus small
        // noise must always produce exactly that pair.
        let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
        let graph = WalkGraph::from_grid(&grid, &plan);
        let map = MapReference::new(&grid, &graph);
        let mut builder = MotionDbBuilder::new(map, SanitationConfig::paper()).unwrap();
        for (dd, d_off) in &noise {
            let rlm = Rlm::new(
                LocationId::new(1),
                LocationId::new(2),
                90.0 + dd,
                (2.0 + d_off).max(0.0),
            ).unwrap();
            prop_assert!(builder.observe(rlm), "clean measurement rejected");
        }
        let (db, report) = builder.build();
        prop_assert_eq!(report.pairs_built, 1);
        let stats = db.get(LocationId::new(1), LocationId::new(2)).unwrap();
        prop_assert!(abs_diff_deg(stats.direction.mean(), 90.0) < 6.0);
        prop_assert!((stats.offset.mean() - 2.0).abs() < 0.3);
    }

    #[test]
    fn builder_rejects_marsian_offsets(extra in 5.0..50.0f64) {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
        let graph = WalkGraph::from_grid(&grid, &plan);
        let map = MapReference::new(&grid, &graph);
        let mut builder = MotionDbBuilder::new(map, SanitationConfig::paper()).unwrap();
        // Map offset for 1 → 2 is 2 m; anything more than 3 m away is
        // coarse-rejected.
        let rlm = Rlm::new(LocationId::new(1), LocationId::new(2), 90.0, 5.0 + extra).unwrap();
        prop_assert!(!builder.observe(rlm));
    }
}
