//! Regression tests for the degradation layer: non-finite RSS in
//! databases is rejected, non-finite RSS in queries is masked.

use moloc_fingerprint::db::{DbError, FingerprintDb};
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, SquaredEuclidean};
use moloc_fingerprint::metric::masked_euclidean_sq;
use moloc_fingerprint::nn_localizer::NnLocalizer;
use moloc_geometry::LocationId;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

fn db() -> FingerprintDb {
    FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-40.0, -70.0, -55.0])),
        (l(2), Fingerprint::new(vec![-55.0, -55.0, -40.0])),
        (l(3), Fingerprint::new(vec![-70.0, -40.0, -65.0])),
    ])
    .unwrap()
}

/// `Fingerprint` derives `Deserialize`, which bypasses the constructor's
/// finite assertion (`1e999` parses as +inf) — the database must catch
/// what slips through.
#[test]
fn deserialized_infinite_fingerprint_is_rejected() {
    let fp: Fingerprint = serde_json::from_str(r#"{"values":[-40.0,1e999]}"#).unwrap();
    assert!(fp.values()[1].is_infinite());
    let err = FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-40.0, -70.0])),
        (l(2), fp),
    ])
    .unwrap_err();
    assert_eq!(err, DbError::NonFinite(l(2)));
}

#[test]
fn from_samples_rejects_non_finite_mean() {
    // Averaging +inf and -inf survey samples produces a NaN mean; a
    // single infinite sample produces an infinite one. Both must
    // surface as `NonFinite`, never as a stored poisoned row.
    let pos: Fingerprint = serde_json::from_str(r#"{"values":[-44.0,1e999]}"#).unwrap();
    let neg: Fingerprint = serde_json::from_str(r#"{"values":[-44.0,-1e999]}"#).unwrap();
    let err = FingerprintDb::from_samples(vec![(l(1), vec![pos.clone(), neg])]).unwrap_err();
    assert_eq!(err, DbError::NonFinite(l(1)));
    let err = FingerprintDb::from_samples(vec![(
        l(1),
        vec![Fingerprint::new(vec![-40.0, -60.0]), pos],
    )])
    .unwrap_err();
    assert_eq!(err, DbError::NonFinite(l(1)));
}

#[test]
fn masked_metric_ignores_masked_dimensions() {
    let (sum, observed) = masked_euclidean_sq(&[f64::NAN, -50.0, -60.0], &[-40.0, -53.0, -60.0]);
    assert_eq!(observed, 2);
    assert_eq!(sum, 9.0);
    let (sum, observed) = masked_euclidean_sq(&[f64::NAN, f64::NAN], &[-40.0, -53.0]);
    assert_eq!(observed, 0);
    assert_eq!(sum, 0.0);
}

#[test]
fn nan_query_localizes_on_observed_aps() {
    let db = db();
    let index = FingerprintIndex::build(&db);
    // AP 0 missing; APs 1 and 2 point clearly at L2.
    let query = [f64::NAN, -56.0, -41.0];
    for localizer in [NnLocalizer::new(&db), NnLocalizer::with_index(&db, &index)] {
        assert_eq!(localizer.localize_slice(&query).unwrap(), l(2));
    }
    // The custom-metric (no-index) arm degrades the same way.
    let custom = NnLocalizer::with_metric(&db, moloc_fingerprint::metric::Manhattan);
    assert_eq!(custom.localize_slice(&query).unwrap(), l(2));
}

#[test]
fn all_nan_query_returns_lowest_id_without_panicking() {
    let db = db();
    let index = FingerprintIndex::build(&db);
    let query = [f64::NAN; 3];
    for localizer in [NnLocalizer::new(&db), NnLocalizer::with_index(&db, &index)] {
        assert_eq!(localizer.localize_slice(&query).unwrap(), l(1));
    }
}

#[test]
fn masked_knn_matches_clean_knn_on_finite_queries() {
    let db = db();
    let index = FingerprintIndex::build(&db);
    let query = [-54.0, -56.0, -42.0];
    let mut scratch = KnnScratch::new();
    let (mut clean, mut masked) = (Vec::new(), Vec::new());
    index.k_nearest_into::<SquaredEuclidean>(&query, 2, &mut scratch, &mut clean);
    let observed = index.k_nearest_masked_into(&query, 2, &mut scratch, &mut masked);
    // No masked dimension: identical neighbors, identical ranks.
    assert_eq!(observed, 3);
    assert_eq!(clean, masked);
}

#[test]
fn masked_knn_scales_rank_to_full_dimensionality() {
    let db = db();
    let index = FingerprintIndex::build(&db);
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    let observed =
        index.k_nearest_masked_into(&[f64::NAN, -56.0, -41.0], 3, &mut scratch, &mut out);
    assert_eq!(observed, 2);
    assert_eq!(out.len(), 3);
    assert_eq!(out[0].location, l(2));
    // Rank = sqrt(masked_sum * ap_count / observed): L2's masked sum is
    // (-56+55)^2 + (-41+40)^2 = 2, scaled by 3/2 -> sqrt(3).
    assert!((out[0].dissimilarity - 3.0f64.sqrt()).abs() < 1e-12);
    // Neighbors stay finite and sorted.
    for w in out.windows(2) {
        assert!(w[0].dissimilarity <= w[1].dissimilarity);
        assert!(w[1].dissimilarity.is_finite());
    }
}

#[test]
fn fully_masked_knn_returns_zero_ranks() {
    let db = db();
    let index = FingerprintIndex::build(&db);
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    let observed = index.k_nearest_masked_into(&[f64::NAN; 3], 2, &mut scratch, &mut out);
    assert_eq!(observed, 0);
    assert_eq!(out.len(), 2);
    // All-zero ranks: ties resolve to the lowest ids.
    assert_eq!(out[0].location, l(1));
    assert_eq!(out[1].location, l(2));
    assert!(out.iter().all(|n| n.dissimilarity == 0.0));
}
