//! Proof of the blocked-scan scratch-reuse contract: after one warm-up
//! pass fills the `QueryBlock`/`BlockScratch`/`BlockNeighbors` buffers,
//! repeating cache-blocked multi-query scans — masked queries and the
//! f32 mirror prefilter included — and single-query mirror scans must
//! not touch the heap at all. A counting global allocator wraps the
//! system allocator; this file holds exactly one test so no concurrent
//! test can perturb the counter.

use moloc_fingerprint::block::{BlockNeighbors, BlockScratch, QueryBlock};
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, SquaredEuclidean};
use moloc_geometry::LocationId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A 300-row, 6-AP survey: lane width in the unrolled 4..=8 range, all
/// values f32-safe, so both the blocked f64 kernel and the mirror
/// prefilter engage.
fn survey() -> FingerprintDb {
    let fps = (0..300u32)
        .map(|i| {
            let v = (0..6)
                .map(|a| -40.0 - f64::from((i * 7 + a * 13) % 23))
                .collect::<Vec<f64>>();
            (LocationId::new(i + 1), Fingerprint::new(v))
        })
        .collect::<Vec<_>>();
    FingerprintDb::from_fingerprints(fps).expect("valid db")
}

#[test]
fn warm_block_scans_allocate_nothing() {
    let index = FingerprintIndex::build(&survey());
    assert!(index.has_mirror(), "survey values must be f32-safe");
    // Nine clean queries plus one masked (NaN) query, so the warm loop
    // exercises the lane kernels, the mirror rescore, and the masked
    // per-query fallback inside one block.
    let queries: Vec<Vec<f64>> = (0..10u32)
        .map(|q| {
            (0..6)
                .map(|a| {
                    if q == 7 && a == 2 {
                        f64::NAN
                    } else {
                        -41.0 - f64::from((q * 11 + a * 5) % 19)
                    }
                })
                .collect()
        })
        .collect();
    let mut block = QueryBlock::new(6);
    let mut scratch = BlockScratch::new();
    let mut out = BlockNeighbors::new();
    let mut single = Vec::new();

    let run = |block: &mut QueryBlock,
               scratch: &mut BlockScratch,
               out: &mut BlockNeighbors,
               single: &mut Vec<_>| {
        block.reset(6);
        for q in &queries {
            block.push(q);
        }
        index.k_nearest_block_into::<SquaredEuclidean>(block, 8, scratch, out);
        index.k_nearest_mirror_into::<SquaredEuclidean>(&queries[0], 8, scratch, single);
    };

    // Warm-up: the first pass may grow every scratch buffer.
    run(&mut block, &mut scratch, &mut out, &mut single);
    let warm: Vec<_> = (0..out.query_count())
        .map(|q| out.query(q).to_vec())
        .collect();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        run(&mut block, &mut scratch, &mut out, &mut single);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "warm block scans must not allocate");
    let repeat: Vec<_> = (0..out.query_count())
        .map(|q| out.query(q).to_vec())
        .collect();
    assert_eq!(repeat, warm, "repeated scans must reproduce the results");
}
