//! Property-based tests for the fingerprinting engine.

use moloc_fingerprint::block::{BlockNeighbors, BlockScratch, QueryBlock};
use moloc_fingerprint::candidates::CandidateSet;
use moloc_fingerprint::db::FingerprintDb;
use moloc_fingerprint::fingerprint::Fingerprint;
use moloc_fingerprint::index::{FingerprintIndex, KnnScratch, SquaredEuclidean};
use moloc_fingerprint::knn::{k_nearest, Neighbor};
use moloc_fingerprint::metric::{Cosine, Dissimilarity, Euclidean, Manhattan};
use moloc_geometry::LocationId;
use proptest::prelude::*;

fn rss() -> impl Strategy<Value = f64> {
    -95.0..-20.0f64
}

fn fingerprint(n: usize) -> impl Strategy<Value = Fingerprint> {
    prop::collection::vec(rss(), n).prop_map(Fingerprint::new)
}

/// RSS on a coarse discrete grid, so distinct locations frequently
/// collide at the exact same dissimilarity and tie-breaking is
/// exercised for real.
fn coarse_rss() -> impl Strategy<Value = f64> {
    (-9..=-3i32).prop_map(|v| (v * 10) as f64)
}

fn coarse_fingerprint(n: usize) -> impl Strategy<Value = Fingerprint> {
    prop::collection::vec(coarse_rss(), n).prop_map(Fingerprint::new)
}

/// A coarse RSS reading that is sometimes NaN (a dropped sensor value),
/// so multi-query blocks mix masked and clean queries.
fn maybe_masked_rss() -> impl Strategy<Value = f64> {
    (0u8..9, coarse_rss()).prop_map(|(sel, v)| if sel == 0 { f64::NAN } else { v })
}

proptest! {
    #[test]
    fn metrics_are_symmetric_nonnegative_reflexive(
        a in fingerprint(4), b in fingerprint(4),
    ) {
        for metric in [&Euclidean as &dyn Dissimilarity, &Manhattan, &Cosine] {
            let ab = metric.dissimilarity(&a, &b);
            prop_assert!(ab >= 0.0, "{} negative", metric.name());
            prop_assert!((ab - metric.dissimilarity(&b, &a)).abs() < 1e-9);
            prop_assert!(metric.dissimilarity(&a, &a) < 1e-9);
        }
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in fingerprint(5), b in fingerprint(5), c in fingerprint(5),
    ) {
        let ab = Euclidean.dissimilarity(&a, &b);
        let bc = Euclidean.dissimilarity(&b, &c);
        let ac = Euclidean.dissimilarity(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn knn_results_are_sorted_and_contain_the_nearest(
        fps in prop::collection::vec(fingerprint(3), 2..15),
        query in fingerprint(3),
        k in 1usize..10,
    ) {
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let nn = k_nearest(&db, &query, k, &Euclidean);
        prop_assert_eq!(nn.len(), k.min(db.len()));
        for w in nn.windows(2) {
            prop_assert!(w[0].dissimilarity <= w[1].dissimilarity + 1e-12);
        }
        // The top result really is the global minimum.
        let best = fps
            .iter()
            .map(|f| Euclidean.dissimilarity(&query, f))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((nn[0].dissimilarity - best).abs() < 1e-12);
    }

    #[test]
    fn knn_heap_selection_matches_full_sort_baseline(
        fps in prop::collection::vec(fingerprint(3), 2..20),
        query in fingerprint(3),
        k in 1usize..12,
    ) {
        // The bounded-heap selection must return byte-identical results
        // to the straightforward sort-then-truncate it replaced,
        // including the (dissimilarity, location-id) tie order.
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let fast = k_nearest(&db, &query, k, &Euclidean);
        let mut baseline: Vec<Neighbor> = db
            .iter()
            .map(|(location, fp)| Neighbor {
                location,
                dissimilarity: Euclidean.dissimilarity(&query, fp),
            })
            .collect();
        baseline.sort_by(|a, b| {
            a.dissimilarity
                .partial_cmp(&b.dissimilarity)
                .unwrap()
                .then_with(|| a.location.cmp(&b.location))
        });
        baseline.truncate(k);
        prop_assert_eq!(fast, baseline);
    }

    #[test]
    fn knn_excluded_entries_are_never_nearer(
        fps in prop::collection::vec(fingerprint(3), 3..15),
        query in fingerprint(3),
    ) {
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let k = 2;
        let nn = k_nearest(&db, &query, k, &Euclidean);
        let worst_kept = nn.last().unwrap().dissimilarity;
        for (i, f) in fps.iter().enumerate() {
            let id = LocationId::from_index(i);
            if !nn.iter().any(|n| n.location == id) {
                prop_assert!(
                    Euclidean.dissimilarity(&query, f) + 1e-12 >= worst_kept,
                    "excluded entry nearer than kept one"
                );
            }
        }
    }

    #[test]
    fn candidate_probabilities_normalize_and_order_by_dissimilarity(
        ms in prop::collection::vec(0.001..100.0f64, 1..10),
    ) {
        let neighbors: Vec<Neighbor> = ms
            .iter()
            .enumerate()
            .map(|(i, &m)| Neighbor {
                location: LocationId::from_index(i),
                dissimilarity: m,
            })
            .collect();
        let set = CandidateSet::from_neighbors(&neighbors).unwrap();
        prop_assert!((set.total_probability() - 1.0).abs() < 1e-9);
        // Smaller dissimilarity ⇒ larger probability (Eq. 4).
        for i in 0..ms.len() {
            for j in 0..ms.len() {
                if ms[i] < ms[j] {
                    prop_assert!(
                        set.probability_of(LocationId::from_index(i))
                            >= set.probability_of(LocationId::from_index(j)) - 1e-12
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_weights_are_scale_invariant(
        ws in prop::collection::vec(0.01..10.0f64, 1..8),
        scale in 0.1..100.0f64,
    ) {
        let base: Vec<(LocationId, f64)> = ws
            .iter()
            .enumerate()
            .map(|(i, &w)| (LocationId::from_index(i), w))
            .collect();
        let scaled: Vec<(LocationId, f64)> =
            base.iter().map(|&(id, w)| (id, w * scale)).collect();
        let a = CandidateSet::from_weights(base).unwrap();
        let b = CandidateSet::from_weights(scaled).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.0, y.0);
            prop_assert!((x.1 - y.1).abs() < 1e-9);
        }
    }

    #[test]
    fn index_knn_is_bit_identical_to_heap_path(
        fps in prop::collection::vec(fingerprint(3), 2..25),
        query in fingerprint(3),
        k in 1usize..12,
    ) {
        // The columnar squared-distance scan must reproduce the legacy
        // `Euclidean` heap selection exactly: same locations, same
        // order, bitwise-equal dissimilarities.
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let index = FingerprintIndex::build(&db);
        let legacy = k_nearest(&db, &query, k, &Euclidean);
        let mut scratch = KnnScratch::with_k(k);
        let mut fast = Vec::new();
        index.k_nearest_into::<SquaredEuclidean>(query.values(), k, &mut scratch, &mut fast);
        prop_assert_eq!(fast.len(), legacy.len());
        for (a, b) in fast.iter().zip(&legacy) {
            prop_assert_eq!(a.location, b.location);
            prop_assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
    }

    #[test]
    fn index_knn_tie_order_matches_on_coarse_grids(
        fps in prop::collection::vec(coarse_fingerprint(2), 2..40),
        query in coarse_fingerprint(2),
        k in 1usize..12,
    ) {
        // Coarse RSS grids make exact dissimilarity ties common, so
        // this run hammers the (rank, location-id) tie-break of the
        // squared-distance ranking against the legacy sqrt ranking.
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let index = FingerprintIndex::build(&db);
        let legacy = k_nearest(&db, &query, k, &Euclidean);
        let mut scratch = KnnScratch::with_k(k);
        let mut fast = Vec::new();
        index.k_nearest_into::<SquaredEuclidean>(query.values(), k, &mut scratch, &mut fast);
        let fast_pairs: Vec<(LocationId, u64)> =
            fast.iter().map(|n| (n.location, n.dissimilarity.to_bits())).collect();
        let legacy_pairs: Vec<(LocationId, u64)> =
            legacy.iter().map(|n| (n.location, n.dissimilarity.to_bits())).collect();
        prop_assert_eq!(fast_pairs, legacy_pairs);
        // And the single-nearest scan agrees with k = 1.
        prop_assert_eq!(index.nearest(query.values()), legacy[0].location);
    }

    #[test]
    fn sharded_knn_matches_serial_scan_at_any_shard_size(
        fps in prop::collection::vec(coarse_fingerprint(2), 2..48),
        query in coarse_fingerprint(2),
        k in 1usize..12,
        shard_rows in 1usize..20,
    ) {
        // The per-shard top-k + merge path must reproduce the serial
        // scan exactly — locations, order, bitwise dissimilarities —
        // for every shard size, including shards smaller than k and a
        // final partial shard. Coarse RSS grids make cross-shard rank
        // ties common, so the (rank, global position) merge order is
        // exercised for real.
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let index = FingerprintIndex::build(&db);
        let mut scratch = KnnScratch::with_k(k);
        let mut serial = Vec::new();
        index.k_nearest_into::<SquaredEuclidean>(query.values(), k, &mut scratch, &mut serial);
        let sharded = moloc_fingerprint::knn::k_nearest_sharded::<SquaredEuclidean>(
            &index, query.values(), k, shard_rows,
        );
        prop_assert_eq!(sharded.len(), serial.len());
        for (a, b) in sharded.iter().zip(&serial) {
            prop_assert_eq!(a.location, b.location);
            prop_assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
    }

    #[test]
    fn block_knn_matches_per_query_scans_including_masked(
        fps in prop::collection::vec(coarse_fingerprint(6), 2..60),
        queries in prop::collection::vec(
            prop::collection::vec(maybe_masked_rss(), 6), 1..12,
        ),
        k in 1usize..12,
    ) {
        // The cache-blocked multi-query scan (f32 mirror prefilter
        // included — coarse grids keep every value f32-safe) must
        // reproduce the per-query scans exactly, masked queries
        // routed through the masked path with the same observed
        // count. Coarse grids make both cross-query and cross-row
        // rank ties common, so (rank, position) tie order is
        // exercised for real.
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let index = FingerprintIndex::build(&db);
        let mut block = QueryBlock::new(6);
        for q in &queries {
            block.push(q);
        }
        let mut scratch = BlockScratch::new();
        let mut out = BlockNeighbors::new();
        index.k_nearest_block_into::<SquaredEuclidean>(&mut block, k, &mut scratch, &mut out);
        prop_assert_eq!(out.query_count(), queries.len());
        let mut knn = KnnScratch::with_k(k);
        let mut serial = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let observed = if q.iter().all(|v| v.is_finite()) {
                index.k_nearest_into::<SquaredEuclidean>(q, k, &mut knn, &mut serial);
                index.ap_count()
            } else {
                index.k_nearest_masked_into(q, k, &mut knn, &mut serial)
            };
            prop_assert_eq!(out.observed(qi), observed, "query {} observed", qi);
            let blocked = out.query(qi);
            prop_assert_eq!(blocked.len(), serial.len(), "query {} len", qi);
            for (a, b) in blocked.iter().zip(&serial) {
                prop_assert_eq!(a.location, b.location);
                prop_assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
            }
        }
    }

    #[test]
    fn mirror_prefilter_rescore_is_bit_identical_to_serial_scan(
        fps in prop::collection::vec(fingerprint(6), 2..80),
        query in fingerprint(6),
        k in 1usize..12,
    ) {
        // The f32 quantized mirror is a *prefilter*: its survivors are
        // exactly rescored in f64, so the top-k indices, values, and
        // tie order must be bitwise equal to the plain f64 scan for
        // arbitrary surveys.
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let index = FingerprintIndex::build(&db);
        prop_assert!(index.has_mirror());
        let mut scratch = BlockScratch::new();
        let mut knn = KnnScratch::with_k(k);
        let (mut fast, mut serial) = (Vec::new(), Vec::new());
        index.k_nearest_mirror_into::<SquaredEuclidean>(query.values(), k, &mut scratch, &mut fast);
        index.k_nearest_into::<SquaredEuclidean>(query.values(), k, &mut knn, &mut serial);
        prop_assert_eq!(fast.len(), serial.len());
        for (a, b) in fast.iter().zip(&serial) {
            prop_assert_eq!(a.location, b.location);
            prop_assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
    }

    #[test]
    fn db_ap_subsets_preserve_locations(
        fps in prop::collection::vec(fingerprint(4), 2..10),
        n in 1usize..4,
    ) {
        let entries: Vec<(LocationId, Fingerprint)> = fps
            .iter()
            .enumerate()
            .map(|(i, f)| (LocationId::from_index(i), f.clone()))
            .collect();
        let db = FingerprintDb::from_fingerprints(entries).unwrap();
        let sub = db.with_first_aps(n);
        prop_assert_eq!(sub.len(), db.len());
        prop_assert_eq!(sub.ap_count(), n);
        for (id, fp) in sub.iter() {
            prop_assert_eq!(fp.values(), &db.fingerprint(id).unwrap().values()[..n]);
        }
    }
}
