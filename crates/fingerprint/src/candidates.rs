//! Candidate sets with probabilities.
//!
//! Converts k-NN matches into the probability assignment of the paper's
//! Eq. 4: `P(x = lᵢ | F) = (1/mᵢ) / Σⱼ (1/mⱼ)`. An exact fingerprint
//! match (`mᵢ = 0`) receives all the mass, split among exact matches if
//! several tie.

use crate::knn::Neighbor;
use moloc_geometry::LocationId;
use serde::{Deserialize, Serialize};

/// A candidate location with its probability of being the true
/// location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The location.
    pub location: LocationId,
    /// Probability mass assigned to it (candidates in a set sum to 1).
    pub probability: f64,
}

/// A normalized set of location candidates.
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::candidates::CandidateSet;
/// use moloc_fingerprint::knn::Neighbor;
/// use moloc_geometry::LocationId;
///
/// let set = CandidateSet::from_neighbors(&[
///     Neighbor { location: LocationId::new(1), dissimilarity: 1.0 },
///     Neighbor { location: LocationId::new(2), dissimilarity: 3.0 },
/// ]).unwrap();
/// assert_eq!(set.top().location, LocationId::new(1));
/// assert!((set.total_probability() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSet {
    candidates: Vec<Candidate>,
}

/// Error constructing an empty [`CandidateSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyCandidatesError;

impl std::fmt::Display for EmptyCandidatesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "candidate set cannot be empty")
    }
}

impl std::error::Error for EmptyCandidatesError {}

impl CandidateSet {
    /// Builds a candidate set from k-NN matches with Eq. 4 weights.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyCandidatesError`] for an empty slice.
    pub fn from_neighbors(neighbors: &[Neighbor]) -> Result<Self, EmptyCandidatesError> {
        if neighbors.is_empty() {
            return Err(EmptyCandidatesError);
        }
        let exact: Vec<&Neighbor> = neighbors
            .iter()
            .filter(|n| n.dissimilarity <= f64::EPSILON)
            .collect();
        let candidates = if !exact.is_empty() {
            // Exact matches absorb all probability (1/0 dominates).
            let p = 1.0 / exact.len() as f64;
            neighbors
                .iter()
                .map(|n| Candidate {
                    location: n.location,
                    probability: if n.dissimilarity <= f64::EPSILON {
                        p
                    } else {
                        0.0
                    },
                })
                .collect()
        } else {
            let total: f64 = neighbors.iter().map(|n| 1.0 / n.dissimilarity).sum();
            neighbors
                .iter()
                .map(|n| Candidate {
                    location: n.location,
                    probability: (1.0 / n.dissimilarity) / total,
                })
                .collect()
        };
        Ok(Self { candidates })
    }

    /// Builds a set from explicit `(location, weight)` pairs,
    /// normalizing the weights.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyCandidatesError`] when empty or when all weights
    /// are zero (no distribution can be formed).
    pub fn from_weights(weights: Vec<(LocationId, f64)>) -> Result<Self, EmptyCandidatesError> {
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        if weights.is_empty() || total <= 0.0 || !total.is_finite() {
            return Err(EmptyCandidatesError);
        }
        Ok(Self {
            candidates: weights
                .into_iter()
                .map(|(location, w)| Candidate {
                    location,
                    probability: w / total,
                })
                .collect(),
        })
    }

    /// The candidates, unsorted (insertion order).
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the set is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The most probable candidate (ties broken by lower id). NaN
    /// probabilities — a NaN dissimilarity propagated through the
    /// Eq. 4 normalization — rank below every real probability and
    /// among themselves fall back to the id tie-break, so a poisoned
    /// set yields a deterministic pick instead of panicking the old
    /// `partial_cmp(...).expect(...)` comparator.
    pub fn top(&self) -> Candidate {
        *self
            .candidates
            .iter()
            .max_by(|a, b| {
                cmp_nan_lowest(a.probability, b.probability)
                    .then_with(|| b.location.cmp(&a.location))
            })
            .expect("candidate set is non-empty")
    }

    /// The probability of a specific location (0 if absent).
    pub fn probability_of(&self, id: LocationId) -> f64 {
        self.candidates
            .iter()
            .find(|c| c.location == id)
            .map_or(0.0, |c| c.probability)
    }

    /// Sum of all probabilities (≈ 1; exposed for invariant tests).
    pub fn total_probability(&self) -> f64 {
        self.candidates.iter().map(|c| c.probability).sum()
    }

    /// Iterates over `(location, probability)`.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, f64)> + '_ {
        self.candidates.iter().map(|c| (c.location, c.probability))
    }
}

/// Total order on probabilities with NaN ranked below every real value
/// (same NaN-safety family as the PR 4 `Ecdf` fix).
fn cmp_nan_lowest(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn n(i: u32, d: f64) -> Neighbor {
        Neighbor {
            location: l(i),
            dissimilarity: d,
        }
    }

    #[test]
    fn eq4_weighting() {
        // m = [1, 2] → weights [1, 0.5] → probs [2/3, 1/3].
        let set = CandidateSet::from_neighbors(&[n(1, 1.0), n(2, 2.0)]).unwrap();
        assert!((set.probability_of(l(1)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((set.probability_of(l(2)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((set.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_match_takes_all_mass() {
        let set = CandidateSet::from_neighbors(&[n(1, 0.0), n(2, 2.0)]).unwrap();
        assert_eq!(set.probability_of(l(1)), 1.0);
        assert_eq!(set.probability_of(l(2)), 0.0);
    }

    #[test]
    fn tied_exact_matches_split_mass() {
        let set = CandidateSet::from_neighbors(&[n(1, 0.0), n(2, 0.0), n(3, 1.0)]).unwrap();
        assert_eq!(set.probability_of(l(1)), 0.5);
        assert_eq!(set.probability_of(l(2)), 0.5);
        assert_eq!(set.probability_of(l(3)), 0.0);
    }

    #[test]
    fn top_prefers_highest_probability_then_lower_id() {
        let set = CandidateSet::from_weights(vec![(l(3), 1.0), (l(1), 1.0), (l(2), 0.5)]).unwrap();
        assert_eq!(set.top().location, l(1));
    }

    #[test]
    fn from_weights_normalizes() {
        let set = CandidateSet::from_weights(vec![(l(1), 2.0), (l(2), 6.0)]).unwrap();
        assert!((set.probability_of(l(2)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_degenerate() {
        assert!(CandidateSet::from_weights(vec![]).is_err());
        assert!(CandidateSet::from_weights(vec![(l(1), 0.0)]).is_err());
    }

    #[test]
    fn empty_neighbors_rejected() {
        assert!(CandidateSet::from_neighbors(&[]).is_err());
    }

    #[test]
    fn probability_of_absent_location_is_zero() {
        let set = CandidateSet::from_neighbors(&[n(1, 1.0)]).unwrap();
        assert_eq!(set.probability_of(l(9)), 0.0);
    }

    #[test]
    fn top_survives_nan_probabilities() {
        // One NaN dissimilarity poisons the Eq. 4 normalizer, so every
        // probability comes out NaN — `top()` must fall back to the id
        // tie-break instead of panicking like the old
        // `partial_cmp(...).expect(...)` comparator.
        let set = CandidateSet::from_neighbors(&[n(3, f64::NAN), n(1, 1.0), n(2, 2.0)]).unwrap();
        assert!(set.candidates().iter().all(|c| c.probability.is_nan()));
        assert_eq!(set.top().location, l(1));
    }

    #[test]
    fn nan_probability_never_beats_a_real_one() {
        // Mixed sets (assembled directly, e.g. deserialized) must rank
        // NaN below every real probability.
        let set = CandidateSet {
            candidates: vec![
                Candidate {
                    location: l(1),
                    probability: f64::NAN,
                },
                Candidate {
                    location: l(2),
                    probability: 0.25,
                },
            ],
        };
        assert_eq!(set.top().location, l(2));
    }
}
