//! The RSS fingerprint vector.

use serde::{Deserialize, Serialize};

/// An RSS fingerprint `F = (f₁, …, fₙ)`: one dBm value per access
/// point, in a fixed AP order shared across the deployment.
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::fingerprint::Fingerprint;
///
/// let f = Fingerprint::new(vec![-40.0, -55.0, -70.0]);
/// assert_eq!(f.len(), 3);
/// assert_eq!(f.values()[1], -55.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    values: Vec<f64>,
}

impl Fingerprint {
    /// Creates a fingerprint from per-AP RSS values in dBm.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "fingerprint values must be finite"
        );
        Self { values }
    }

    /// The per-AP values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of APs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the fingerprint has no APs.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The mean of several same-length fingerprints — how a site survey
    /// condenses its samples into the stored fingerprint.
    ///
    /// Returns `None` for an empty input.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mean<'a, I: IntoIterator<Item = &'a Fingerprint>>(
        fingerprints: I,
    ) -> Option<Fingerprint> {
        let mut iter = fingerprints.into_iter();
        let first = iter.next()?;
        let mut sum: Vec<f64> = first.values.clone();
        let mut count = 1usize;
        for fp in iter {
            assert_eq!(fp.len(), sum.len(), "fingerprint lengths differ");
            for (s, v) in sum.iter_mut().zip(&fp.values) {
                *s += v;
            }
            count += 1;
        }
        for s in &mut sum {
            *s /= count as f64;
        }
        Some(Fingerprint::new(sum))
    }

    /// Restricts to the first `n` APs (the paper's 4/5-AP settings).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the AP count or is zero.
    pub fn truncated(&self, n: usize) -> Fingerprint {
        assert!(n > 0 && n <= self.values.len(), "invalid truncation");
        Fingerprint::new(self.values[..n].to_vec())
    }
}

impl From<Vec<f64>> for Fingerprint {
    fn from(values: Vec<f64>) -> Self {
        Fingerprint::new(values)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.1}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_samples() {
        let a = Fingerprint::new(vec![-40.0, -60.0]);
        let b = Fingerprint::new(vec![-50.0, -70.0]);
        let m = Fingerprint::mean([&a, &b]).unwrap();
        assert_eq!(m.values(), &[-45.0, -65.0]);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(Fingerprint::mean(std::iter::empty()), None);
    }

    #[test]
    fn mean_of_single_is_identity() {
        let a = Fingerprint::new(vec![-40.0]);
        assert_eq!(Fingerprint::mean([&a]).unwrap(), a);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mean_rejects_mismatched_lengths() {
        let a = Fingerprint::new(vec![-40.0, -60.0]);
        let b = Fingerprint::new(vec![-50.0]);
        let _ = Fingerprint::mean([&a, &b]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let f = Fingerprint::new(vec![-40.0, -50.0, -60.0]);
        assert_eq!(f.truncated(2).values(), &[-40.0, -50.0]);
    }

    #[test]
    #[should_panic(expected = "invalid truncation")]
    fn truncated_rejects_oversize() {
        let _ = Fingerprint::new(vec![-40.0]).truncated(2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        let _ = Fingerprint::new(vec![-40.0, f64::NAN]);
    }

    #[test]
    fn display_is_compact() {
        let f = Fingerprint::new(vec![-40.25, -50.0]);
        assert_eq!(f.to_string(), "[-40.2, -50.0]");
    }
}
