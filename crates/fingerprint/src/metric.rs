//! Fingerprint dissimilarity metrics.
//!
//! The paper measures dissimilarity with the Euclidean distance of
//! Eq. 1; Manhattan and cosine variants are provided for sensitivity
//! studies (the MoLoc algorithm is metric-agnostic).

use crate::fingerprint::Fingerprint;

/// A dissimilarity between two fingerprints: non-negative, zero for
/// identical inputs.
pub trait Dissimilarity: std::fmt::Debug + Send + Sync {
    /// The dissimilarity `φ(F, F′)`.
    ///
    /// # Panics
    ///
    /// Implementations panic when the fingerprints have different
    /// lengths.
    fn dissimilarity(&self, a: &Fingerprint, b: &Fingerprint) -> f64;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn check_lengths(a: &Fingerprint, b: &Fingerprint) {
    assert_eq!(
        a.len(),
        b.len(),
        "cannot compare fingerprints of different lengths"
    );
}

/// The squared Euclidean dissimilarity `Σ (aᵢ − bᵢ)²` over raw slices.
///
/// This is the shared scalar kernel behind both [`Euclidean`] and the
/// columnar index's monomorphized scan (`crate::index`): computing the
/// sum in slice order and deferring the square root keeps the two paths
/// bit-identical (`sqrt` is applied to the same accumulated value).
#[inline]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>()
}

/// [`euclidean_sq`] on f32 values — the kernel of the quantized index
/// mirror's prefilter pass (`crate::index`). Unlike the f64 kernel its
/// exact accumulation order carries no bit-identity contract: mirror
/// ranks only *order* a conservative prefilter whose survivors are
/// rescored with the exact f64 kernel, so any faithful f32 sum works.
#[inline]
pub fn euclidean_sq_f32(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
}

/// The squared Euclidean dissimilarity over the *observed* dimensions
/// only: APs where either side is non-finite (NaN marks a missing or
/// dropped reading) are excluded from the sum instead of poisoning it.
///
/// Returns `(partial sum, observed dimension count)`. Callers that
/// need comparability across queries with different missing sets scale
/// the sum by `len / observed` (see
/// [`crate::index::FingerprintIndex::k_nearest_masked_into`]); with no
/// missing values the sum equals [`euclidean_sq`] except for summation
/// order, so the clean hot path keeps its own bit-exact kernel and
/// only branches here when a query actually contains non-finite RSS.
#[inline]
pub fn masked_euclidean_sq(a: &[f64], b: &[f64]) -> (f64, usize) {
    let mut sum = 0.0;
    let mut observed = 0usize;
    for (x, y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            sum += (x - y).powi(2);
            observed += 1;
        }
    }
    (sum, observed)
}

/// The Manhattan dissimilarity `Σ |aᵢ − bᵢ|` over raw slices.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// The cosine dissimilarity `1 − cos(a, b)` over raw (negated-dBm)
/// slices. Two zero vectors are identical → 0; a zero vector against a
/// non-zero one is maximally dissimilar → 1.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        let (x, y) = (-x, -y);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 && nb == 0.0 {
        return 0.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
}

/// Euclidean dissimilarity — the paper's Eq. 1:
/// `φ²(F, F′) = Σ (fᵢ − f′ᵢ)²`.
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::fingerprint::Fingerprint;
/// use moloc_fingerprint::metric::{Dissimilarity, Euclidean};
///
/// let a = Fingerprint::new(vec![-40.0, -60.0]);
/// let b = Fingerprint::new(vec![-43.0, -56.0]);
/// assert_eq!(Euclidean.dissimilarity(&a, &b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Euclidean;

impl Dissimilarity for Euclidean {
    fn dissimilarity(&self, a: &Fingerprint, b: &Fingerprint) -> f64 {
        check_lengths(a, b);
        euclidean_sq(a.values(), b.values()).sqrt()
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Manhattan (L1) dissimilarity: `Σ |fᵢ − f′ᵢ|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Manhattan;

impl Dissimilarity for Manhattan {
    fn dissimilarity(&self, a: &Fingerprint, b: &Fingerprint) -> f64 {
        check_lengths(a, b);
        manhattan(a.values(), b.values())
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

/// Cosine dissimilarity: `1 − cos(F, F′)` on the (negated-dBm) vectors.
///
/// RSS values are negative dBm; the metric negates them first so that
/// "stronger everywhere" vectors point in a consistent direction.
/// Two all-zero vectors are identical and score 0; a zero vector
/// against a non-zero one scores 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cosine;

impl Dissimilarity for Cosine {
    fn dissimilarity(&self, a: &Fingerprint, b: &Fingerprint) -> f64 {
        check_lengths(a, b);
        cosine(a.values(), b.values())
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    #[test]
    fn euclidean_matches_eq1() {
        let a = fp(&[-40.0, -60.0, -70.0]);
        let b = fp(&[-44.0, -57.0, -70.0]);
        // sqrt(16 + 9 + 0) = 5
        assert_eq!(Euclidean.dissimilarity(&a, &b), 5.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        let a = fp(&[-40.0, -60.0]);
        for metric in [&Euclidean as &dyn Dissimilarity, &Manhattan, &Cosine] {
            assert!(metric.dissimilarity(&a, &a) < 1e-12, "{}", metric.name());
        }
    }

    #[test]
    fn symmetry() {
        let a = fp(&[-40.0, -60.0, -55.0]);
        let b = fp(&[-50.0, -45.0, -80.0]);
        for metric in [&Euclidean as &dyn Dissimilarity, &Manhattan, &Cosine] {
            let ab = metric.dissimilarity(&a, &b);
            let ba = metric.dissimilarity(&b, &a);
            assert!((ab - ba).abs() < 1e-12, "{}", metric.name());
            assert!(ab >= 0.0);
        }
    }

    #[test]
    fn manhattan_value() {
        let a = fp(&[-40.0, -60.0]);
        let b = fp(&[-42.0, -55.0]);
        assert_eq!(Manhattan.dissimilarity(&a, &b), 7.0);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_zero() {
        let a = fp(&[-20.0, -40.0]);
        let b = fp(&[-40.0, -80.0]);
        assert!(Cosine.dissimilarity(&a, &b) < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_one() {
        let a = fp(&[0.0, 0.0]);
        let b = fp(&[-40.0, -80.0]);
        assert_eq!(Cosine.dissimilarity(&a, &b), 1.0);
    }

    #[test]
    fn cosine_of_two_zero_vectors_is_zero() {
        // Identical inputs must score zero even when both are all-zero;
        // the old implementation returned 1.0 here, breaking the
        // trait's identity-of-indiscernibles contract.
        let a = fp(&[0.0, 0.0, 0.0]);
        assert_eq!(Cosine.dissimilarity(&a, &a), 0.0);
        assert_eq!(Cosine.dissimilarity(&a, &fp(&[0.0, 0.0, 0.0])), 0.0);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn mismatched_lengths_panic() {
        let _ = Euclidean.dissimilarity(&fp(&[-40.0]), &fp(&[-40.0, -50.0]));
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(Euclidean.name(), Manhattan.name());
        assert_ne!(Manhattan.name(), Cosine.name());
    }
}
