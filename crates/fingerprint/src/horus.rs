//! A Horus-style probabilistic localizer (extension baseline).
//!
//! Horus (Youssef & Agrawala, MobiSys '05) models each location's RSS
//! per AP as a Gaussian fitted to the survey samples and picks the
//! maximum-likelihood location. The MoLoc paper cites it as prior work;
//! the reproduction includes it so the benchmark suite can show where a
//! stronger fingerprint-only baseline still suffers from ambiguity.

use crate::fingerprint::Fingerprint;
use moloc_geometry::LocationId;
use moloc_stats::gaussian::Gaussian;
use moloc_stats::online::Welford;

/// Per-location, per-AP Gaussian RSS model.
#[derive(Debug, Clone)]
pub struct HorusLocalizer {
    entries: Vec<(LocationId, Vec<Gaussian>)>,
    ap_count: usize,
    /// Std floor to avoid degenerate zero-variance Gaussians when a
    /// location's samples happen to agree exactly.
    min_std_db: f64,
}

/// Error building or querying a [`HorusLocalizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HorusError {
    /// No training locations.
    Empty,
    /// A location had no samples.
    NoSamples(LocationId),
    /// Sample or query fingerprint length mismatch.
    LengthMismatch,
}

impl std::fmt::Display for HorusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HorusError::Empty => write!(f, "no training locations"),
            HorusError::NoSamples(id) => write!(f, "no training samples for {id}"),
            HorusError::LengthMismatch => write!(f, "fingerprint length mismatch"),
        }
    }
}

impl std::error::Error for HorusError {}

impl HorusLocalizer {
    /// Trains the model from per-location sample sets.
    ///
    /// # Errors
    ///
    /// Returns [`HorusError`] for empty input, sample-less locations, or
    /// mismatched sample lengths.
    pub fn train<I, S>(samples: I) -> Result<Self, HorusError>
    where
        I: IntoIterator<Item = (LocationId, S)>,
        S: IntoIterator<Item = Fingerprint>,
    {
        let min_std_db = 0.5;
        let mut entries = Vec::new();
        let mut ap_count = None;
        for (id, set) in samples {
            let set: Vec<Fingerprint> = set.into_iter().collect();
            let Some(first) = set.first() else {
                return Err(HorusError::NoSamples(id));
            };
            let n = first.len();
            if *ap_count.get_or_insert(n) != n {
                return Err(HorusError::LengthMismatch);
            }
            let mut accs = vec![Welford::new(); n];
            for fp in &set {
                if fp.len() != n {
                    return Err(HorusError::LengthMismatch);
                }
                for (acc, &v) in accs.iter_mut().zip(fp.values()) {
                    acc.push(v);
                }
            }
            let gaussians = accs
                .iter()
                .map(|acc| {
                    Gaussian::new(acc.mean(), acc.std().max(min_std_db))
                        .expect("std floored above zero")
                })
                .collect();
            entries.push((id, gaussians));
        }
        if entries.is_empty() {
            return Err(HorusError::Empty);
        }
        entries.sort_by_key(|(id, _)| *id);
        Ok(Self {
            entries,
            ap_count: ap_count.expect("non-empty"),
            min_std_db,
        })
    }

    /// Number of APs per fingerprint.
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// The std floor applied during training, in dB.
    pub fn min_std_db(&self) -> f64 {
        self.min_std_db
    }

    /// Log-likelihood of a query at a trained location, `None` for
    /// unknown locations.
    pub fn log_likelihood(&self, id: LocationId, query: &Fingerprint) -> Option<f64> {
        let (_, gaussians) = self.entries.iter().find(|(i, _)| *i == id)?;
        if query.len() != self.ap_count {
            return None;
        }
        Some(
            gaussians
                .iter()
                .zip(query.values())
                .map(|(g, &v)| g.log_pdf(v))
                .sum(),
        )
    }

    /// The maximum-likelihood location for a query.
    ///
    /// # Errors
    ///
    /// Returns [`HorusError::LengthMismatch`] when the query length
    /// differs from the training data.
    pub fn localize(&self, query: &Fingerprint) -> Result<LocationId, HorusError> {
        if query.len() != self.ap_count {
            return Err(HorusError::LengthMismatch);
        }
        Ok(self
            .entries
            .iter()
            .map(|(id, gaussians)| {
                let ll: f64 = gaussians
                    .iter()
                    .zip(query.values())
                    .map(|(g, &v)| g.log_pdf(v))
                    .sum();
                (*id, ll)
            })
            .max_by(|a, b| cmp_nan_lowest(a.1, b.1).then_with(|| b.0.cmp(&a.0)))
            .expect("trained model is non-empty")
            .0)
    }
}

/// Total order on scores with NaN ranked below every real value, so a
/// NaN log-likelihood (a NaN query reading propagated through
/// `log_pdf`) can never be *selected* — and never panics the argmax,
/// as the old `partial_cmp(...).expect(...)` comparator did. Same
/// NaN-safety family as the PR 4 `Ecdf` fix.
fn cmp_nan_lowest(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    fn trained() -> HorusLocalizer {
        HorusLocalizer::train(vec![
            (
                l(1),
                vec![
                    fp(&[-40.0, -70.0]),
                    fp(&[-42.0, -68.0]),
                    fp(&[-38.0, -72.0]),
                ],
            ),
            (
                l(2),
                vec![
                    fp(&[-70.0, -40.0]),
                    fp(&[-68.0, -42.0]),
                    fp(&[-72.0, -38.0]),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn localizes_to_likelier_location() {
        let m = trained();
        assert_eq!(m.localize(&fp(&[-41.0, -69.0])).unwrap(), l(1));
        assert_eq!(m.localize(&fp(&[-69.0, -41.0])).unwrap(), l(2));
    }

    #[test]
    fn log_likelihood_is_higher_at_true_location() {
        let m = trained();
        let q = fp(&[-40.0, -70.0]);
        let ll1 = m.log_likelihood(l(1), &q).unwrap();
        let ll2 = m.log_likelihood(l(2), &q).unwrap();
        assert!(ll1 > ll2);
        assert_eq!(m.log_likelihood(l(9), &q), None);
    }

    #[test]
    fn variance_floor_prevents_degenerate_models() {
        // All samples identical → std would be 0 without the floor.
        let m = HorusLocalizer::train(vec![(l(1), vec![fp(&[-50.0]), fp(&[-50.0])])]).unwrap();
        let ll = m.log_likelihood(l(1), &fp(&[-50.0])).unwrap();
        assert!(ll.is_finite());
        assert_eq!(m.min_std_db(), 0.5);
    }

    #[test]
    fn nan_scores_rank_below_every_real_score() {
        use std::cmp::Ordering;
        // The argmax comparator: NaN loses to any real value (so a
        // poisoned log-likelihood can never be *selected*), NaNs tie
        // among themselves (the id tie-break decides), and real values
        // follow the IEEE total order.
        assert_eq!(cmp_nan_lowest(f64::NAN, -1e9), Ordering::Less);
        assert_eq!(cmp_nan_lowest(-1e9, f64::NAN), Ordering::Greater);
        assert_eq!(cmp_nan_lowest(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(cmp_nan_lowest(-2.0, -1.0), Ordering::Less);
        assert_eq!(cmp_nan_lowest(3.0, 3.0), Ordering::Equal);
        // A maximal selection over mixed scores picks the real one.
        let best = [(l(1), f64::NAN), (l(2), -5.0)]
            .into_iter()
            .max_by(|a, b| cmp_nan_lowest(a.1, b.1).then_with(|| b.0.cmp(&a.0)))
            .unwrap();
        assert_eq!(best.0, l(2));
    }

    #[test]
    fn train_rejects_bad_input() {
        assert_eq!(
            HorusLocalizer::train(Vec::<(LocationId, Vec<Fingerprint>)>::new()).unwrap_err(),
            HorusError::Empty
        );
        assert_eq!(
            HorusLocalizer::train(vec![(l(1), Vec::<Fingerprint>::new())]).unwrap_err(),
            HorusError::NoSamples(l(1))
        );
        assert_eq!(
            HorusLocalizer::train(vec![
                (l(1), vec![fp(&[-40.0])]),
                (l(2), vec![fp(&[-40.0, -50.0])]),
            ])
            .unwrap_err(),
            HorusError::LengthMismatch
        );
    }

    #[test]
    fn localize_rejects_wrong_length() {
        let m = trained();
        assert_eq!(
            m.localize(&fp(&[-40.0])).unwrap_err(),
            HorusError::LengthMismatch
        );
    }
}
