#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! RSS fingerprinting engine for the MoLoc reproduction.
//!
//! This crate implements the classic fingerprinting half of MoLoc:
//!
//! * [`fingerprint`] — the [`fingerprint::Fingerprint`] RSS vector.
//! * [`metric`] — dissimilarity functions, including the paper's
//!   Euclidean metric (Eq. 1) plus Manhattan/cosine alternatives.
//! * [`db`] — the fingerprint database mapping reference locations to
//!   surveyed fingerprints.
//! * [`index`] — the columnar [`index::FingerprintIndex`]: a flattened
//!   structure-of-arrays view of the database with monomorphized metric
//!   kernels for allocation-free squared-distance k-NN scans.
//! * [`block`] — multi-query [`block::QueryBlock`] batches for the
//!   cache-blocked Q×L scan kernels and the f32 quantized index mirror
//!   (bit-identical to per-query scans; see DESIGN.md §15).
//! * [`knn`] — k-nearest-neighbor retrieval (Eq. 3).
//! * [`candidates`] — candidate sets with inverse-dissimilarity
//!   probabilities (Eq. 4).
//! * [`nn_localizer`] — the plain WiFi fingerprinting baseline the paper
//!   compares against (Eq. 2).
//! * [`centroid`] — the weighted-centroid k-NN refinement (continuous
//!   position estimates).
//! * [`horus`] — a Horus-style probabilistic baseline (extension: each
//!   location modeled as per-AP Gaussians, maximum-likelihood decision).
//!
//! # Examples
//!
//! ```
//! use moloc_fingerprint::db::FingerprintDb;
//! use moloc_fingerprint::fingerprint::Fingerprint;
//! use moloc_fingerprint::nn_localizer::NnLocalizer;
//! use moloc_geometry::LocationId;
//!
//! let db = FingerprintDb::from_fingerprints(vec![
//!     (LocationId::new(1), Fingerprint::new(vec![-40.0, -70.0])),
//!     (LocationId::new(2), Fingerprint::new(vec![-70.0, -40.0])),
//! ])?;
//! let query = Fingerprint::new(vec![-42.0, -69.0]);
//! let est = NnLocalizer::new(&db).localize(&query)?;
//! assert_eq!(est, LocationId::new(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod block;
pub mod candidates;
pub mod centroid;
pub mod db;
pub mod fingerprint;
pub mod horus;
pub mod index;
pub mod knn;
pub mod metric;
pub mod nn_localizer;

pub use block::{BlockNeighbors, BlockScratch, QueryBlock};
pub use candidates::{Candidate, CandidateSet};
pub use db::FingerprintDb;
pub use fingerprint::Fingerprint;
pub use index::{FingerprintIndex, KnnScratch, MetricKernel, SquaredEuclidean};
pub use metric::{Dissimilarity, Euclidean};
