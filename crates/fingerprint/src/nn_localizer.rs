//! The plain WiFi fingerprinting baseline.
//!
//! Implements the paper's Eq. 2: return the location whose stored
//! fingerprint minimizes the dissimilarity to the query. This is the
//! baseline MoLoc is compared against throughout Sec. VI.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::index::FingerprintIndex;
use crate::knn::k_nearest;
use crate::metric::{Dissimilarity, Euclidean};
use moloc_geometry::LocationId;
use std::borrow::Cow;

/// Nearest-neighbor WiFi localizer (Eq. 2).
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::db::FingerprintDb;
/// use moloc_fingerprint::fingerprint::Fingerprint;
/// use moloc_fingerprint::nn_localizer::NnLocalizer;
/// use moloc_geometry::LocationId;
///
/// let db = FingerprintDb::from_fingerprints(vec![
///     (LocationId::new(1), Fingerprint::new(vec![-40.0])),
///     (LocationId::new(2), Fingerprint::new(vec![-60.0])),
/// ])?;
/// let loc = NnLocalizer::new(&db).localize(&Fingerprint::new(vec![-58.0]))?;
/// assert_eq!(loc, LocationId::new(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NnLocalizer<'a> {
    db: &'a FingerprintDb,
    metric: Box<dyn Dissimilarity>,
    /// Columnar scan path for the default Euclidean metric — owned, or
    /// borrowed from a caller who shares one index across localizers;
    /// custom metrics fall back to the generic `k_nearest` over the
    /// database.
    index: Option<Cow<'a, FingerprintIndex>>,
}

/// Error from [`NnLocalizer::localize`] when the query length does not
/// match the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLengthError {
    /// AP count expected by the database.
    pub expected: usize,
    /// AP count of the query.
    pub found: usize,
}

impl std::fmt::Display for QueryLengthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query has {} APs but the database expects {}",
            self.found, self.expected
        )
    }
}

impl std::error::Error for QueryLengthError {}

impl<'a> NnLocalizer<'a> {
    /// Creates a localizer with the paper's Euclidean metric, backed by
    /// a columnar [`FingerprintIndex`] scan.
    pub fn new(db: &'a FingerprintDb) -> Self {
        Self {
            db,
            metric: Box::new(Euclidean),
            index: Some(Cow::Owned(FingerprintIndex::build(db))),
        }
    }

    /// Creates a localizer over a caller-shared [`FingerprintIndex`]
    /// (Euclidean metric), skipping the per-localizer index build.
    /// `index` must have been built from `db`.
    pub fn with_index(db: &'a FingerprintDb, index: &'a FingerprintIndex) -> Self {
        Self {
            db,
            metric: Box::new(Euclidean),
            index: Some(Cow::Borrowed(index)),
        }
    }

    /// Creates a localizer with a custom metric (generic scan path).
    pub fn with_metric<M: Dissimilarity + 'static>(db: &'a FingerprintDb, metric: M) -> Self {
        Self {
            db,
            metric: Box::new(metric),
            index: None,
        }
    }

    /// The location estimate for a query fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`QueryLengthError`] when the query's AP count does not
    /// match the database.
    pub fn localize(&self, query: &Fingerprint) -> Result<LocationId, QueryLengthError> {
        self.localize_slice(query.values())
    }

    /// [`NnLocalizer::localize`] over a raw RSS slice — lets trace
    /// pipelines query straight from scan buffers without allocating a
    /// [`Fingerprint`] per pass.
    ///
    /// # Errors
    ///
    /// Returns [`QueryLengthError`] when the query's AP count does not
    /// match the database.
    pub fn localize_slice(&self, query: &[f64]) -> Result<LocationId, QueryLengthError> {
        if query.len() != self.db.ap_count() {
            return Err(QueryLengthError {
                expected: self.db.ap_count(),
                found: query.len(),
            });
        }
        // Degradation path: a query with missing (non-finite) APs is
        // ranked on the observed dimensions only, under the masked
        // Euclidean metric regardless of the configured one —
        // per-metric masking is undefined, and a NaN entering the
        // clean paths would poison the ranking (or panic
        // `Fingerprint::new`). Clean queries never take this branch.
        if query.iter().any(|v| !v.is_finite()) {
            return Ok(match &self.index {
                Some(index) => index.nearest_masked(query),
                None => nearest_masked_scan(self.db, query),
            });
        }
        if let Some(index) = &self.index {
            return Ok(index.nearest(query));
        }
        let query = Fingerprint::new(query.to_vec());
        Ok(k_nearest(self.db, &query, 1, self.metric.as_ref())[0].location)
    }
}

/// Masked nearest-neighbor walk over the database (the no-index arm of
/// the degradation path): lowest masked squared distance, ties to the
/// lower id (iteration is in id order and the compare is strict).
fn nearest_masked_scan(db: &FingerprintDb, query: &[f64]) -> LocationId {
    let mut best: Option<(LocationId, f64)> = None;
    for (id, fp) in db.iter() {
        let (rank, _) = crate::metric::masked_euclidean_sq(query, fp.values());
        if best.is_none_or(|(_, b)| rank < b) {
            best = Some((id, rank));
        }
    }
    best.map(|(id, _)| id).unwrap_or_else(|| LocationId::new(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Manhattan;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> FingerprintDb {
        FingerprintDb::from_fingerprints(vec![
            (l(1), Fingerprint::new(vec![-40.0, -70.0])),
            (l(2), Fingerprint::new(vec![-55.0, -55.0])),
            (l(3), Fingerprint::new(vec![-70.0, -40.0])),
        ])
        .unwrap()
    }

    #[test]
    fn picks_nearest_location() {
        let db = db();
        let loc = NnLocalizer::new(&db)
            .localize(&Fingerprint::new(vec![-68.0, -43.0]))
            .unwrap();
        assert_eq!(loc, l(3));
    }

    #[test]
    fn exact_fingerprint_returns_its_location() {
        let db = db();
        let loc = NnLocalizer::new(&db)
            .localize(&Fingerprint::new(vec![-55.0, -55.0]))
            .unwrap();
        assert_eq!(loc, l(2));
    }

    #[test]
    fn shared_index_and_slice_queries_match_owned_path() {
        let db = db();
        let index = FingerprintIndex::build(&db);
        let owned = NnLocalizer::new(&db);
        let shared = NnLocalizer::with_index(&db, &index);
        for query in [[-68.0, -43.0], [-55.0, -55.0], [-41.0, -69.0]] {
            let fp = Fingerprint::new(query.to_vec());
            let expected = owned.localize(&fp).unwrap();
            assert_eq!(shared.localize(&fp).unwrap(), expected);
            assert_eq!(shared.localize_slice(&query).unwrap(), expected);
            assert_eq!(owned.localize_slice(&query).unwrap(), expected);
        }
        assert!(shared.localize_slice(&[-40.0]).is_err());
    }

    #[test]
    fn custom_metric_is_used() {
        let db = db();
        let loc = NnLocalizer::with_metric(&db, Manhattan)
            .localize(&Fingerprint::new(vec![-41.0, -69.0]))
            .unwrap();
        assert_eq!(loc, l(1));
    }

    #[test]
    fn query_length_mismatch_is_an_error() {
        let db = db();
        let err = NnLocalizer::new(&db)
            .localize(&Fingerprint::new(vec![-41.0]))
            .unwrap_err();
        assert_eq!(
            err,
            QueryLengthError {
                expected: 2,
                found: 1
            }
        );
    }
}
