//! The plain WiFi fingerprinting baseline.
//!
//! Implements the paper's Eq. 2: return the location whose stored
//! fingerprint minimizes the dissimilarity to the query. This is the
//! baseline MoLoc is compared against throughout Sec. VI.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::knn::k_nearest;
use crate::metric::{Dissimilarity, Euclidean};
use moloc_geometry::LocationId;

/// Nearest-neighbor WiFi localizer (Eq. 2).
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::db::FingerprintDb;
/// use moloc_fingerprint::fingerprint::Fingerprint;
/// use moloc_fingerprint::nn_localizer::NnLocalizer;
/// use moloc_geometry::LocationId;
///
/// let db = FingerprintDb::from_fingerprints(vec![
///     (LocationId::new(1), Fingerprint::new(vec![-40.0])),
///     (LocationId::new(2), Fingerprint::new(vec![-60.0])),
/// ])?;
/// let loc = NnLocalizer::new(&db).localize(&Fingerprint::new(vec![-58.0]))?;
/// assert_eq!(loc, LocationId::new(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NnLocalizer<'a> {
    db: &'a FingerprintDb,
    metric: Box<dyn Dissimilarity>,
}

/// Error from [`NnLocalizer::localize`] when the query length does not
/// match the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLengthError {
    /// AP count expected by the database.
    pub expected: usize,
    /// AP count of the query.
    pub found: usize,
}

impl std::fmt::Display for QueryLengthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query has {} APs but the database expects {}",
            self.found, self.expected
        )
    }
}

impl std::error::Error for QueryLengthError {}

impl<'a> NnLocalizer<'a> {
    /// Creates a localizer with the paper's Euclidean metric.
    pub fn new(db: &'a FingerprintDb) -> Self {
        Self {
            db,
            metric: Box::new(Euclidean),
        }
    }

    /// Creates a localizer with a custom metric.
    pub fn with_metric<M: Dissimilarity + 'static>(db: &'a FingerprintDb, metric: M) -> Self {
        Self {
            db,
            metric: Box::new(metric),
        }
    }

    /// The location estimate for a query fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`QueryLengthError`] when the query's AP count does not
    /// match the database.
    pub fn localize(&self, query: &Fingerprint) -> Result<LocationId, QueryLengthError> {
        if query.len() != self.db.ap_count() {
            return Err(QueryLengthError {
                expected: self.db.ap_count(),
                found: query.len(),
            });
        }
        Ok(k_nearest(self.db, query, 1, self.metric.as_ref())[0].location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Manhattan;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> FingerprintDb {
        FingerprintDb::from_fingerprints(vec![
            (l(1), Fingerprint::new(vec![-40.0, -70.0])),
            (l(2), Fingerprint::new(vec![-55.0, -55.0])),
            (l(3), Fingerprint::new(vec![-70.0, -40.0])),
        ])
        .unwrap()
    }

    #[test]
    fn picks_nearest_location() {
        let db = db();
        let loc = NnLocalizer::new(&db)
            .localize(&Fingerprint::new(vec![-68.0, -43.0]))
            .unwrap();
        assert_eq!(loc, l(3));
    }

    #[test]
    fn exact_fingerprint_returns_its_location() {
        let db = db();
        let loc = NnLocalizer::new(&db)
            .localize(&Fingerprint::new(vec![-55.0, -55.0]))
            .unwrap();
        assert_eq!(loc, l(2));
    }

    #[test]
    fn custom_metric_is_used() {
        let db = db();
        let loc = NnLocalizer::with_metric(&db, Manhattan)
            .localize(&Fingerprint::new(vec![-41.0, -69.0]))
            .unwrap();
        assert_eq!(loc, l(1));
    }

    #[test]
    fn query_length_mismatch_is_an_error() {
        let db = db();
        let err = NnLocalizer::new(&db)
            .localize(&Fingerprint::new(vec![-41.0]))
            .unwrap_err();
        assert_eq!(
            err,
            QueryLengthError {
                expected: 2,
                found: 1
            }
        );
    }
}
