//! Multi-query scan blocks for the columnar index.
//!
//! A [`QueryBlock`] packs Q query fingerprints into a structure-of-
//! arrays layout (one contiguous *lane* per AP holding that AP's value
//! for every query), so the index can evaluate Q×L tiles with
//! register-blocked accumulators instead of scanning one query at a
//! time (`FingerprintIndex::k_nearest_block_into` in [`crate::index`]).
//! [`BlockScratch`] owns every intermediate buffer the blocked kernels
//! need and [`BlockNeighbors`] collects the per-query results; with all
//! three warmed a block scan performs zero heap allocations
//! (`crates/fingerprint/tests/block_alloc.rs`).
//!
//! # Toggles
//!
//! Two process-wide switches gate the fast paths, both **result-
//! invariant** — the blocked kernels are bit-identical to the per-query
//! scan (accumulation order per (query, row) is exactly
//! [`crate::metric::euclidean_sq`]'s, and the f32 mirror is a
//! *prefilter* whose survivors are exactly rescored in f64), so
//! flipping them can change throughput but never output:
//!
//! * `MOLOC_BLOCK` — `0`/`false`/`off`/`no` routes block entry points
//!   through the legacy per-query loop (default: blocked kernels on).
//! * `MOLOC_MIRROR` — same values disable the f32 quantized mirror
//!   prefilter inside the blocked path (default: mirror on).
//!
//! Benchmarks and tests flip the same switches in-process via
//! [`set_block_override`] / [`set_mirror_override`].

use crate::index::RankEntry;
use crate::knn::Neighbor;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state runtime override: 0 = follow the environment, 1 = forced
/// off, 2 = forced on.
static BLOCK_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static MIRROR_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `MOLOC_BLOCK` / `MOLOC_MIRROR`, parsed once per process.
static BLOCK_ENV: OnceLock<bool> = OnceLock::new();
static MIRROR_ENV: OnceLock<bool> = OnceLock::new();

fn parse_toggle(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

fn toggled(override_flag: &AtomicU8, env: &OnceLock<bool>, var: &str) -> bool {
    match override_flag.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *env.get_or_init(|| parse_toggle(var)),
    }
}

/// Whether blocked multi-query kernels are enabled (`MOLOC_BLOCK`,
/// default on). Purely a throughput switch: disabled blocks fall back
/// to per-query scans with bit-identical results.
#[inline]
pub fn block_enabled() -> bool {
    toggled(&BLOCK_OVERRIDE, &BLOCK_ENV, "MOLOC_BLOCK")
}

/// Whether the f32 quantized index mirror may prefilter blocked scans
/// (`MOLOC_MIRROR`, default on). Result-invariant like
/// [`block_enabled`].
#[inline]
pub fn mirror_enabled() -> bool {
    toggled(&MIRROR_OVERRIDE, &MIRROR_ENV, "MOLOC_MIRROR")
}

/// Forces the blocked path on/off (`Some`) or re-arms the environment
/// setting (`None`). For benchmarks and tests; process-global.
pub fn set_block_override(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    BLOCK_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Forces the f32 mirror on/off (`Some`) or re-arms the environment
/// setting (`None`). For benchmarks and tests; process-global.
pub fn set_mirror_override(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    MIRROR_OVERRIDE.store(v, Ordering::Relaxed);
}

/// A reusable structure-of-arrays batch of query fingerprints.
///
/// Queries are pushed in *query-major* form (each `push` keeps an
/// exact copy for rescoring and per-query fallbacks) and transposed
/// into AP-major lanes — `lanes[a * len() + q]` is AP `a` of query `q`
/// — when a blocked kernel seals the block. All buffers keep their
/// capacity across [`QueryBlock::reset`], so a warm block refilled with
/// the same shape allocates nothing.
#[derive(Debug, Default)]
pub struct QueryBlock {
    ap_count: usize,
    /// Query-major copies: query `q` occupies
    /// `queries[q * ap_count .. (q + 1) * ap_count]`.
    queries: Vec<f64>,
    /// Whether every value of query `q` is finite (clean queries take
    /// the lane kernels; degraded ones the masked per-query path).
    clean: Vec<bool>,
    /// AP-major lanes, rebuilt by [`QueryBlock::seal`] when stale.
    lanes: Vec<f64>,
    sealed: bool,
}

impl QueryBlock {
    /// An empty block for queries of width `ap_count`.
    pub fn new(ap_count: usize) -> Self {
        Self {
            ap_count,
            ..Self::default()
        }
    }

    /// Empties the block and sets the query width, keeping capacity.
    pub fn reset(&mut self, ap_count: usize) {
        self.ap_count = ap_count;
        self.queries.clear();
        self.clean.clear();
        self.lanes.clear();
        self.sealed = false;
    }

    /// Appends one query fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the block's AP width.
    pub fn push(&mut self, query: &[f64]) {
        assert_eq!(
            query.len(),
            self.ap_count,
            "query fingerprint length must match the block width"
        );
        self.queries.extend_from_slice(query);
        self.clean.push(query.iter().all(|v| v.is_finite()));
        self.sealed = false;
    }

    /// Number of queries in the block.
    pub fn len(&self) -> usize {
        self.clean.len()
    }

    /// Whether the block holds no queries.
    pub fn is_empty(&self) -> bool {
        self.clean.is_empty()
    }

    /// The query width (APs per fingerprint).
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// The query-major values of query `q`.
    pub fn query(&self, q: usize) -> &[f64] {
        &self.queries[q * self.ap_count..(q + 1) * self.ap_count]
    }

    /// Whether query `q` is fully finite.
    pub fn is_clean(&self, q: usize) -> bool {
        self.clean[q]
    }

    /// Largest finite |value| across all queries (0 for an empty or
    /// all-non-finite block); bounds the f32 quantization error and
    /// gates mirror safety.
    pub(crate) fn max_abs(&self) -> f64 {
        self.queries
            .iter()
            .filter(|v| v.is_finite())
            .fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Rebuilds the AP-major lanes if any push invalidated them.
    /// Idempotent; `O(len × ap_count)` when stale.
    pub(crate) fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let q_count = self.len();
        self.lanes.clear();
        self.lanes.reserve(q_count * self.ap_count);
        for a in 0..self.ap_count {
            for q in 0..q_count {
                self.lanes.push(self.queries[q * self.ap_count + a]);
            }
        }
        self.sealed = true;
    }

    /// The sealed AP-major lanes (`lanes[a * len() + q]`).
    ///
    /// # Panics
    ///
    /// Panics if the block was modified since the last
    /// [`QueryBlock::seal`].
    pub(crate) fn lanes(&self) -> &[f64] {
        assert!(self.sealed, "query block must be sealed before lane access");
        &self.lanes
    }
}

/// Reusable state for blocked scans: per-query selection tables, the
/// f32 lane/rank buffers of the mirror prefilter, and the scratch the
/// per-query fallback paths borrow. Like [`crate::index::KnnScratch`],
/// every buffer survives across scans, so warm blocks allocate nothing.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Scratch for per-query fallback scans (masked queries, non-block
    /// kernels, `MOLOC_BLOCK=0`).
    pub(crate) knn: crate::index::KnnScratch,
    /// Per-query neighbor staging buffer for fallback scans.
    pub(crate) tmp_out: Vec<Neighbor>,
    /// Flat per-query slot tables: query `q` owns
    /// `slots[q * k .. (q + 1) * k]`.
    pub(crate) slots: Vec<RankEntry>,
    /// Per-query count of filled slots.
    pub(crate) filled: Vec<u32>,
    /// Per-query index of the worst filled slot (valid once full).
    pub(crate) worst_at: Vec<u32>,
    /// Per-query cached worst rank (valid once full).
    pub(crate) worst: Vec<f64>,
    /// f32 copies of the query lanes for the mirror pass.
    pub(crate) lanes32: Vec<f32>,
    /// Query-major f32 rank buffer: query `q`'s rank for row `r` is
    /// `ranks32[q * rows + r]` (scanned linearly by the rescore pass).
    pub(crate) ranks32: Vec<f32>,
    /// Row positions surviving the f32 threshold for one query.
    pub(crate) survivors: Vec<u32>,
    /// One L-tile × Q-tile of f64 ranks (`[i * QT + q]`), written by
    /// the branchless compute phase and consumed by the selection
    /// phase of the blocked f64 kernel.
    pub(crate) tile_ranks: Vec<f64>,
}

impl BlockScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-query k-NN results of one blocked scan: a flat neighbor buffer
/// with per-query offsets plus the observed (finite) AP count each
/// query was ranked on (`ap_count` for clean queries, the masked scan's
/// return for degraded ones — zero meaning "uninformative uniform").
#[derive(Debug, Default)]
pub struct BlockNeighbors {
    neighbors: Vec<Neighbor>,
    /// `offsets[q]..offsets[q + 1]` indexes query `q`'s neighbors.
    offsets: Vec<u32>,
    observed: Vec<u32>,
}

impl BlockNeighbors {
    /// An empty result set; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the result set, keeping capacity.
    pub fn clear(&mut self) {
        self.neighbors.clear();
        self.offsets.clear();
        self.observed.clear();
    }

    /// Number of queries with recorded results.
    pub fn query_count(&self) -> usize {
        self.observed.len()
    }

    /// Whether no query has recorded results.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// The neighbors of query `q`, ascending by (dissimilarity, id).
    pub fn query(&self, q: usize) -> &[Neighbor] {
        let start = self.offsets[q] as usize;
        let end = self.offsets[q + 1] as usize;
        &self.neighbors[start..end]
    }

    /// The observed (finite) AP count query `q` was ranked on.
    pub fn observed(&self, q: usize) -> usize {
        self.observed[q] as usize
    }

    /// Appends one query's results. Called in query order by the scan.
    pub(crate) fn push_query(&mut self, neighbors: &[Neighbor], observed: usize) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.neighbors.extend_from_slice(neighbors);
        self.offsets.push(self.neighbors.len() as u32);
        self.observed.push(observed as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_block_round_trips_queries() {
        let mut block = QueryBlock::new(3);
        block.push(&[-40.0, -50.0, -60.0]);
        block.push(&[-70.0, f64::NAN, -45.0]);
        assert_eq!(block.len(), 2);
        assert_eq!(block.ap_count(), 3);
        assert_eq!(block.query(0), &[-40.0, -50.0, -60.0]);
        assert!(block.is_clean(0));
        assert!(!block.is_clean(1));
        block.seal();
        // AP-major: lane a holds [q0[a], q1[a]].
        assert_eq!(&block.lanes()[0..2], &[-40.0, -70.0]);
        assert_eq!(block.lanes()[3].to_bits(), f64::NAN.to_bits());
        assert_eq!(block.max_abs(), 70.0);
    }

    #[test]
    fn reset_keeps_capacity_and_changes_width() {
        let mut block = QueryBlock::new(2);
        block.push(&[-40.0, -50.0]);
        block.reset(4);
        assert!(block.is_empty());
        assert_eq!(block.ap_count(), 4);
        block.push(&[-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(block.query(0), &[-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "match the block width")]
    fn wrong_width_push_panics() {
        QueryBlock::new(3).push(&[-40.0]);
    }

    #[test]
    fn block_neighbors_offsets_partition_queries() {
        use moloc_geometry::LocationId;
        let n = |id: u32, d: f64| Neighbor {
            location: LocationId::new(id),
            dissimilarity: d,
        };
        let mut out = BlockNeighbors::new();
        out.push_query(&[n(1, 0.5), n(2, 1.5)], 4);
        out.push_query(&[], 0);
        out.push_query(&[n(3, 2.0)], 2);
        assert_eq!(out.query_count(), 3);
        assert_eq!(out.query(0).len(), 2);
        assert_eq!(out.query(1).len(), 0);
        assert_eq!(out.query(2)[0].location, LocationId::new(3));
        assert_eq!(out.observed(0), 4);
        assert_eq!(out.observed(1), 0);
        out.clear();
        assert!(out.is_empty());
    }

    #[test]
    fn overrides_take_precedence_over_default() {
        // Serialized implicitly: this is the only test in this crate
        // touching the overrides, and it restores them.
        set_block_override(Some(false));
        assert!(!block_enabled());
        set_block_override(Some(true));
        assert!(block_enabled());
        set_block_override(None);
        set_mirror_override(Some(false));
        assert!(!mirror_enabled());
        set_mirror_override(None);
    }
}
