//! The fingerprint database.
//!
//! One stored fingerprint per reference location (the mean of the site
//! survey's training samples, the common RADAR-style condensation), plus
//! access to the raw training samples for the probabilistic baseline.

use crate::fingerprint::Fingerprint;
use moloc_geometry::LocationId;
use moloc_stats::online::Welford;
use serde::{Deserialize, Serialize};

/// Error constructing a [`FingerprintDb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// No fingerprints were provided.
    Empty,
    /// Two entries share a location id.
    DuplicateLocation(LocationId),
    /// Fingerprints have inconsistent AP counts.
    InconsistentLength {
        /// The expected AP count (from the first entry).
        expected: usize,
        /// The offending AP count.
        found: usize,
    },
    /// A fingerprint carries a non-finite RSS value (NaN or infinity).
    ///
    /// [`Fingerprint::new`] rejects these at construction, but
    /// deserialized or externally assembled fingerprints can bypass
    /// that check — and one NaN in a stored row would poison every
    /// k-NN ranking against it.
    NonFinite(LocationId),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Empty => write!(f, "fingerprint database cannot be empty"),
            DbError::DuplicateLocation(id) => write!(f, "duplicate fingerprint for {id}"),
            DbError::InconsistentLength { expected, found } => {
                write!(
                    f,
                    "fingerprint length {found} does not match expected {expected}"
                )
            }
            DbError::NonFinite(id) => {
                write!(f, "fingerprint for {id} has a non-finite RSS value")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// A database of location → fingerprint mappings.
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::db::FingerprintDb;
/// use moloc_fingerprint::fingerprint::Fingerprint;
/// use moloc_geometry::LocationId;
///
/// let db = FingerprintDb::from_fingerprints(vec![
///     (LocationId::new(1), Fingerprint::new(vec![-40.0])),
///     (LocationId::new(2), Fingerprint::new(vec![-60.0])),
/// ])?;
/// assert_eq!(db.len(), 2);
/// assert!(db.fingerprint(LocationId::new(2)).is_some());
/// # Ok::<(), moloc_fingerprint::db::DbError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FingerprintDb {
    entries: Vec<(LocationId, Fingerprint)>,
    ap_count: usize,
}

impl FingerprintDb {
    /// Builds a database from per-location fingerprints.
    ///
    /// # Errors
    ///
    /// Returns a [`DbError`] for empty input, duplicate locations,
    /// inconsistent fingerprint lengths, or non-finite RSS values.
    pub fn from_fingerprints(mut entries: Vec<(LocationId, Fingerprint)>) -> Result<Self, DbError> {
        let Some(first) = entries.first() else {
            return Err(DbError::Empty);
        };
        let ap_count = first.1.len();
        entries.sort_by_key(|(id, _)| *id);
        for (i, (id, fp)) in entries.iter().enumerate() {
            if fp.len() != ap_count {
                return Err(DbError::InconsistentLength {
                    expected: ap_count,
                    found: fp.len(),
                });
            }
            if fp.values().iter().any(|v| !v.is_finite()) {
                return Err(DbError::NonFinite(*id));
            }
            if i > 0 && entries[i - 1].0 == *id {
                return Err(DbError::DuplicateLocation(*id));
            }
        }
        Ok(Self { entries, ap_count })
    }

    /// Builds a database by averaging per-location survey samples.
    ///
    /// `samples` yields `(location, sample fingerprints)`; each
    /// location's stored fingerprint is the mean of its samples,
    /// accumulated per AP with the streaming [`Welford`] estimator so
    /// no intermediate sample buffer is materialized (site surveys can
    /// carry hundreds of samples per location).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Empty`] when `samples` is empty or any
    /// location has no samples, plus the length/duplicate errors of
    /// [`FingerprintDb::from_fingerprints`].
    ///
    /// # Panics
    ///
    /// Panics when samples of one location differ in length.
    pub fn from_samples<I, S>(samples: I) -> Result<Self, DbError>
    where
        I: IntoIterator<Item = (LocationId, S)>,
        S: IntoIterator<Item = Fingerprint>,
    {
        let mut entries = Vec::new();
        for (id, set) in samples {
            let mut accumulators: Option<Vec<Welford>> = None;
            for sample in set {
                let accumulators =
                    accumulators.get_or_insert_with(|| vec![Welford::new(); sample.len()]);
                assert_eq!(
                    sample.len(),
                    accumulators.len(),
                    "fingerprint lengths differ"
                );
                for (acc, &value) in accumulators.iter_mut().zip(sample.values()) {
                    acc.push(value);
                }
            }
            let accumulators = accumulators.ok_or(DbError::Empty)?;
            let values: Vec<f64> = accumulators.iter().map(Welford::mean).collect();
            // Survey samples arriving through deserialization can carry
            // NaN/inf past `Fingerprint::new`'s constructor check; a
            // poisoned mean must surface as an error, not a panic.
            if values.iter().any(|v| !v.is_finite()) {
                return Err(DbError::NonFinite(id));
            }
            entries.push((id, Fingerprint::new(values)));
        }
        Self::from_fingerprints(entries)
    }

    /// Number of reference locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of APs per fingerprint.
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// The stored fingerprint of a location.
    pub fn fingerprint(&self, id: LocationId) -> Option<&Fingerprint> {
        self.entries
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|idx| &self.entries[idx].1)
    }

    /// Iterates `(location, fingerprint)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, &Fingerprint)> {
        self.entries.iter().map(|(id, fp)| (*id, fp))
    }

    /// All location ids in order.
    pub fn locations(&self) -> impl Iterator<Item = LocationId> + '_ {
        self.entries.iter().map(|(id, _)| *id)
    }

    /// A database restricted to the first `n` APs of every fingerprint
    /// (the paper's 4/5-AP settings).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the AP count.
    pub fn with_first_aps(&self, n: usize) -> FingerprintDb {
        assert!(n > 0 && n <= self.ap_count, "invalid AP subset size");
        FingerprintDb {
            entries: self
                .entries
                .iter()
                .map(|(id, fp)| (*id, fp.truncated(n)))
                .collect(),
            ap_count: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            FingerprintDb::from_fingerprints(vec![]).unwrap_err(),
            DbError::Empty
        );
    }

    #[test]
    fn duplicate_location_rejected() {
        let err =
            FingerprintDb::from_fingerprints(vec![(l(1), fp(&[-40.0])), (l(1), fp(&[-50.0]))])
                .unwrap_err();
        assert_eq!(err, DbError::DuplicateLocation(l(1)));
    }

    #[test]
    fn inconsistent_lengths_rejected() {
        let err = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-40.0])),
            (l(2), fp(&[-50.0, -60.0])),
        ])
        .unwrap_err();
        assert_eq!(
            err,
            DbError::InconsistentLength {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn entries_sorted_by_id() {
        let db = FingerprintDb::from_fingerprints(vec![
            (l(3), fp(&[-40.0])),
            (l(1), fp(&[-50.0])),
            (l(2), fp(&[-60.0])),
        ])
        .unwrap();
        let ids: Vec<_> = db.locations().collect();
        assert_eq!(ids, vec![l(1), l(2), l(3)]);
        assert_eq!(db.fingerprint(l(3)).unwrap().values(), &[-40.0]);
        assert_eq!(db.fingerprint(l(9)), None);
    }

    #[test]
    fn from_samples_averages() {
        let db = FingerprintDb::from_samples(vec![
            (l(1), vec![fp(&[-40.0, -60.0]), fp(&[-44.0, -56.0])]),
            (l(2), vec![fp(&[-70.0, -30.0])]),
        ])
        .unwrap();
        assert_eq!(db.fingerprint(l(1)).unwrap().values(), &[-42.0, -58.0]);
        assert_eq!(db.ap_count(), 2);
    }

    #[test]
    fn from_samples_rejects_empty_location() {
        let err = FingerprintDb::from_samples(vec![(l(1), Vec::<Fingerprint>::new())]).unwrap_err();
        assert_eq!(err, DbError::Empty);
    }

    #[test]
    fn ap_subset_truncates_all() {
        let db = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-40.0, -60.0, -50.0])),
            (l(2), fp(&[-70.0, -30.0, -20.0])),
        ])
        .unwrap();
        let sub = db.with_first_aps(2);
        assert_eq!(sub.ap_count(), 2);
        assert_eq!(sub.fingerprint(l(2)).unwrap().values(), &[-70.0, -30.0]);
    }
}
